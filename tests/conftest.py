"""Shared fixtures for the test suite.

Traces are expensive to generate, so the fixtures that need real
catalogued workloads are session-scoped and use short traces; unit
tests that only need a tiny program build one by hand instead.
"""

from __future__ import annotations

import os

# Keep the suite hermetic: parallel-sweep helpers default the disk
# trace cache to the real per-user directory (and the CLI does the same
# for the result store), which tests must never read or populate.
# Tests that exercise the disk layers point the variables at a tmp_path
# explicitly (monkeypatch.setenv overrides this).
os.environ.setdefault("REPRO_TRACE_CACHE_DIR", "none")
os.environ.setdefault("REPRO_RESULT_CACHE_DIR", "none")

import pytest

from repro.trace import Program
from repro.workloads import build_workload, get_workload

from trace_fixtures import build_tiny_program, trace_of

#: Trace length used by fixtures that exercise catalogued workloads.
SMALL_TRACE_INSTRUCTIONS = 60_000


@pytest.fixture(scope="session")
def tiny_program() -> Program:
    """Small hand-built program with known structure."""
    return build_tiny_program()


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    """Trace of the tiny program (serial only)."""
    return trace_of(tiny_program)


@pytest.fixture(scope="session")
def ft_trace():
    """Short trace of the NPB FT workload (parallel HPC)."""
    return build_workload(get_workload("FT")).trace(SMALL_TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def gobmk_trace():
    """Trace of the SPEC CPU INT gobmk workload (desktop).

    Desktop workloads need a somewhat longer window than the HPC ones
    for their instruction working set to exceed the small cache sizes,
    which is the behaviour several tests assert on.
    """
    return build_workload(get_workload("gobmk")).trace(150_000)


@pytest.fixture(scope="session")
def coevp_trace():
    """Short trace of the ExMatEx CoEVP workload (large serial share)."""
    return build_workload(get_workload("CoEVP")).trace(SMALL_TRACE_INSTRUCTIONS)
