"""Shared fixtures for the test suite.

Traces are expensive to generate, so the fixtures that need real
catalogued workloads are session-scoped and use short traces; unit
tests that only need a tiny program build one by hand instead.
"""

from __future__ import annotations

import pytest

from repro.trace import (
    CodeSection,
    CodeRegion,
    ExecutionSchedule,
    FixedTripCount,
    Function,
    If,
    Loop,
    Phase,
    Program,
    Sequence,
    TraceGenerator,
    layout_program,
)
from repro.workloads import build_workload, get_workload

#: Trace length used by fixtures that exercise catalogued workloads.
SMALL_TRACE_INSTRUCTIONS = 60_000


def build_tiny_program(loop_trips: int = 5, probability_then: float = 0.8) -> Program:
    """A two-function program with one loop, one conditional, one call."""
    callee = Function(name="leaf", body=CodeRegion(6))
    body = Sequence([
        CodeRegion(4),
        If(probability_then, CodeRegion(3)),
        CodeRegion(2),
    ])
    main_body = Sequence([
        CodeRegion(5),
        Loop(body, FixedTripCount(loop_trips)),
        CodeRegion(3),
    ])
    main = Function(name="main", body=main_body)
    program = Program("tiny", [main, callee])
    return layout_program(program)


def trace_of(program: Program, instructions: int = 2_000, seed: int = 7):
    """Run a program's first function as a steady serial phase."""
    schedule = ExecutionSchedule(
        steady=[Phase(program.entry_function, CodeSection.SERIAL)]
    )
    return TraceGenerator(program, schedule, seed=seed).run(instructions)


@pytest.fixture(scope="session")
def tiny_program() -> Program:
    """Small hand-built program with known structure."""
    return build_tiny_program()


@pytest.fixture(scope="session")
def tiny_trace(tiny_program):
    """Trace of the tiny program (serial only)."""
    return trace_of(tiny_program)


@pytest.fixture(scope="session")
def ft_trace():
    """Short trace of the NPB FT workload (parallel HPC)."""
    return build_workload(get_workload("FT")).trace(SMALL_TRACE_INSTRUCTIONS)


@pytest.fixture(scope="session")
def gobmk_trace():
    """Trace of the SPEC CPU INT gobmk workload (desktop).

    Desktop workloads need a somewhat longer window than the HPC ones
    for their instruction working set to exceed the small cache sizes,
    which is the behaviour several tests assert on.
    """
    return build_workload(get_workload("gobmk")).trace(150_000)


@pytest.fixture(scope="session")
def coevp_trace():
    """Short trace of the ExMatEx CoEVP workload (large serial share)."""
    return build_workload(get_workload("CoEVP")).trace(SMALL_TRACE_INSTRUCTIONS)
