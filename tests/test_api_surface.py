"""API-surface snapshot: the public shape of ``repro.api`` is pinned.

These tests fail when the public surface changes *silently*: growing
``__all__``, renaming a Session method, changing a signature, or
breaking the README quickstart.  Intentional API changes update the
snapshots here in the same commit.
"""

from __future__ import annotations

import inspect
import pathlib

import repro.api
from repro.api import ResultFrame, RuntimeConfig, Session
from repro.api.plan import ExperimentPlan, FrontendSweepPlan, Plan, PlanOutcome
from repro.api.runtime_config import ENVIRONMENT_VARIABLES
from repro.explore.grid import GridSpec
from repro.explore.pareto import ParetoFrontier
from repro.explore.plan import ExplorePlan

README = pathlib.Path(__file__).resolve().parent.parent / "README.md"


class TestPublicSurface:
    def test_all_is_pinned(self):
        assert repro.api.__all__ == [
            "ENVIRONMENT_VARIABLES",
            "ExperimentPlan",
            "ExplorePlan",
            "FrontendSweepPlan",
            "GridSpec",
            "ParetoFrontier",
            "Plan",
            "PlanOutcome",
            "ResultFrame",
            "RuntimeConfig",
            "Session",
            "current_session",
            "default_session",
        ]

    def test_every_export_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_environment_variables_are_pinned(self):
        assert ENVIRONMENT_VARIABLES == (
            "REPRO_TRACE_ENGINE",
            "REPRO_TRACE_CACHE_DIR",
            "REPRO_RESULT_CACHE_DIR",
            "REPRO_PARALLEL",
            "REPRO_PROCESSES",
            "REPRO_INSTRUCTIONS",
            "REPRO_EXECUTOR",
            "REPRO_RETRIES",
            "REPRO_ITEM_TIMEOUT",
            "REPRO_RETRY_DELAY",
            "REPRO_FAULT_PLAN",
            "REPRO_CACHE_NAMESPACE",
            "REPRO_QUEUE_DIR",
            "REPRO_LEASE_TTL",
            "REPRO_HEARTBEAT_INTERVAL",
            "REPRO_SERVE_HOST",
            "REPRO_SERVE_PORT",
        )

    def test_runtime_config_fields_are_pinned(self):
        assert [
            (field.name, field.default)
            for field in RuntimeConfig.__dataclass_fields__.values()
        ] == [
            ("trace_engine", "compiled"),
            ("trace_cache_dir", None),
            ("result_cache_dir", None),
            ("parallel", False),
            ("processes", None),
            ("instructions", 150_000),
            ("executor", "auto"),
            ("retries", 2),
            ("item_timeout", None),
            ("retry_delay", 0.05),
            ("fault_plan", None),
            ("cache_namespace", None),
            ("queue_dir", None),
            ("lease_ttl", 30.0),
            ("heartbeat_interval", 5.0),
            ("serve_host", "127.0.0.1"),
            ("serve_port", 8757),
        ]

    def test_session_method_signatures(self):
        def parameters(callable_):
            return list(inspect.signature(callable_).parameters)

        assert parameters(Session.__init__) == [
            "self",
            "config",
            "follow_environment",
            "overrides",
        ]
        assert parameters(Session.sweep) == [
            "self",
            "workloads",
            "configs",
            "metrics",
            "sections",
            "instructions",
            "seed",
        ]
        assert parameters(Session.experiments) == [
            "self",
            "names",
            "scenario_names",
            "instructions",
            "use_store",
        ]
        assert parameters(Session.map) == [
            "self",
            "worker",
            "arguments",
            "parallel",
            "processes",
            "prime",
            "journal_scope",
        ]
        assert parameters(Session.map_report) == parameters(Session.map)
        assert parameters(Session.trace) == [
            "self",
            "workload",
            "instructions",
            "seed",
        ]
        assert parameters(Session.explore) == [
            "self",
            "grid",
            "workloads",
            "sections",
            "instructions",
            "seed",
            "chunk_points",
            "objectives",
            "use_store",
        ]

    def test_grid_spec_signatures(self):
        def parameters(callable_):
            return list(inspect.signature(callable_).parameters)

        assert parameters(GridSpec.frontend) == ["name", "constraints", "axes"]
        assert parameters(GridSpec.cmp) == [
            "cores",
            "mixes",
            "l2_kb",
            "name",
            "constraints",
        ]
        assert parameters(ParetoFrontier.from_frame) == [
            "frame",
            "objectives",
            "group_by",
        ]

    def test_plan_and_frame_shapes(self):
        assert set(FrontendSweepPlan.__dataclass_fields__) == {
            "session",
            "workloads",
            "configs",
            "sections",
            "metrics",
            "instructions",
            "seed",
        }
        assert set(ExperimentPlan.__dataclass_fields__) == {
            "session",
            "names",
            "scenario_names",
            "instructions",
            "use_store",
        }
        assert set(ExplorePlan.__dataclass_fields__) == {
            "session",
            "grid",
            "workloads",
            "sections",
            "instructions",
            "seed",
            "chunk_points",
            "objectives",
            "use_store",
        }
        assert set(PlanOutcome.__dataclass_fields__) == {
            "kind",
            "key",
            "status",
            "frame",
            "details",
        }
        for method in ("rows", "records", "column", "select", "to_csv", "to_json"):
            assert callable(getattr(ResultFrame, method)), method

    def test_plan_protocol_is_shared(self):
        # Every plan implements the unified Plan protocol.
        for plan_type in (FrontendSweepPlan, ExperimentPlan, ExplorePlan):
            assert issubclass(plan_type, Plan), plan_type
            for method in ("execute", "describe", "frame", "outcome"):
                assert callable(getattr(plan_type, method)), (plan_type, method)

    def test_py_typed_marker_ships(self):
        package_dir = pathlib.Path(inspect.getfile(repro.api)).parent.parent
        assert (package_dir / "py.typed").is_file()


def readme_quickstart_source() -> str:
    """The verbatim python code block of the README's Python API section."""
    text = README.read_text(encoding="utf-8")
    _, _, after = text.partition("## Python API")
    assert after, "README lost its '## Python API' section"
    _, _, block = after.partition("```python\n")
    code, fence, _ = block.partition("```")
    assert fence, "README Python API section lost its code block"
    return code


class TestReadmeQuickstart:
    def test_quickstart_runs_verbatim(self, capsys):
        code = readme_quickstart_source()
        exec(compile(code, str(README), "exec"), {"__name__": "__readme__"})
        out = capsys.readouterr().out
        assert "workload" in out  # frame.columns printed
        assert "core" in out  # table3 CSV printed
