"""Tests for workload synthesis (spec -> program -> trace)."""

import pytest

from repro.trace import CodeSection
from repro.workloads import SectionProfile, Suite, WorkloadSpec, build_workload, get_workload
from repro.workloads.synthesis import _Diffuser, _SectionPlan

SMALL = 50_000


def _toy_spec(serial_fraction: float = 0.1, threads: int = 8) -> WorkloadSpec:
    profile = SectionProfile(branch_fraction=0.1, hot_code_kb=3.0)
    serial = SectionProfile(branch_fraction=0.18, hot_code_kb=3.0, loop_share=0.55)
    return WorkloadSpec(
        name="toy-synthesis",
        suite=Suite.NPB,
        parallel=profile,
        serial=serial,
        serial_fraction=serial_fraction,
        static_code_kb=32.0,
        threads=threads,
    )


class TestDiffuser:
    def test_integer_expectations_pass_through(self):
        diffuser = _Diffuser(0.0)
        assert [diffuser.take(2.0) for _ in range(5)] == [2] * 5

    def test_fractional_expectations_average_out(self):
        diffuser = _Diffuser(0.0)
        draws = [diffuser.take(0.3) for _ in range(1000)]
        assert sum(draws) == pytest.approx(300, abs=1)

    def test_rejects_negative_expectation(self):
        with pytest.raises(ValueError):
            _Diffuser().take(-0.1)


class TestSectionPlan:
    def test_budgets_follow_the_profile(self):
        profile = SectionProfile(branch_fraction=0.1, loop_share=0.5)
        plan = _SectionPlan(profile)
        assert plan.conditionals_per_iteration == pytest.approx(2.0)
        assert plan.branches_per_iteration == pytest.approx(
            2.0 / profile.conditional_fraction
        )
        assert plan.instructions_per_iteration == pytest.approx(
            plan.branches_per_iteration / 0.1
        )


class TestBuildWorkload:
    def test_build_is_cached(self):
        spec = get_workload("IS")
        assert build_workload(spec) is build_workload(spec)

    def test_trace_is_cached_per_length(self):
        workload = build_workload(get_workload("IS"))
        assert workload.trace(SMALL) is workload.trace(SMALL)
        assert workload.trace(SMALL) is not workload.trace(SMALL // 2)

    def test_trace_is_deterministic_across_builds(self):
        spec = _toy_spec()
        build_workload.cache_clear()
        first = build_workload(spec).trace(SMALL).events
        build_workload.cache_clear()
        second = build_workload(spec).trace(SMALL).events
        assert first == second

    def test_branch_fraction_close_to_spec(self):
        workload = build_workload(_toy_spec(serial_fraction=0.0))
        trace = workload.trace(SMALL)
        fraction = trace.branch_count() / trace.instruction_count()
        assert fraction == pytest.approx(0.1, rel=0.3)

    def test_serial_fraction_roughly_respected(self):
        # Short traces overweight the serial phase (it is scheduled
        # first); the fraction converges towards the spec for traces
        # covering several steady-state passes.
        workload = build_workload(_toy_spec(serial_fraction=0.2))
        trace = workload.trace(300_000)
        assert 0.08 <= trace.section_fraction(CodeSection.SERIAL) <= 0.45

    def test_sequential_workload_has_only_serial_code(self):
        workload = build_workload(get_workload("mcf"))
        trace = workload.trace(SMALL)
        assert trace.instruction_count(CodeSection.PARALLEL) == 0
        assert trace.instruction_count(CodeSection.SERIAL) == trace.instruction_count()

    def test_parallel_workload_has_both_sections(self):
        workload = build_workload(get_workload("IS"))
        trace = workload.trace(SMALL)
        assert trace.instruction_count(CodeSection.PARALLEL) > 0
        assert trace.instruction_count(CodeSection.SERIAL) > 0

    def test_static_footprint_tracks_spec(self):
        spec = get_workload("VPFFT")
        workload = build_workload(spec)
        static_kb = workload.static_code_bytes() / 1024.0
        assert static_kb == pytest.approx(spec.static_code_kb, rel=0.25)

    def test_zero_serial_fraction_supported(self):
        workload = build_workload(_toy_spec(serial_fraction=0.0))
        trace = workload.trace(SMALL)
        assert trace.instruction_count(CodeSection.SERIAL) == 0

    def test_workload_metadata(self):
        workload = build_workload(get_workload("IS"))
        assert workload.name == "IS"
        assert workload.suite is Suite.NPB

    def test_backward_bias_of_hpc_parallel_code(self):
        workload = build_workload(get_workload("IS"))
        trace = workload.trace(SMALL)
        taken = [
            r for r in trace.branch_records(CodeSection.PARALLEL)
            if r.taken and r.target is not None
        ]
        backward = sum(1 for r in taken if r.is_backward)
        assert backward / len(taken) > 0.6
