"""Tests for the batched multi-configuration engine and the CMP sweep layer.

Covers the bit-identity contract of ``simulate_frontend_many`` /
``simulate_branch_predictors`` against the per-config paths, the
trace/profile cache routing of the Section V stack, the ``run_on_cmp``
activity accounting, ``evaluate_cmp_energy``, the shared normalization
helper, and the ``cmpsweep`` scenario subsystem end to end (driver and
CLI).
"""

import dataclasses

import pytest

from repro import experiments
from repro.cli import main as cli_main
from repro.experiments import clear_trace_cache, normalize_to_reference, trace_cache_info
from repro.frontend.configs import (
    BASELINE_FRONTEND,
    TAILORED_FRONTEND,
    BranchPredictorConfig,
    BTBConfig,
    FrontEndConfig,
    ICacheConfig,
)
from repro.frontend.predictors import make_predictor
from repro.frontend.predictors.hybrid import PredictorWithLoop
from repro.frontend.predictors.loop import LoopPredictor
from repro.frontend.simulation import (
    simulate_branch_predictor,
    simulate_branch_predictors,
    simulate_frontend,
    simulate_frontend_many,
)
from repro.power.cmp_power import evaluate_cmp_energy
from repro.power.core_power import (
    L2_AREA_MM2,
    L2_POWER_W,
    core_area_power,
    l2_area_mm2,
    l2_power_w,
)
from repro.trace import CodeSection
from repro.uarch import (
    ASYMMETRIC_CMP,
    BASELINE_CMP,
    BASELINE_CORE,
    STANDARD_CMP_CONFIGS,
    TAILORED_CORE,
    cmp_grid,
    get_scenario,
    mix_config,
    profile_workload_frontend,
    standard_scenarios,
)
from repro.uarch.simulator import (
    NOMINAL_INSTRUCTIONS,
    CmpRunResult,
    CoreActivity,
    run_on_cmp,
)
from repro.uarch.sweep import SweepScenario
from repro.workloads import Suite, build_workload, get_workload

SMALL = 60_000


@pytest.fixture(scope="module")
def ft_profile():
    return profile_workload_frontend(build_workload(get_workload("FT")), SMALL)


@pytest.fixture(scope="module")
def gobmk_profile():
    return profile_workload_frontend(build_workload(get_workload("gobmk")), 150_000)

#: A third front-end that shares sub-configurations with the standard
#: two, exercising the engine's per-structure memoization.
MIXED_FRONTEND = FrontEndConfig(
    name="mixed",
    icache=ICacheConfig(size_bytes=16 * 1024, line_bytes=128, associativity=8),
    predictor=BranchPredictorConfig(kind="tournament", budget="big", with_loop=False),
    btb=BTBConfig(entries=2048, associativity=4),
)


class TestSimulateFrontendMany:
    @pytest.mark.parametrize(
        "section", [CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL]
    )
    def test_bit_identical_to_per_config_simulation(self, ft_trace, section):
        configs = [BASELINE_FRONTEND, TAILORED_FRONTEND, MIXED_FRONTEND]
        batched = simulate_frontend_many(ft_trace, configs, [section])
        for config in configs:
            single = simulate_frontend(ft_trace, config, section)
            many = batched[(config.name, section)]
            assert dataclasses.asdict(many) == dataclasses.asdict(single)

    def test_multi_section_batch(self, ft_trace):
        sections = [CodeSection.SERIAL, CodeSection.PARALLEL]
        batched = simulate_frontend_many(ft_trace, [BASELINE_FRONTEND], sections)
        assert set(batched) == {("baseline", s) for s in sections}
        for section in sections:
            assert batched[("baseline", section)].section is section

    def test_shared_subconfigs_are_simulated_once(self, ft_trace):
        # MIXED shares the big-tournament predictor and the 2K BTB with
        # BASELINE and the tailored I-cache geometry with TAILORED, so
        # the engine must reuse those result objects.
        configs = [BASELINE_FRONTEND, TAILORED_FRONTEND, MIXED_FRONTEND]
        batched = simulate_frontend_many(ft_trace, configs, [CodeSection.TOTAL])
        baseline = batched[("baseline", CodeSection.TOTAL)]
        tailored = batched[("tailored", CodeSection.TOTAL)]
        mixed = batched[("mixed", CodeSection.TOTAL)]
        assert mixed.branch is baseline.branch
        assert mixed.btb is baseline.btb
        assert mixed.icache is tailored.icache

    def test_branch_predictor_batch_matches_per_predictor(self, gobmk_trace):
        kinds = [("gshare", "small", False), ("tournament", "big", False), ("tage", "small", True)]
        batched = simulate_branch_predictors(
            gobmk_trace, [make_predictor(*args) for args in kinds]
        )
        for args, many in zip(kinds, batched):
            single = simulate_branch_predictor(gobmk_trace, make_predictor(*args))
            assert dataclasses.asdict(many) == dataclasses.asdict(single)


class TestProfileCacheRouting:
    def test_fig10_and_fig11_hit_the_trace_cache(self):
        clear_trace_cache()
        experiments.run_fig10(instructions=20_000, suites=[Suite.NPB])
        first = trace_cache_info()
        assert first["misses"] > 0
        # A second fig10 run and a fig11 run over a subset of the same
        # workloads must reuse the cached traces, not regenerate them.
        experiments.run_fig10(instructions=20_000, suites=[Suite.NPB])
        experiments.run_fig11(instructions=20_000, workloads=["FT"])
        second = trace_cache_info()
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]

    def test_profile_is_memoized_and_reuses_the_cached_trace(self):
        clear_trace_cache()
        spec = get_workload("FT")
        profile = profile_workload_frontend(spec, 20_000)
        again = profile_workload_frontend(spec, 20_000)
        assert again is profile
        assert trace_cache_info()["entries"] == 1

    def test_spec_and_workload_arguments_are_equivalent(self):
        clear_trace_cache()
        spec = get_workload("FT")
        by_spec = profile_workload_frontend(spec, 20_000)
        by_workload = profile_workload_frontend(build_workload(spec), 20_000)
        assert by_workload is by_spec


class TestRunOnCmpActivityAccounting:
    def test_master_flavour_spreads_serial_time(self, ft_profile):
        run = run_on_cmp(ft_profile, ASYMMETRIC_CMP)
        by_name = {activity.core.name: activity for activity in run.activities}
        master = by_name[ASYMMETRIC_CMP.master_core.name]
        # One baseline core: its busy time is its parallel share plus
        # the whole serial phase.
        parallel_share = (
            (NOMINAL_INSTRUCTIONS * (1 - ft_profile.serial_fraction))
            / ASYMMETRIC_CMP.total_cores
            * ft_profile.cpi(BASELINE_CORE, CodeSection.PARALLEL).total
            / BASELINE_CORE.cycles_per_second()
        )
        assert master.count == 1
        assert master.busy_seconds_per_core == pytest.approx(
            parallel_share + run.serial_seconds
        )
        # Tailored workers only run their parallel share.
        tailored = by_name[TAILORED_CORE.name]
        tailored_share = (
            (NOMINAL_INSTRUCTIONS * (1 - ft_profile.serial_fraction))
            / ASYMMETRIC_CMP.total_cores
            * ft_profile.cpi(TAILORED_CORE, CodeSection.PARALLEL).total
            / TAILORED_CORE.cycles_per_second()
        )
        assert tailored.busy_seconds_per_core == pytest.approx(tailored_share)
        assert run.parallel_seconds == pytest.approx(
            max(parallel_share, tailored_share)
        )

    def test_sequential_workload_keeps_workers_idle(self, gobmk_profile):
        run = run_on_cmp(gobmk_profile, ASYMMETRIC_CMP)
        by_name = {activity.core.name: activity for activity in run.activities}
        assert run.parallel_seconds == 0.0
        assert by_name[BASELINE_CORE.name].busy_seconds_per_core == pytest.approx(
            run.serial_seconds
        )
        assert by_name[TAILORED_CORE.name].busy_seconds_per_core == 0.0

    def test_no_core_is_busier_than_the_run(self, ft_profile):
        for cmp in STANDARD_CMP_CONFIGS:
            run = run_on_cmp(ft_profile, cmp)
            for activity in run.activities:
                assert 0.0 <= activity.busy_seconds_per_core <= (
                    run.execution_seconds * (1 + 1e-12)
                )


class TestEvaluateCmpEnergy:
    def test_energy_matches_hand_computed_activity_integral(self):
        baseline_budget = core_area_power(BASELINE_CORE)
        execution = 2.0
        run = CmpRunResult(
            workload_name="synthetic",
            cmp=BASELINE_CMP,
            serial_seconds=0.5,
            parallel_seconds=1.5,
            activities=[
                CoreActivity(core=BASELINE_CORE, count=8, busy_seconds_per_core=1.25)
            ],
        )
        result = evaluate_cmp_energy(run)
        per_core = (
            baseline_budget.active_power_w * 1.25
            + baseline_budget.idle_power_w * (execution - 1.25)
        )
        expected = 8 * (per_core + l2_power_w(BASELINE_CMP.l2_kb_per_core) * execution)
        assert result.energy_j == pytest.approx(expected)
        assert result.average_power_w == pytest.approx(expected / execution)
        assert result.energy_delay == pytest.approx(result.energy_j * execution)

    def test_zero_execution_time_is_rejected(self):
        run = CmpRunResult(
            workload_name="broken",
            cmp=BASELINE_CMP,
            serial_seconds=0.0,
            parallel_seconds=0.0,
            activities=[],
        )
        with pytest.raises(ValueError):
            evaluate_cmp_energy(run)

    def test_l2_scaling_is_anchored_at_the_reference_size(self):
        assert l2_power_w(256) == L2_POWER_W
        assert l2_area_mm2(256) == L2_AREA_MM2
        assert l2_power_w(512) > L2_POWER_W > l2_power_w(128)
        assert l2_area_mm2(512) == pytest.approx(2 * L2_AREA_MM2)


class TestNormalization:
    def test_normalizes_to_named_reference(self):
        normalized = normalize_to_reference({"a": 2.0, "b": 3.0}, "a")
        assert normalized == {"a": 1.0, "b": 1.5}

    def test_zero_reference_guard(self):
        normalized = normalize_to_reference({"a": 0.0, "b": 3.0}, "a")
        assert normalized == {"a": 0.0, "b": 0.0}


class TestSweepScenarios:
    def test_mix_config_grid_points(self):
        assert mix_config("baseline", 4).baseline_cores == 4
        assert mix_config("tailored", 4).tailored_cores == 4
        asymmetric = mix_config("asymmetric", 8)
        assert (asymmetric.baseline_cores, asymmetric.tailored_cores) == (1, 7)
        plus = mix_config("asymmetric++", 8)
        assert (plus.baseline_cores, plus.tailored_cores) == (1, 8)
        assert mix_config("asymmetric", 1) is None

    def test_mix_config_validation(self):
        with pytest.raises(ValueError):
            mix_config("baseline", 0)
        with pytest.raises(ValueError):
            mix_config("baseline", 65)
        with pytest.raises(ValueError):
            mix_config("quantum", 8)

    def test_cmp_grid_cross_product(self):
        with pytest.warns(DeprecationWarning, match="GridSpec"):
            grid = cmp_grid(
                (1, 8), mixes=("baseline", "asymmetric"), l2_sizes_kb=(256, 512)
            )
        # asymmetric does not exist at one core: (2 mixes * 2 counts - 1) * 2 L2s.
        assert len(grid) == 6
        assert len({cmp.name for cmp in grid}) == 6
        assert any(cmp.l2_kb_per_core == 512 for cmp in grid)

    def test_cmp_grid_matches_grid_spec(self):
        # The deprecated wrapper and the declarative spec are the same grid.
        from repro.explore import GridSpec

        with pytest.warns(DeprecationWarning):
            legacy = cmp_grid(
                (1, 2, 8, 64),
                mixes=("baseline", "tailored", "asymmetric", "asymmetric++"),
                l2_sizes_kb=(128, 256),
            )
        spec = GridSpec.cmp(
            (1, 2, 8, 64),
            mixes=("baseline", "tailored", "asymmetric", "asymmetric++"),
            l2_kb=(128, 256),
        )
        assert tuple(legacy) == spec.configs()

    def test_cmp_grid_deduplicates_overlapping_mixes(self):
        # asymmetric++ at N cores is the same chip as asymmetric at N+1;
        # the grid must emit it once so SweepScenario accepts the result.
        with pytest.warns(DeprecationWarning):
            grid = cmp_grid((2, 3), mixes=("asymmetric", "asymmetric++"))
        names = [cmp.name for cmp in grid]
        assert len(names) == len(set(names))
        SweepScenario(name="dedup", description="", cmps=tuple(grid))

    def test_standard_scenarios_are_well_formed(self):
        scenarios = standard_scenarios()
        assert {"paper", "core-scaling", "l2-scaling"} <= set(scenarios)
        assert get_scenario("paper").cmps == tuple(STANDARD_CMP_CONFIGS)
        assert max(
            cmp.total_cores for cmp in get_scenario("core-scaling").cmps
        ) >= 64
        with pytest.raises(KeyError):
            get_scenario("missing")
        with pytest.raises(ValueError):
            SweepScenario(name="empty", description="", cmps=())

    def test_run_cmpsweep_normalizes_per_scenario(self):
        result = experiments.run_cmpsweep(
            instructions=SMALL,
            scenario_names=["paper"],
            workloads=["FT", "gobmk"],
        )
        paper = result.per_workload["paper"]
        assert paper["FT"]["time"]["Baseline CMP"] == pytest.approx(1.0)
        assert paper["FT"]["time"]["Asymmetric++ CMP"] < 1.0
        assert paper["gobmk"]["time"]["Asymmetric++ CMP"] == pytest.approx(1.0)
        summary = result.summary["paper"]
        assert summary["time"]["Baseline CMP"] == pytest.approx(1.0)
        text = experiments.format_cmpsweep(result)
        assert "scenario paper" in text and "Asymmetric++ CMP" in text

    def test_run_cmpsweep_with_explicit_scenario_objects(self, ft_profile):
        scenario = SweepScenario(
            name="tiny",
            description="two points",
            cmps=(BASELINE_CMP, ASYMMETRIC_CMP),
        )
        result = experiments.run_cmpsweep(
            instructions=SMALL, scenarios=[scenario], workloads=["FT"]
        )
        assert list(result.summary) == ["tiny"]
        assert result.summary["tiny"]["energy"]["Asymmetric CMP"] < 1.0


class TestParallelSweeps:
    def test_fig11_parallel_matches_serial(self):
        serial = experiments.run_fig11(instructions=20_000, workloads=["FT", "gobmk"])
        parallel = experiments.run_fig11(
            instructions=20_000,
            workloads=["FT", "gobmk"],
            run_parallel=True,
            processes=2,
        )
        assert parallel.normalized_time == serial.normalized_time

    def test_table2_and_table3_accept_run_parallel(self):
        serial2, parallel2 = experiments.run_table2(), experiments.run_table2(
            run_parallel=True, processes=2
        )
        assert parallel2.storage_bits == serial2.storage_bits
        serial3, parallel3 = experiments.run_table3(), experiments.run_table3(
            run_parallel=True, processes=2
        )
        assert parallel3.cores == serial3.cores


class TestCliSweep:
    def test_cmpsweep_command(self, capsys):
        assert cli_main(["cmpsweep", "--instructions", "20000", "--scenarios", "paper"]) == 0
        output = capsys.readouterr().out
        assert "scenario paper" in output and "Baseline CMP" in output

    def test_parallel_flag_now_supported_everywhere(self, capsys):
        # Every registered experiment gained a run_parallel sweep, so
        # --parallel is never silently ignored any more.
        assert cli_main(["fig6", "--instructions", "20000", "--parallel"]) == 0
        captured = capsys.readouterr()
        assert "--parallel ignored" not in captured.err
        assert "gobmk" in captured.out

    def test_parallel_flag_silent_when_supported(self, capsys):
        assert cli_main(["table3", "--parallel"]) == 0
        assert "--parallel ignored" not in capsys.readouterr().err

    def test_unknown_scenario_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["cmpsweep", "--scenarios", "quantum"])
        assert "unknown sweep scenario" in capsys.readouterr().err

    def test_scenarios_flag_warns_when_unsupported(self, capsys):
        assert cli_main(["table3", "--scenarios", "paper"]) == 0
        captured = capsys.readouterr()
        assert "--scenarios ignored" in captured.err and "table3" in captured.err

    def test_run_cmpsweep_rejects_unknown_scenario_names(self):
        with pytest.raises(KeyError, match="unknown sweep scenario"):
            experiments.run_cmpsweep(
                instructions=20_000, scenario_names=["quantum"], workloads=["FT"]
            )


class TestImplicitOptionalFixes:
    def test_predictor_with_loop_defaults_to_a_loop_predictor(self):
        hybrid = PredictorWithLoop(make_predictor("gshare", "small"))
        assert isinstance(hybrid.loop, LoopPredictor)

    def test_no_implicit_optional_annotations_remain(self):
        import ast
        import pathlib

        package = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in package.rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in ast.walk(tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                positional = node.args.posonlyargs + node.args.args
                defaulted = positional[len(positional) - len(node.args.defaults):]
                pairs = list(zip(defaulted, node.args.defaults))
                pairs += [
                    (arg, default)
                    for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
                    if default is not None
                ]
                for arg, default in pairs:
                    if arg.annotation is None:
                        continue
                    is_none = isinstance(default, ast.Constant) and default.value is None
                    annotation = ast.unparse(arg.annotation)
                    if is_none and "Optional" not in annotation and "None" not in annotation:
                        offenders.append(
                            f"{path.name}:{node.lineno}: {node.name}({arg.arg}: {annotation} = None)"
                        )
        assert offenders == []
