"""Tests for the always-on results service (``repro-frontend serve``).

Covers the wire contract (typed 400s/404s, format negotiation,
``columns``/``where`` slicing), warm serving straight from the store
(zero recomputes, bit-identical to the orchestrator's artifact, p50
handler latency under the acceptance bound), concurrent mixed-budget
isolation, the miss -> 202 -> worker -> poll pipeline (including a
SIGKILLed worker replaced by a fresh one), interactive queue priority,
and the namespace-scoped in-process caches behind request isolation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import List, Tuple

import pytest

from repro.api import runtime_config as rc
from repro.exec.queue import (
    INTERACTIVE_PRIORITY,
    enqueue_campaign,
    enqueue_item,
    reset_queue_info,
    serve_queue,
    worker_reference,
)
from repro.exec.executors import ExecutionSettings
from repro.experiments import clear_trace_cache
from repro.results.orchestrator import experiment_key, get_spec, run_experiments
from repro.results.store import clear_result_store
from repro.serve import background_server
from repro.serve.wire import dump_json
from repro.workloads import get_workload
from repro.workloads.trace_cache import all_cache_stats, workload_trace

TINY = 6_000


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_result_store()
    clear_trace_cache()
    reset_queue_info()
    yield
    clear_result_store()
    clear_trace_cache()


@pytest.fixture()
def serve_env(tmp_path, monkeypatch):
    """Disk-backed store + queue dirs and the pinned server config."""
    store = tmp_path / "store"
    queue = tmp_path / "queue"
    queue.mkdir()
    monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(store))
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", "none")
    monkeypatch.setenv("REPRO_LEASE_TTL", "1.0")
    monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "0.1")
    config = rc.RuntimeConfig.from_environment(instructions=TINY)
    return config, str(queue)


def get(url: str, path: str) -> Tuple[int, str, bytes]:
    """One GET: (status, content type, body) -- errors included."""
    try:
        with urllib.request.urlopen(url + path, timeout=30) as response:
            return response.status, response.headers.get("Content-Type"), response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read()


def get_json(url: str, path: str):
    status, _, body = get(url, path)
    return status, json.loads(body)


class TestWireContract:
    def test_typed_errors(self, serve_env):
        config, queue = serve_env
        with background_server(config=config, queue_dir=queue) as server:
            cases = [
                ("/experiment/fig5?instructions=abc", 400, "bad-parameter"),
                ("/experiment/fig5?instructions=0", 400, "bad-parameter"),
                ("/experiment/fig5?instructions=6000&instructions=7000", 400, "bad-parameter"),
                ("/experiment/fig5?format=xml", 400, "bad-parameter"),
                ("/experiment/fig5?wait=never", 400, "bad-parameter"),
                ("/experiment/nope", 404, "unknown-experiment"),
                ("/explore/nope", 404, "unknown-preset"),
                ("/nope", 404, "unknown-route"),
                ("/job/deadbeef", 404, "unknown-job"),
            ]
            for path, status, code in cases:
                got_status, body = get_json(server.url, path)
                assert got_status == status, path
                assert body["error"]["code"] == code, path

    def test_non_get_is_405(self, serve_env):
        config, queue = serve_env
        with background_server(config=config, queue_dir=queue) as server:
            request = urllib.request.Request(
                server.url + "/healthz", data=b"{}", method="POST"
            )
            with pytest.raises(urllib.error.HTTPError) as raised:
                urllib.request.urlopen(request, timeout=30)
            assert raised.value.code == 405

    def test_healthz(self, serve_env):
        config, queue = serve_env
        with background_server(config=config, queue_dir=queue) as server:
            status, body = get_json(server.url, "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["queue_dir"] == queue
            assert body["experiments"] >= 18


class TestWarmServing:
    def test_hit_is_bit_identical_to_the_orchestrator_artifact(self, serve_env):
        config, queue = serve_env
        report = run_experiments(["fig5"], instructions=TINY)
        outcome = report.outcome("fig5")
        frame = outcome.stored_frame()
        with background_server(config=config, queue_dir=queue) as server:
            status, content_type, body = get(server.url, "/experiment/fig5")
            assert status == 200 and content_type == "application/json"
            expected = dump_json(
                {
                    "experiment": "fig5",
                    "key": outcome.key,
                    "frame": "suites",
                    "columns": list(frame.columns),
                    "rows": [list(row) for row in frame.data],
                }
            )
            assert body == expected

            status, content_type, body = get(
                server.url, "/experiment/fig5?format=csv"
            )
            assert status == 200 and content_type.startswith("text/csv")
            assert body == frame.to_csv().encode("utf-8")

    def test_slicing_matches_direct_frame_operations(self, serve_env):
        config, queue = serve_env
        report = run_experiments(["fig5"], instructions=TINY)
        frame = report.outcome("fig5").stored_frame("workloads")
        workload = frame.column("workload")[0]
        with background_server(config=config, queue_dir=queue) as server:
            status, body = get_json(
                server.url,
                f"/experiment/fig5?frame=workloads&workload={workload}"
                "&columns=workload,tage-big",
            )
            assert status == 200
            direct = frame.select(workload=workload)
            assert body["columns"] == ["workload", "tage-big"]
            position = frame.columns.index("tage-big")
            assert body["rows"] == [
                [workload, row[position]] for row in direct.data
            ]
            status, body = get_json(
                server.url, "/experiment/fig5?frame=workloads&where=nope:1"
            )
            assert status == 400 and body["error"]["code"] == "unknown-column"

    def test_warm_requests_recompute_nothing_and_meet_latency_bound(self, serve_env):
        config, queue = serve_env
        run_experiments(["fig5"], instructions=TINY)
        with background_server(config=config, queue_dir=queue) as server:
            get(server.url, "/experiment/fig5")  # prime any disk promotion
            before = all_cache_stats()
            for _ in range(20):
                status, _, _ = get(server.url, "/experiment/fig5")
                assert status == 200
            after = all_cache_stats()
            # Zero recomputes: nothing was enqueued, nothing was stored,
            # no trace or profile work ran -- every byte came from the
            # result store's read path.
            assert after["queue"]["enqueued"] == before["queue"]["enqueued"]
            assert after["results"]["cas_stores"] == before["results"]["cas_stores"]
            assert after["traces"]["misses"] == before["traces"]["misses"]
            assert after["profiles"]["misses"] == before["profiles"]["misses"]
            assert after["results"]["load_hits"] >= before["results"]["load_hits"] + 20
            status, stats = get_json(server.url, "/stats")
            assert status == 200
            route = stats["serve"]["routes"]["experiment"]
            assert route["hits"] >= 21
            assert route["p50_ms"] < 5.0

    def test_concurrent_mixed_budget_requests_stay_isolated(self, serve_env):
        config, queue = serve_env
        budgets = (TINY, 9_000)
        references = {}
        for budget in budgets:
            outcome = run_experiments(["fig5"], instructions=budget).outcome("fig5")
            frame = outcome.stored_frame()
            references[budget] = dump_json(
                {
                    "experiment": "fig5",
                    "key": outcome.key,
                    "frame": "suites",
                    "columns": list(frame.columns),
                    "rows": [list(row) for row in frame.data],
                }
            )
        assert references[budgets[0]] != references[budgets[1]]
        with background_server(config=config, queue_dir=queue) as server:
            def fetch(budget: int) -> Tuple[int, bytes]:
                status, _, body = get(
                    server.url, f"/experiment/fig5?instructions={budget}"
                )
                return budget, status, body

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(
                    pool.map(fetch, [budgets[i % 2] for i in range(24)])
                )
            for budget, status, body in results:
                assert status == 200
                assert body == references[budget]

    def test_explore_preset_route_serves_the_registered_experiment(self, serve_env):
        config, queue = serve_env
        outcome = run_experiments(["explore-smoke"], instructions=TINY).outcome(
            "explore-smoke"
        )
        with background_server(config=config, queue_dir=queue) as server:
            status, body = get_json(server.url, "/explore/smoke?frame=pareto")
            assert status == 200
            assert body["experiment"] == "explore-smoke"
            assert body["key"] == outcome.key
            pareto = outcome.stored_frame("pareto")
            assert body["columns"] == list(pareto.columns)
            assert body["rows"] == [list(row) for row in pareto.data]


class TestMissAndJobs:
    def test_miss_enqueues_then_poll_serves_the_stored_frame(self, serve_env):
        config, queue = serve_env
        with background_server(config=config, queue_dir=queue) as server:
            status, body = get_json(server.url, "/experiment/fig5")
            assert status == 202 and body["status"] == "pending"
            poll_path = body["poll"]
            key = body["key"]
            assert key == experiment_key(get_spec("fig5"), TINY)
            # Re-requesting the same miss is idempotent: same job.
            status, again = get_json(server.url, "/experiment/fig5")
            assert status == 202 and again["job"] == body["job"]
            status, pending = get_json(server.url, poll_path)
            assert status == 202 and pending["status"] == "pending"

            # A cooperating worker drains the queue (in-process here;
            # the CLI worker resolves the same importable reference).
            counters = serve_queue(queue, max_idle=0.5, poll=0.05)
            assert counters["completed"] >= 1

            status, content_type, served = get(server.url, poll_path)
            assert status == 200
            # The poll response is byte-identical to the warm request.
            status, _, warm = get(server.url, "/experiment/fig5")
            assert status == 200 and warm == served

    def test_wait_blocks_until_a_worker_publishes(self, serve_env):
        config, queue = serve_env
        drainer = threading.Thread(
            target=serve_queue, args=(queue,), kwargs={"max_idle": 5.0, "poll": 0.05}
        )
        drainer.start()
        try:
            with background_server(config=config, queue_dir=queue) as server:
                status, _, body = get(server.url, "/experiment/table2?wait=60")
                assert status == 200
                payload = json.loads(body)
                assert payload["experiment"] == "table2"
                assert payload["rows"]
        finally:
            drainer.join(timeout=60)

    def test_sigkilled_worker_is_replaced_and_the_poller_completes(
        self, serve_env, tmp_path
    ):
        config, queue = serve_env
        with background_server(config=config, queue_dir=queue) as server:
            # A budget large enough that the worker is mid-computation
            # for several seconds after claiming the item.
            status, body = get_json(
                server.url, "/experiment/fig5?instructions=400000"
            )
            assert status == 202
            poll_path = body["poll"]

            env = dict(os.environ)
            src = os.path.join(
                os.path.dirname(os.path.dirname(__file__)), "src"
            )
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            victim = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "worker",
                    "--queue-dir",
                    queue,
                    "--max-idle",
                    "30",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                # Kill the worker the moment it claims the item (the
                # lease file appears), i.e. mid-request.
                deadline = time.monotonic() + 60
                claimed = False
                while time.monotonic() < deadline:
                    for root, _dirs, files in os.walk(queue):
                        if os.path.basename(root) == "leases" and files:
                            claimed = True
                    if claimed:
                        break
                    time.sleep(0.02)
                assert claimed, "worker never claimed the item"
            finally:
                victim.kill()
                victim.wait(timeout=30)

            # The item is still unpublished: the poller sees pending.
            status, pending = get_json(server.url, poll_path)
            assert status == 202 and pending["status"] == "pending"

            # A replacement worker reclaims the dead worker's lease and
            # drains the item; the poller then completes.
            counters = serve_queue(queue, max_idle=2.0, poll=0.05)
            assert counters["completed"] >= 1
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                status, _, body = get(server.url, poll_path)
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200
            payload = json.loads(body)
            assert payload["experiment"] == "fig5"
            assert payload["rows"]

    def test_without_a_queue_the_miss_is_a_typed_503(self, serve_env):
        config, _queue = serve_env
        with background_server(config=config, queue_dir=None) as server:
            status, body = get_json(server.url, "/experiment/fig5")
            assert status == 503
            assert body["error"]["code"] == "queue-unavailable"


#: Execution order observed by the in-process priority-test worker.
ORDER: List[int] = []


def record_order(args) -> int:
    ORDER.append(args)
    return args


class TestInteractivePriority:
    def test_interactive_item_is_claimed_before_batch_work(self, tmp_path):
        assert worker_reference(record_order) == "test_serve:record_order"
        queue = tmp_path / "queue"
        queue.mkdir()
        settings = ExecutionSettings(
            retries=0, retry_delay=0.001, lease_ttl=5.0, heartbeat_interval=0.5
        )
        ORDER.clear()
        enqueue_campaign(
            record_order,
            [(index, index) for index in range(4)],
            settings,
            str(queue),
        )
        campaign, item = enqueue_item(
            record_order, 99, settings, str(queue)
        )
        assert item.startswith(f"p{INTERACTIVE_PRIORITY:02d}-")
        serve_queue(str(queue), max_idle=0.3, poll=0.02)
        assert ORDER and ORDER[0] == 99
        assert sorted(ORDER) == [0, 1, 2, 3, 99]


class TestNamespacedInProcessCaches:
    def test_trace_cache_is_namespace_scoped(self):
        from repro.workloads.trace_cache import trace_cache_info

        spec = get_workload("FT")
        base = rc.RuntimeConfig.from_environment()

        def misses() -> int:
            return trace_cache_info()["misses"]

        with rc.activated(base.replace(cache_namespace="alpha")):
            before = misses()
            first = workload_trace(spec, 20_000)
            assert misses() == before + 1
            assert workload_trace(spec, 20_000) is first
            assert misses() == before + 1  # same-namespace repeat: a hit
        with rc.activated(base.replace(cache_namespace="beta")):
            # A different namespace never reads alpha's in-process
            # entry: the lookup is a miss (the trace content itself is
            # deterministic, so the rebuilt value is equal).
            workload_trace(spec, 20_000)
            assert misses() == before + 2
        with rc.activated(base.replace(cache_namespace="alpha")):
            assert workload_trace(spec, 20_000) is first
            assert misses() == before + 2

    def test_profile_cache_is_namespace_scoped(self):
        from repro.uarch.simulator import profile_workload_frontend

        spec = get_workload("FT")
        base = rc.RuntimeConfig.from_environment()
        with rc.activated(base.replace(cache_namespace="alpha")):
            first = profile_workload_frontend(spec, 20_000)
            assert profile_workload_frontend(spec, 20_000) is first
        with rc.activated(base.replace(cache_namespace="beta")):
            assert profile_workload_frontend(spec, 20_000) is not first
