"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import (
    BimodalPredictor,
    GsharePredictor,
    LoopPredictor,
    TagePredictor,
    TournamentPredictor,
)
from repro.frontend.predictors.base import SaturatingCounter
from repro.workloads.synthesis import _Diffuser

addresses = st.integers(min_value=0x400000, max_value=0x4FFFFF).map(lambda a: a & ~0x3)
outcome_streams = st.lists(
    st.tuples(addresses, st.booleans()), min_size=1, max_size=300
)


@given(st.integers(min_value=0, max_value=3), st.booleans())
def test_saturating_counter_stays_in_range(value, taken):
    updated = SaturatingCounter.update(value, taken)
    assert 0 <= updated <= 3
    assert abs(updated - value) <= 1


@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=200))
def test_diffuser_total_tracks_expectations(expectations):
    diffuser = _Diffuser(0.0)
    realised = sum(diffuser.take(e) for e in expectations)
    assert abs(realised - sum(expectations)) < 1.0


@settings(max_examples=30, deadline=None)
@given(outcome_streams)
def test_predictors_accept_any_outcome_stream(stream):
    predictors = [
        BimodalPredictor(entries=256),
        GsharePredictor(history_bits=10),
        TournamentPredictor(local_index_bits=8, history_bits=8),
        TagePredictor(num_tables=2, entries_per_table=64, max_history=16),
        LoopPredictor(),
    ]
    for predictor in predictors:
        for address, taken in stream:
            prediction = predictor.predict(address)
            assert isinstance(prediction, bool)
            predictor.update(address, taken)
        assert predictor.storage_bits() > 0


@settings(max_examples=30, deadline=None)
@given(outcome_streams)
def test_perfectly_biased_streams_are_eventually_predicted(stream):
    predictor = BimodalPredictor(entries=4096)
    mispredictions = 0
    for address, _ in stream:
        if not predictor.predict(address):
            mispredictions += 1
        predictor.update(address, True)
    # At most a couple of cold mispredictions per distinct address.
    distinct = len({address for address, _ in stream})
    assert mispredictions <= 2 * distinct


@settings(max_examples=30, deadline=None)
@given(
    st.lists(addresses, min_size=1, max_size=200),
    st.sampled_from([64, 128, 256]),
    st.sampled_from([2, 4]),
)
def test_btb_miss_count_never_exceeds_lookups(branches, entries, associativity):
    btb = BranchTargetBuffer(entries=entries, associativity=associativity)
    for address in branches:
        btb.access(address, address + 64)
    assert 0 <= btb.misses <= btb.lookups == len(branches)
    assert 0.0 <= btb.miss_rate <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(addresses, min_size=1, max_size=200))
def test_btb_is_deterministic(branches):
    first = BranchTargetBuffer(entries=128, associativity=4)
    second = BranchTargetBuffer(entries=128, associativity=4)
    hits_first = [first.access(a, a + 8) for a in branches]
    hits_second = [second.access(a, a + 8) for a in branches]
    assert hits_first == hits_second


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(addresses, st.integers(min_value=1, max_value=256)),
             min_size=1, max_size=150),
    st.sampled_from([32, 64, 128]),
)
def test_icache_misses_bounded_by_accesses(fetches, line_bytes):
    cache = InstructionCache(size_bytes=8 * 1024, line_bytes=line_bytes, associativity=4)
    for address, size in fetches:
        cache.fetch_range(address, size)
    assert 0 <= cache.misses <= cache.accesses
    assert 0.0 <= cache.miss_rate <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(addresses, st.integers(min_value=1, max_value=256)),
                min_size=1, max_size=100))
def test_larger_icache_never_misses_more(fetches):
    small = InstructionCache(size_bytes=4 * 1024, line_bytes=64, associativity=4)
    large = InstructionCache(size_bytes=32 * 1024, line_bytes=64, associativity=8)
    small_misses = sum(small.fetch_range(a, s) for a, s in fetches)
    large_misses = sum(large.fetch_range(a, s) for a, s in fetches)
    assert large_misses <= small_misses


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=60), st.integers(min_value=2, max_value=12))
def test_loop_predictor_learns_any_constant_trip_count(trip, repetitions):
    predictor = LoopPredictor()
    address = 0x400100
    for _ in range(repetitions):
        for iteration in range(trip):
            predictor.update(address, iteration < trip - 1)
    if repetitions >= predictor.CONFIDENCE_THRESHOLD + 1:
        assert predictor.is_confident(address)
        assert predictor.predict(address) is True
