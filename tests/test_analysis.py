"""Tests for the architecture-independent analysis tools (Section III)."""

import pytest

from repro.analysis import (
    analyze_basic_blocks,
    analyze_branch_bias,
    analyze_branch_mix,
    analyze_footprint,
    analyze_line_usefulness,
    analyze_taken_directions,
    characterize_workload,
    suite_average,
)
from repro.analysis.branch_bias import BIAS_BUCKET_LABELS, _bucket_label
from repro.analysis.characterization import average_by
from repro.trace import CodeSection
from repro.trace.instruction import FIGURE1_CATEGORIES


class TestBranchMix:
    def test_fractions_are_consistent(self, tiny_trace):
        mix = analyze_branch_mix(tiny_trace)
        assert mix.branch_count == sum(mix.category_counts.values())
        assert mix.branch_fraction == pytest.approx(
            mix.branch_count / mix.instruction_count
        )
        assert sum(mix.category_fractions.values()) == pytest.approx(
            mix.branch_fraction
        )

    def test_all_categories_present(self, tiny_trace):
        mix = analyze_branch_mix(tiny_trace)
        assert set(mix.category_fractions) == set(FIGURE1_CATEGORIES)

    def test_fraction_of_unknown_category_raises(self, tiny_trace):
        with pytest.raises(ValueError):
            analyze_branch_mix(tiny_trace).fraction_of("bogus")

    def test_hpc_parallel_has_fewer_branches_than_desktop(self, ft_trace, gobmk_trace):
        hpc = analyze_branch_mix(ft_trace, CodeSection.PARALLEL).branch_fraction
        desktop = analyze_branch_mix(gobmk_trace).branch_fraction
        assert hpc < desktop / 2.0  # Characteristic 1 (roughly 3x in the paper)

    def test_serial_has_more_branches_than_parallel(self, coevp_trace):
        serial = analyze_branch_mix(coevp_trace, CodeSection.SERIAL).branch_fraction
        parallel = analyze_branch_mix(coevp_trace, CodeSection.PARALLEL).branch_fraction
        assert serial > parallel

    def test_empty_section_is_all_zero(self, gobmk_trace):
        mix = analyze_branch_mix(gobmk_trace, CodeSection.PARALLEL)
        assert mix.branch_count == 0
        assert mix.branch_fraction == 0.0


class TestBranchBias:
    def test_bucket_label_boundaries(self):
        assert _bucket_label(0.0) == "0-10%"
        assert _bucket_label(9.99) == "0-10%"
        assert _bucket_label(10.0) == "10-20%"
        assert _bucket_label(95.0) == ">90%"
        assert _bucket_label(100.0) == ">90%"

    def test_bucket_fractions_sum_to_one(self, ft_trace):
        bias = analyze_branch_bias(ft_trace)
        assert sum(bias.bucket_fractions.values()) == pytest.approx(1.0)
        assert set(bias.bucket_fractions) == set(BIAS_BUCKET_LABELS)

    def test_unknown_bucket_raises(self, ft_trace):
        with pytest.raises(ValueError):
            analyze_branch_bias(ft_trace).fraction_in("55-65%")

    def test_hpc_branches_are_more_biased_than_desktop(self, ft_trace, gobmk_trace):
        hpc = analyze_branch_bias(ft_trace).strongly_biased_fraction
        desktop = analyze_branch_bias(gobmk_trace).strongly_biased_fraction
        assert hpc > desktop  # Characteristic 2

    def test_taken_direction_fractions_sum_to_one(self, ft_trace):
        split = analyze_taken_directions(ft_trace)
        assert split.backward_fraction + split.forward_fraction == pytest.approx(1.0)
        assert split.backward_count + split.forward_count == split.taken_count

    def test_hpc_taken_branches_are_mostly_backward(self, ft_trace):
        split = analyze_taken_directions(ft_trace, CodeSection.PARALLEL)
        assert split.backward_fraction > 0.6  # Table I: ~69-80%

    def test_desktop_taken_branches_are_more_balanced(self, gobmk_trace):
        split = analyze_taken_directions(gobmk_trace)
        assert 0.3 < split.backward_fraction < 0.7  # Table I: 56/44

    def test_conditional_only_filter(self, ft_trace):
        all_taken = analyze_taken_directions(ft_trace)
        conditional = analyze_taken_directions(ft_trace, conditional_only=True)
        assert conditional.taken_count <= all_taken.taken_count


class TestFootprint:
    def test_dynamic_footprint_not_larger_than_executed_static(self, ft_trace):
        footprint = analyze_footprint(ft_trace)
        assert footprint.dynamic_footprint_bytes <= footprint.executed_static_bytes
        assert footprint.executed_static_bytes <= footprint.static_bytes

    def test_coverage_validation(self, ft_trace):
        with pytest.raises(ValueError):
            analyze_footprint(ft_trace, coverage=0.0)

    def test_full_coverage_equals_executed_static(self, ft_trace):
        footprint = analyze_footprint(ft_trace, coverage=1.0)
        assert footprint.dynamic_footprint_bytes == footprint.executed_static_bytes

    def test_hpc_dynamic_footprint_is_small(self, ft_trace):
        footprint = analyze_footprint(ft_trace, CodeSection.PARALLEL)
        assert footprint.dynamic_footprint_kb < 16.0  # Characteristic 3

    def test_desktop_dynamic_footprint_is_larger(self, ft_trace, gobmk_trace):
        hpc = analyze_footprint(ft_trace, CodeSection.PARALLEL).dynamic_footprint_kb
        desktop = analyze_footprint(gobmk_trace).dynamic_footprint_kb
        assert desktop > 2 * hpc

    def test_kb_helpers(self, ft_trace):
        footprint = analyze_footprint(ft_trace)
        assert footprint.static_kb == pytest.approx(footprint.static_bytes / 1024.0)


class TestBasicBlocks:
    def test_average_lengths_are_positive(self, ft_trace):
        stats = analyze_basic_blocks(ft_trace)
        assert stats.average_block_bytes > 0
        assert stats.average_block_instructions > 0

    def test_taken_distance_at_least_block_length(self, ft_trace):
        stats = analyze_basic_blocks(ft_trace)
        assert stats.average_taken_distance_bytes >= stats.average_block_bytes

    def test_hpc_blocks_are_longer_than_desktop(self, ft_trace, gobmk_trace):
        hpc = analyze_basic_blocks(ft_trace, CodeSection.PARALLEL)
        desktop = analyze_basic_blocks(gobmk_trace)
        assert hpc.average_block_bytes > 2 * desktop.average_block_bytes  # Char. 4

    def test_taken_fraction_bounds(self, ft_trace):
        stats = analyze_basic_blocks(ft_trace)
        assert 0.0 < stats.taken_branch_fraction <= 1.0

    def test_block_length_matches_branch_fraction(self, gobmk_trace):
        stats = analyze_basic_blocks(gobmk_trace)
        mix = analyze_branch_mix(gobmk_trace)
        assert stats.average_block_instructions == pytest.approx(
            1.0 / mix.branch_fraction, rel=0.05
        )


class TestLineUsefulness:
    def test_usefulness_is_a_fraction(self, ft_trace):
        usefulness = analyze_line_usefulness(ft_trace, 128)
        assert 0.0 < usefulness.average_usefulness <= 1.0
        assert usefulness.average_useful_bytes <= 128

    def test_rejects_non_power_of_two_lines(self, ft_trace):
        with pytest.raises(ValueError):
            analyze_line_usefulness(ft_trace, 96)

    def test_hpc_uses_wide_lines_better_than_desktop(self, ft_trace, gobmk_trace):
        hpc = analyze_line_usefulness(ft_trace, 128).average_usefulness
        desktop = analyze_line_usefulness(gobmk_trace, 128).average_usefulness
        assert hpc >= desktop

    def test_narrow_lines_are_at_least_as_useful(self, gobmk_trace):
        wide = analyze_line_usefulness(gobmk_trace, 128).average_usefulness
        narrow = analyze_line_usefulness(gobmk_trace, 32).average_usefulness
        assert narrow >= wide


class TestCharacterization:
    def test_sections_present_for_parallel_workload(self, ft_trace):
        result = characterize_workload(ft_trace)
        assert CodeSection.TOTAL in result.branch_mix
        assert CodeSection.SERIAL in result.branch_mix
        assert CodeSection.PARALLEL in result.branch_mix
        assert set(result.sections()) == set(result.footprint)

    def test_total_only_when_sections_disabled(self, ft_trace):
        result = characterize_workload(ft_trace, include_sections=False)
        assert result.sections() == [CodeSection.TOTAL]

    def test_suite_average(self):
        assert suite_average([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert suite_average([]) == 0.0

    def test_average_by(self):
        assert average_by([1, 2, 3], key=lambda x: x * 2.0) == pytest.approx(4.0)
