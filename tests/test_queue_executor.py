"""Tests for the durable filesystem work queue (``executor = "queue"``).

Covers the lease primitives (exclusive claims, heartbeat renewal,
reclaim races, corrupt-lease quarantine), the queue-specific fault
kinds (``stale-lease``, ``double-claim``, ``slow-heartbeat``), poison
item quarantine, campaign resume after a SIGKILLed supervisor, and the
external ``repro-frontend worker`` CLI -- every robustness claim as a
deterministic assertion.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.exec import leases
from repro.exec.executors import (
    ExecutionSettings,
    ExecutionSettingsError,
    resolve_executor,
)
from repro.exec.faults import Fault, FaultPlan
from repro.exec.queue import (
    CAMPAIGN_PREFIX,
    QueueWorker,
    enqueue_campaign,
    load_published,
    publish_result,
    queue_info,
    reset_queue_info,
    worker_reference,
)
from repro.exec.results import (
    STATUS_OK,
    STATUS_POISON,
    STATUS_REPLAYED,
)

#: Keeps every retry path fast; the short TTL keeps reclaim tests fast.
FAST = dict(retries=2, retry_delay=0.001, lease_ttl=1.0, heartbeat_interval=0.1)


def settings(**overrides) -> ExecutionSettings:
    return ExecutionSettings(**{**FAST, **overrides})


def double(args):
    return args * 2


def explode_on_three(args):
    if args == 3:
        raise ValueError("item three always fails")
    return args


@pytest.fixture(autouse=True)
def _fresh_counters():
    reset_queue_info()
    leases.reset_lease_info()
    yield


class TestExecutionSettingsValidation:
    def test_rejects_out_of_range_knobs(self):
        for bad in (
            dict(item_timeout=0),
            dict(item_timeout=-3),
            dict(retry_delay=0),
            dict(retry_delay=-0.5),
            dict(retries=-1),
            dict(lease_ttl=0),
            dict(lease_ttl=-1.0),
            dict(heartbeat_interval=0),
            dict(heartbeat_interval=-2.0),
            dict(lease_ttl=1.0, heartbeat_interval=1.0),
            dict(lease_ttl=1.0, heartbeat_interval=2.0),
        ):
            merged = {**FAST, **bad}
            with pytest.raises(ExecutionSettingsError):
                ExecutionSettings(**merged)

    def test_typed_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            ExecutionSettings(retry_delay=0)

    def test_valid_knobs_pass(self):
        built = settings(item_timeout=5.0)
        assert built.lease_ttl == 1.0
        assert built.heartbeat_interval == 0.1


class TestLeases:
    def test_acquire_is_exclusive(self, tmp_path):
        path = str(tmp_path / "item.lease")
        assert leases.acquire(path, "a:1:x", ttl=5.0)
        assert not leases.acquire(path, "b:2:y", ttl=5.0)
        document = leases.read_lease(path)
        assert document["owner"] == "a:1:x"

    def test_renew_refuses_after_reclaim(self, tmp_path):
        path = str(tmp_path / "item.lease")
        assert leases.acquire(path, "a:1:x", ttl=5.0)
        assert leases.renew(path, "a:1:x", seq=1, ttl=5.0)
        taken = leases.reclaim(path, "reaper:2:y")
        assert taken["owner"] == "a:1:x"
        # The zombie's next heartbeat must not resurrect the claim.
        assert not leases.renew(path, "a:1:x", seq=2, ttl=5.0)
        assert leases.lease_info()["lost"] >= 1
        assert not os.path.exists(path)

    def test_release_only_by_owner(self, tmp_path):
        path = str(tmp_path / "item.lease")
        leases.acquire(path, "a:1:x", ttl=5.0)
        assert not leases.release(path, "b:2:y")
        assert os.path.exists(path)
        assert leases.release(path, "a:1:x")
        assert not os.path.exists(path)

    def test_reclaim_race_has_one_winner(self, tmp_path):
        path = str(tmp_path / "item.lease")
        leases.acquire(path, "a:1:x", ttl=5.0)
        first = leases.reclaim(path, "reaper:2:y")
        second = leases.reclaim(path, "reaper:3:z")
        assert first is not None
        assert second is None

    def test_corrupt_lease_is_quarantined_and_stale(self, tmp_path):
        path = str(tmp_path / "item.lease")
        with open(path, "w", encoding="utf-8") as stream:
            stream.write("not json {")
        document = leases.read_lease(path)
        assert document["corrupt"]
        assert leases.Reaper(ttl=100.0).is_stale(path, document)
        quarantined = [
            name for name in os.listdir(tmp_path) if name.endswith(".corrupt")
        ]
        assert quarantined

    def test_reaper_dead_pid_fast_path(self, tmp_path):
        path = str(tmp_path / "item.lease")
        # Spawn-and-reap a real process so the pid provably belongs to
        # no one, then hand the reaper a lease owned by it.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        owner = f"{socket.gethostname()}:{probe.pid}:dead"
        leases.acquire(path, owner, ttl=100.0)
        reaper = leases.Reaper(ttl=100.0)
        assert reaper.is_stale(path, leases.read_lease(path))

    def test_reaper_old_timestamp(self, tmp_path):
        path = str(tmp_path / "item.lease")
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(
                {"owner": "elsewhere:1:x", "seq": 5, "ts": time.time() - 60, "ttl": 1},
                stream,
            )
        assert leases.Reaper(ttl=1.0).is_stale(path, leases.read_lease(path))

    def test_reaper_frozen_sequence_on_own_clock(self, tmp_path):
        # A lease from a machine with a wildly skewed (future) clock:
        # the timestamp check is useless, the sequence observation on
        # the reaper's own monotonic clock still catches it.
        path = str(tmp_path / "item.lease")
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(
                {"owner": "elsewhere:1:x", "seq": 7, "ts": time.time() + 3600, "ttl": 1},
                stream,
            )
        reaper = leases.Reaper(ttl=0.2)
        document = leases.read_lease(path)
        assert not reaper.is_stale(path, document)  # First observation.
        time.sleep(0.3)
        assert reaper.is_stale(path, document)


class TestQueueExecutor:
    def test_matches_serial_execution_bit_for_bit(self, tmp_path):
        items = [(index, index) for index in range(25)]
        queued = resolve_executor("queue").run(
            double, items, settings(processes=2, queue_dir=str(tmp_path))
        )
        serial = resolve_executor("serial").run(
            double, items, ExecutionSettings(retries=2, retry_delay=0.001)
        )
        assert [r.value for r in queued.results] == [r.value for r in serial.results]
        assert [r.index for r in queued.results] == [r.index for r in serial.results]
        assert not queued.degraded

    def test_successful_campaign_retires_its_directory(self, tmp_path):
        resolve_executor("queue").run(
            double,
            [(index, index) for index in range(4)],
            settings(processes=1, queue_dir=str(tmp_path)),
        )
        assert not [
            name for name in os.listdir(tmp_path) if name.startswith(CAMPAIGN_PREFIX)
        ]

    def test_failed_campaign_keeps_its_directory_as_evidence(self, tmp_path):
        out = resolve_executor("queue").run(
            explode_on_three,
            [(index, index) for index in range(5)],
            settings(processes=1, retries=1, queue_dir=str(tmp_path)),
        )
        failed = [r for r in out.results if not r.ok]
        assert [r.index for r in failed] == [3]
        assert "item three always fails" in failed[0].error
        assert failed[0].attempts == 2  # retries=1 -> two attempts.
        assert [
            name for name in os.listdir(tmp_path) if name.startswith(CAMPAIGN_PREFIX)
        ]

    def test_resume_replays_published_results_without_recompute(self, tmp_path):
        items = [(index, index) for index in range(6)]
        config = settings(processes=1, queue_dir=str(tmp_path))
        campaign = enqueue_campaign(double, items, config, str(tmp_path))
        # A previous (killed) run published items 0 and 1 with values a
        # recompute could never produce: replay must preserve them.
        for index in (0, 1):
            publish_result(
                campaign,
                campaign.names[index],
                {
                    "index": index,
                    "status": STATUS_OK,
                    "value": 990 + index,
                    "error": None,
                    "attempts": 1,
                },
            )
        out = resolve_executor("queue").run(double, items, config)
        by_index = {r.index: r for r in out.results}
        assert by_index[0].status == STATUS_REPLAYED
        assert by_index[0].value == 990
        assert by_index[1].status == STATUS_REPLAYED
        assert by_index[1].value == 991
        assert all(by_index[i].status == STATUS_OK for i in range(2, 6))
        assert [by_index[i].value for i in range(2, 6)] == [4, 6, 8, 10]

    def test_kill_fault_is_reclaimed_and_retried(self, tmp_path):
        plan = FaultPlan.of(Fault("kill", index=3))
        out = resolve_executor("queue").run(
            double,
            [(index, index) for index in range(6)],
            settings(processes=2, queue_dir=str(tmp_path), fault_plan=plan),
        )
        by_index = {r.index: r for r in out.results}
        assert [by_index[i].value for i in range(6)] == [0, 2, 4, 6, 8, 10]
        assert by_index[3].attempts == 2


class TestQueueWorkerInProcess:
    """Queue faults driven by in-process workers, where the process-wide
    counters are observable and every step is deterministic."""

    def _campaign(self, tmp_path, count=4, **overrides):
        config = settings(**overrides)
        return enqueue_campaign(
            double, [(index, index) for index in range(count)], config, str(tmp_path)
        )

    def test_stale_lease_fault_exercises_foreign_reclaim(self, tmp_path):
        plan = FaultPlan.of(Fault("stale-lease", index=0))
        campaign = self._campaign(tmp_path, fault_plan=plan)
        QueueWorker(campaign).drain()
        for index, name in enumerate(campaign.names):
            payload = load_published(campaign, name)
            assert payload["status"] == STATUS_OK
            assert payload["value"] == index * 2
        # The abandoned foreign lease was reclaimed, not shortcut by
        # the same-host pid check, and the retry carried attempt 2.
        assert queue_info()["reclaims"] >= 1
        assert leases.lease_info()["reclaimed"] >= 1
        assert load_published(campaign, campaign.names[0])["attempts"] == 2

    def test_poison_item_quarantined_with_typed_report(self, tmp_path):
        plan = FaultPlan.of(
            *[Fault("stale-lease", index=1, attempt=a) for a in (1, 2, 3, 4)]
        )
        campaign = self._campaign(tmp_path, retries=1, fault_plan=plan)
        QueueWorker(campaign).drain()
        payload = load_published(campaign, campaign.names[1])
        assert payload["status"] == STATUS_POISON
        assert "poison item" in payload["error"]
        report_path = campaign.poison_report_path(campaign.names[1])
        with open(report_path, "r", encoding="utf-8") as stream:
            report = json.load(stream)
        assert report["index"] == 1
        assert report["reclaims"] > report["retries"] == 1
        assert report["ledger"]
        # The item file moved out of the queue: nothing claims it again.
        assert not os.path.exists(campaign.item_path(campaign.names[1]))
        assert queue_info()["poisoned"] == 1
        # The campaign still completed: every other item has a value.
        for index in (0, 2, 3):
            assert load_published(campaign, campaign.names[index])["value"] == index * 2

    def test_poison_surfaces_in_executor_results(self, tmp_path):
        plan = FaultPlan.of(
            *[Fault("stale-lease", index=1, attempt=a) for a in (1, 2, 3, 4)]
        )
        out = resolve_executor("queue").run(
            double,
            [(index, index) for index in range(3)],
            settings(processes=1, retries=1, queue_dir=str(tmp_path), fault_plan=plan),
        )
        by_index = {r.index: r for r in out.results}
        assert by_index[1].status == STATUS_POISON
        assert "quarantined" in by_index[1].error
        assert by_index[0].ok and by_index[2].ok

    def test_double_claim_resolves_first_writer_wins(self, tmp_path):
        plan = FaultPlan.of(Fault("double-claim", index=0, seconds=0.4))
        campaign = self._campaign(tmp_path, count=1, fault_plan=plan)
        first = QueueWorker(campaign)
        second = QueueWorker(campaign)
        threads = [
            threading.Thread(target=first.drain),
            threading.Thread(target=second.drain),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        payload = load_published(campaign, campaign.names[0])
        assert payload["status"] == STATUS_OK
        assert payload["value"] == 0
        # Both claimants published; identical bytes resolved as a
        # duplicate, never a second result file.
        info = queue_info()
        assert info["duplicates"] + info["conflicts"] >= 1
        assert not os.path.exists(campaign.item_path(campaign.names[0]))

    def test_slow_heartbeat_is_reclaimed_mid_run(self, tmp_path):
        # Worker one pauses its heartbeat and stalls past the TTL; a
        # sibling's reaper must reclaim and complete the item, and the
        # late publication must lose the compare-and-swap.
        plan = FaultPlan.of(Fault("slow-heartbeat", index=0, seconds=1.6))
        campaign = self._campaign(
            tmp_path, count=1, lease_ttl=0.4, heartbeat_interval=0.05, fault_plan=plan
        )
        stalled = QueueWorker(campaign)
        sibling = QueueWorker(campaign)
        stall_thread = threading.Thread(target=stalled.drain)
        stall_thread.start()
        time.sleep(0.15)  # Let the stalled worker claim first.

        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            sibling.step()
            if load_published(campaign, campaign.names[0]) is not None:
                break
        stall_thread.join(timeout=30)
        payload = load_published(campaign, campaign.names[0])
        assert payload["status"] == STATUS_OK
        assert payload["value"] == 0
        # The sibling reclaimed the stalled claim (attempt 2 won) and
        # the stalled worker's late attempt-1 publication conflicted.
        assert queue_info()["reclaims"] >= 1
        assert payload["attempts"] == 2
        assert queue_info()["conflicts"] >= 1
        conflicts = [
            name
            for name in os.listdir(campaign.done_dir)
            if ".conflict" in name
        ]
        assert conflicts


class TestKillSupervisorAndResume:
    """The acceptance scenario: a 1000-item campaign survives SIGKILL
    of a worker AND the supervisor, resumes from a fresh process, and
    ends byte-identical to an undisturbed run."""

    CHILD = textwrap.dedent(
        """
        import json, os, signal, sys

        from repro.exec import ExecutionSettings, resolve_executor

        def worker(args):
            if args == 37 and os.environ.get("CHAOS_KILL"):
                # Take down the supervisor (our parent) and then this
                # worker process itself, both without cleanup.
                os.kill(os.getppid(), signal.SIGKILL)
                os._exit(87)
            return (args * 2654435761) % 1000003

        settings = ExecutionSettings(
            processes=2,
            retries=2,
            retry_delay=0.001,
            lease_ttl=1.0,
            heartbeat_interval=0.1,
            queue_dir=os.environ["QUEUE_DIR"],
        )
        out = resolve_executor("queue").run(
            worker, [(i, i) for i in range(1000)], settings
        )
        json.dump(
            {
                "statuses": sorted({r.status for r in out.results}),
                "values": [r.value for r in out.results],
                "degraded": out.degraded,
            },
            sys.stdout,
        )
        """
    )

    def _run_child(self, queue_dir, chaos_kill):
        env = dict(os.environ)
        env["QUEUE_DIR"] = str(queue_dir)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if chaos_kill:
            env["CHAOS_KILL"] = "1"
        else:
            env.pop("CHAOS_KILL", None)
        return subprocess.run(
            [sys.executable, "-c", self.CHILD],
            env=env,
            timeout=300,
            capture_output=True,
            text=True,
        )

    def test_campaign_survives_killing_worker_and_supervisor(self, tmp_path):
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        killed = self._run_child(queue_dir, chaos_kill=True)
        assert killed.returncode == -signal.SIGKILL
        # The campaign directory survives the kill with work to do.
        campaigns = [
            name for name in os.listdir(queue_dir) if name.startswith(CAMPAIGN_PREFIX)
        ]
        assert len(campaigns) == 1
        items_dir = queue_dir / campaigns[0] / "items"
        assert any(name.endswith(".item") for name in os.listdir(items_dir))

        resumed = self._run_child(queue_dir, chaos_kill=False)
        assert resumed.returncode == 0, resumed.stderr
        report = json.loads(resumed.stdout)
        # The resume replayed the published subset and ran the rest:
        # both statuses present, nothing failed, nothing degraded.
        assert report["statuses"] == ["ok", "replayed"]
        assert not report["degraded"]

        reference = self._run_child(tmp_path / "fresh", chaos_kill=False)
        assert reference.returncode == 0, reference.stderr
        undisturbed = json.loads(reference.stdout)
        assert report["values"] == undisturbed["values"]
        assert undisturbed["statuses"] == ["ok"]
        # Both campaigns completed fully and retired their directories.
        assert not [
            name for name in os.listdir(queue_dir) if name.startswith(CAMPAIGN_PREFIX)
        ]


class TestExternalCliWorker:
    def test_cli_worker_drains_a_campaign(self, tmp_path):
        queue_dir = tmp_path / "queue"
        queue_dir.mkdir()
        assert worker_reference(double) == "test_queue_executor:double"
        campaign = enqueue_campaign(
            double,
            [(index, index) for index in range(6)],
            settings(),
            str(queue_dir),
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        tests = os.path.dirname(__file__)
        env["PYTHONPATH"] = os.pathsep.join(
            [src, tests, env.get("PYTHONPATH", "")]
        )
        env.setdefault("REPRO_TRACE_CACHE_DIR", "none")
        env.setdefault("REPRO_RESULT_CACHE_DIR", "none")
        done = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--queue-dir",
                str(queue_dir),
                "--max-idle",
                "1",
            ],
            env=env,
            timeout=120,
            capture_output=True,
            text=True,
        )
        assert done.returncode == 0, done.stderr
        assert "worker idle" in done.stderr
        for index, name in enumerate(campaign.names):
            payload = load_published(campaign, name)
            assert payload is not None, name
            assert payload["status"] == STATUS_OK
            assert payload["value"] == index * 2

    def test_cli_worker_requires_a_queue_dir(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_QUEUE_DIR", None)
        missing = subprocess.run(
            [sys.executable, "-m", "repro.cli", "worker"],
            env=env,
            timeout=60,
            capture_output=True,
            text=True,
        )
        assert missing.returncode == 2
        assert "--queue-dir" in missing.stderr
