"""The Session/Plan/ResultFrame layer and its legacy-shim equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import ResultFrame, RuntimeConfig, Session, current_session, default_session
from repro.api.frame import artifact_frames, write_frames_csv
from repro.experiments import run_fig06, tables_fig06
from repro.workloads.trace_cache import workload_trace
from repro.frontend.configs import BASELINE_FRONTEND, TAILORED_FRONTEND
from repro.frontend.simulation import simulate_frontend
from repro.results.artifacts import build_artifact, block, write_artifact_csv
from repro.trace.instruction import CodeSection
from repro.workloads import get_workload
from repro.workloads.trace_cache import (
    all_cache_stats,
    clear_trace_cache,
    register_stats_provider,
)

INSTRUCTIONS = 30_000


class TestResultFrame:
    def test_named_columns_and_rows(self):
        frame = ResultFrame.from_rows(
            ["workload", "mpki"], [["FT", 1.5], ["LU", 2.5]]
        )
        assert len(frame) == 2
        assert frame.column("workload") == ["FT", "LU"]
        assert frame.column("mpki") == [1.5, 2.5]
        assert frame.rows() == [("FT", 1.5), ("LU", 2.5)]
        assert frame.records()[0] == {"workload": "FT", "mpki": 1.5}
        with pytest.raises(KeyError):
            frame.column("nope")

    def test_row_width_is_validated(self):
        with pytest.raises(ValueError):
            ResultFrame.from_rows(["a", "b"], [["only-one"]])

    def test_duplicate_columns_are_rejected(self):
        with pytest.raises(ValueError, match="duplicate column"):
            ResultFrame.from_rows(["a", "a"], [[1, 2]])

    def test_select_unknown_column_names_the_frame_columns(self):
        frame = ResultFrame.from_rows(["config"], [["tailored"]])
        with pytest.raises(KeyError, match="frame has config"):
            frame.select(confg="tailored")

    def test_select(self):
        frame = ResultFrame.from_rows(
            ["config", "v"], [["base", 1], ["tail", 2], ["base", 3]]
        )
        picked = frame.select(config="base")
        assert picked.column("v") == [1, 3]

    def test_csv_and_json_roundtrip(self, tmp_path):
        frame = ResultFrame.from_rows(["a", "b"], [["x", 1], ["y", 2]])
        text = frame.to_csv()
        assert text.splitlines() == ["a,b", "x,1", "y,2"]
        path = tmp_path / "frame.csv"
        frame.to_csv(str(path))
        assert path.read_bytes() == text.encode()
        payload = frame.to_json()
        assert '"columns"' in payload and '"rows"' in payload

    def test_artifact_csv_bytes_match_legacy_writer(self, tmp_path):
        """write_artifact_csv (now frame-backed) emits the historical bytes."""
        single = build_artifact(
            "t", "T", [block(["h1", "h2"], [["a", "b"], ["c", "d"]])], {}
        )
        multi_shared = build_artifact(
            "t",
            "T",
            [
                block(["h"], [["1"]], name="one"),
                block(["h"], [["2"]], name="two"),
            ],
            {},
        )
        multi_mixed = build_artifact(
            "t",
            "T",
            [
                block(["h"], [["1"]], name="one"),
                block(["g", "gg"], [["2", "3"]], name="two"),
            ],
            {},
        )
        for index, artifact in enumerate((single, multi_shared, multi_mixed)):
            path = tmp_path / f"a{index}.csv"
            write_artifact_csv(artifact, str(path))
            expected = tmp_path / f"e{index}.csv"
            write_frames_csv(artifact_frames(artifact), str(expected))
            assert path.read_bytes() == expected.read_bytes()
        # And the known layouts, explicitly (CRLF per the csv module).
        write_artifact_csv(single, str(tmp_path / "single.csv"))
        assert (
            tmp_path / "single.csv"
        ).read_bytes() == b"h1,h2\r\na,b\r\nc,d\r\n"
        write_artifact_csv(multi_shared, str(tmp_path / "shared.csv"))
        assert (
            tmp_path / "shared.csv"
        ).read_bytes() == b"table,h\r\none,1\r\ntwo,2\r\n"
        write_artifact_csv(multi_mixed, str(tmp_path / "mixed.csv"))
        assert (
            tmp_path / "mixed.csv"
        ).read_bytes() == b"table,h\r\none,1\r\ntable,g,gg\r\ntwo,2,3\r\n"

    def test_from_artifact_combines_shared_headers(self):
        artifact = build_artifact(
            "t",
            "T",
            [
                block(["h"], [["1"]], name="one"),
                block(["h"], [["2"]], name="two"),
            ],
            {},
        )
        frame = ResultFrame.from_artifact(artifact)
        assert frame.columns == ("table", "h")
        assert frame.rows() == [("one", "1"), ("two", "2")]


class TestSessionConfig:
    def test_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "111")
        session = Session(instructions=222)
        assert session.config.instructions == 222
        assert not session.follows_environment

    def test_config_object_plus_overrides(self):
        base = RuntimeConfig(instructions=10, parallel=True)
        session = Session(base, instructions=20)
        assert session.config.instructions == 20
        assert session.config.parallel is True

    def test_default_session_follows_environment(self, monkeypatch):
        session = default_session()
        assert session.follows_environment
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "777")
        assert session.config.instructions == 777
        monkeypatch.delenv("REPRO_INSTRUCTIONS")
        assert session.config.instructions != 777

    def test_follow_environment_rejects_explicit_config(self):
        with pytest.raises(ValueError):
            Session(RuntimeConfig(), follow_environment=True)

    def test_current_session_tracks_activation(self):
        session = Session(instructions=INSTRUCTIONS)
        assert current_session() is default_session()
        with session.activate():
            assert current_session() is session
        assert current_session() is default_session()

    def test_cache_namespace_isolates_concurrent_sessions_on_disk(self, tmp_path):
        """Two namespaced sessions sharing cache roots never collide:
        the trace cache and the result store each land in a per-
        namespace subdirectory."""
        from repro.results.store import clear_result_store, store_result

        traces_root = tmp_path / "traces"
        results_root = tmp_path / "results"
        written = {}
        for namespace in ("alpha", "beta"):
            clear_trace_cache()
            clear_result_store()
            session = Session(
                instructions=INSTRUCTIONS,
                trace_cache_dir=str(traces_root),
                result_cache_dir=str(results_root),
                cache_namespace=namespace,
            )
            assert session.config.cache_namespace == namespace
            with session.activate():
                workload_trace(get_workload("FT"), INSTRUCTIONS)
                store_result("0" * 64, {"schema": 1, "payload": {}, "tables": []})
            written[namespace] = {
                "traces": sorted(p.name for p in (traces_root / namespace).iterdir()),
                "results": sorted(
                    p.name for p in (results_root / namespace).iterdir()
                ),
            }
        clear_trace_cache()
        clear_result_store()
        for namespace, files in written.items():
            assert files["traces"], namespace
            assert files["results"], namespace
        # Nothing leaked into the shared roots themselves.
        assert sorted(p.name for p in traces_root.iterdir()) == ["alpha", "beta"]
        assert sorted(p.name for p in results_root.iterdir()) == ["alpha", "beta"]


class TestSessionPipeline:
    def test_omitted_instructions_resolve_through_the_session(self):
        """workload_trace(spec) with no budget honours the active session."""
        clear_trace_cache()
        session = Session(instructions=INSTRUCTIONS)
        with session.activate():
            trace = workload_trace(get_workload("FT"))
        assert trace.instruction_count() >= INSTRUCTIONS
        assert trace.instruction_count() < 2 * INSTRUCTIONS
        clear_trace_cache()

    def test_result_key_accepts_explicit_runtime_material(self):
        from repro.results.store import result_key

        compiled = result_key("x", {}, (), runtime={"trace_engine": "compiled"})
        reference = result_key("x", {}, (), runtime={"trace_engine": "reference"})
        ambient = result_key("x", {}, ())
        assert compiled != reference
        assert ambient == compiled  # default runtime is the compiled engine
        with Session(trace_engine="reference").activate():
            assert result_key("x", {}, ()) == reference

    def test_trace_matches_legacy_entry_point(self):
        session = Session(instructions=INSTRUCTIONS)
        trace = session.trace("FT")
        legacy = workload_trace(get_workload("FT"), INSTRUCTIONS)
        assert np.array_equal(trace.block_ids, legacy.block_ids)
        assert np.array_equal(trace.taken_column, legacy.taken_column)

    def test_reference_engine_session_is_bit_identical(self):
        clear_trace_cache()
        compiled = Session(instructions=INSTRUCTIONS).trace("CoMD")
        clear_trace_cache()
        reference = Session(
            instructions=INSTRUCTIONS, trace_engine="reference"
        ).trace("CoMD")
        clear_trace_cache()
        assert np.array_equal(compiled.block_ids, reference.block_ids)
        assert np.array_equal(compiled.taken_column, reference.taken_column)
        assert np.array_equal(compiled.target_column, reference.target_column)

    def test_frontend_matches_direct_simulation(self):
        session = Session(instructions=INSTRUCTIONS)
        result = session.frontend("FT", BASELINE_FRONTEND)
        direct = simulate_frontend(session.trace("FT"), BASELINE_FRONTEND)
        assert result.branch.mispredictions == direct.branch.mispredictions
        assert result.btb.misses == direct.btb.misses
        assert result.icache.misses == direct.icache.misses

    def test_sweep_plan_is_bit_identical_to_per_config_simulation(self):
        session = Session(instructions=INSTRUCTIONS)
        plan = session.sweep(
            workloads=["FT", "gobmk"],
            sections=(CodeSection.TOTAL,),
        )
        frame = plan.execute()
        assert frame.columns == (
            "workload",
            "suite",
            "section",
            "config",
            "branch_mpki",
            "btb_mpki",
            "icache_mpki",
        )
        assert len(frame) == 4  # 2 workloads x 1 section x 2 configs
        for name in ("FT", "gobmk"):
            trace = session.trace(name)
            for config in (BASELINE_FRONTEND, TAILORED_FRONTEND):
                direct = simulate_frontend(trace, config, CodeSection.TOTAL)
                row = frame.select(workload=name, config=config.name)
                assert row.column("branch_mpki") == [direct.branch.mpki]
                assert row.column("btb_mpki") == [direct.btb.mpki]
                assert row.column("icache_mpki") == [direct.icache.mpki]

    def test_sweep_rejects_duplicate_config_names(self):
        session = Session(instructions=INSTRUCTIONS)
        from dataclasses import replace

        clashing = replace(TAILORED_FRONTEND, name=BASELINE_FRONTEND.name)
        with pytest.raises(ValueError, match="duplicate front-end config name"):
            session.sweep(workloads=["FT"], configs=[BASELINE_FRONTEND, clashing])

    def test_sweep_rejects_unknown_metrics(self):
        session = Session(instructions=INSTRUCTIONS)
        with pytest.raises(KeyError, match="unknown sweep metric"):
            session.sweep(workloads=["FT"], metrics=["mpki_per_parsec"])

    def test_sweep_plan_describe(self):
        session = Session(instructions=INSTRUCTIONS)
        description = session.sweep(workloads=["FT"]).describe()
        assert description["kind"] == "frontend-sweep"
        assert description["workloads"] == ["FT"]
        assert description["instructions"] == INSTRUCTIONS
        assert description["runtime"]["trace_engine"] == "compiled"

    def test_experiment_plan_matches_direct_driver(self):
        session = Session(instructions=INSTRUCTIONS)
        frames = session.experiment("fig6", use_store=False).frames()
        direct = tables_fig06(run_fig06(instructions=INSTRUCTIONS))
        (frame,) = frames.values()
        assert frame.columns == direct[0].headers
        assert [tuple(str(c) for c in row) for row in frame.rows()] == [
            tuple(row) for row in direct[0].rows
        ]

    def test_experiment_plan_execute_returns_frame(self):
        session = Session(instructions=INSTRUCTIONS)
        frame = session.experiment("table3", use_store=False).execute()
        assert "core" in frame.columns
        assert len(frame) > 0

    def test_concat(self):
        one = ResultFrame.from_rows(["a"], [[1]])
        two = ResultFrame.from_rows(["a"], [[2]])
        merged = ResultFrame.concat([one, two], title="both")
        assert merged.rows() == [(1,), (2,)]
        assert merged.title == "both"
        with pytest.raises(ValueError):
            ResultFrame.concat([])
        with pytest.raises(ValueError):
            ResultFrame.concat([one, ResultFrame.from_rows(["b"], [[3]])])

    def test_parallel_sweep_primes_the_plan_seed(self, tmp_path):
        """A non-zero-seed parallel sweep primes seed-N traces, not seed-0."""
        import os

        clear_trace_cache()
        session = Session(
            instructions=INSTRUCTIONS,
            parallel=True,
            processes=2,
            trace_cache_dir=str(tmp_path),
        )
        session.sweep(workloads=["FT", "LU"], seed=2).execute()
        cached = sorted(os.listdir(tmp_path))
        assert cached == [f"FT-{INSTRUCTIONS}-2.npz", f"LU-{INSTRUCTIONS}-2.npz"]
        clear_trace_cache()

    def test_driver_honours_active_session_budget(self):
        """run_fig06() under an activated session uses its budget, like
        session.experiment('fig6') does."""
        session = Session(instructions=INSTRUCTIONS)
        with session.activate():
            direct = run_fig06()
        assert direct.instructions == INSTRUCTIONS

    def test_parallel_override_defaults_the_shared_cache(self, monkeypatch, tmp_path):
        """map(parallel=True) on a session with no trace-cache setting
        auto-enables the shared directory, like legacy run_sweep."""
        import repro.api.runtime_config as rc_module

        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        clear_trace_cache()
        session = Session(instructions=INSTRUCTIONS)
        assert session.config.trace_cache_dir is None
        specs = [get_workload("FT"), get_workload("LU")]
        arguments = [(spec, INSTRUCTIONS) for spec in specs]
        session.map(_shim_worker, arguments, parallel=True, processes=2)
        import os

        assert sorted(os.listdir(rc_module.default_trace_cache_dir())) == [
            f"FT-{INSTRUCTIONS}-0.npz",
            f"LU-{INSTRUCTIONS}-0.npz",
        ]
        # An explicitly disabled session still skips the disk layer.
        clear_trace_cache()
        disabled = Session(instructions=INSTRUCTIONS, trace_cache_dir=None)
        for name in os.listdir(rc_module.default_trace_cache_dir()):
            os.unlink(os.path.join(rc_module.default_trace_cache_dir(), name))
        disabled.map(_shim_worker, arguments, parallel=True, processes=2)
        assert os.listdir(rc_module.default_trace_cache_dir()) == []
        clear_trace_cache()

    def test_parallel_session_does_not_leak_environment(self, monkeypatch, tmp_path):
        import os

        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_TRACE_ENGINE", raising=False)
        session = Session(
            instructions=INSTRUCTIONS,
            parallel=True,
            processes=2,
            trace_cache_dir=str(tmp_path),
        )
        session.sweep(workloads=["FT", "LU"]).execute()
        assert os.environ.get("REPRO_TRACE_CACHE_DIR") is None
        assert os.environ.get("REPRO_TRACE_ENGINE") is None

    def test_session_parallel_matches_serial(self):
        serial = Session(instructions=INSTRUCTIONS).sweep(
            workloads=["FT", "LU", "CoMD"]
        ).execute()
        parallel = Session(
            instructions=INSTRUCTIONS,
            parallel=True,
            processes=2,
            trace_cache_dir=None,
        ).sweep(workloads=["FT", "LU", "CoMD"]).execute()
        assert serial.rows() == parallel.rows()


class TestCliSession:
    def test_cli_honours_runtime_environment_variables(self, monkeypatch):
        """Omitted CLI flags fall through to REPRO_* (flags > env > default)."""
        import repro.cli as cli
        from repro.api import session as session_module

        monkeypatch.setenv("REPRO_PARALLEL", "1")
        monkeypatch.setenv("REPRO_PROCESSES", "2")
        monkeypatch.setenv("REPRO_INSTRUCTIONS", "15000")
        captured = {}
        original = session_module.Session

        class Probe(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured.setdefault("config", self.config)

        monkeypatch.setattr(session_module, "Session", Probe)
        assert cli.main(["table3"]) == 0
        config = captured["config"]
        assert config.parallel is True
        assert config.processes == 2
        assert config.instructions == 15000

    def test_cli_flags_beat_environment(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.api import session as session_module

        monkeypatch.setenv("REPRO_INSTRUCTIONS", "15000")
        captured = {}
        original = session_module.Session

        class Probe(original):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured.setdefault("config", self.config)

        monkeypatch.setattr(session_module, "Session", Probe)
        assert cli.main(["fig6", "--instructions", "20000"]) == 0
        assert captured["config"].instructions == 20000


class TestLegacyShimsRemoved:
    def test_common_no_longer_exports_sweep_shims(self):
        """The deprecation cycle is complete: the shims are gone."""
        import repro.experiments.common as common

        assert not hasattr(common, "run_sweep")
        assert not hasattr(common, "workload_trace")
        assert "run_sweep" not in common.__all__
        assert "workload_trace" not in common.__all__

    def test_session_map_covers_the_old_run_sweep_contract(self, monkeypatch, tmp_path):
        """Session.map is the replacement: serial == parallel rows."""
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        specs = [get_workload("FT"), get_workload("LU")]
        arguments = [(spec, INSTRUCTIONS) for spec in specs]
        serial = default_session().map(_shim_worker, arguments)
        parallel = default_session().map(
            _shim_worker, arguments, parallel=True, processes=2
        )
        assert serial == [_shim_worker(args) for args in arguments]
        assert serial == parallel


class TestStatsProviderRegistry:
    def test_reregistration_replaces_not_duplicates(self):
        calls = []

        def first():
            calls.append("first")
            return {"value": 1}

        def second():
            calls.append("second")
            return {"value": 2}

        previous = register_stats_provider("api-test-cache", first)
        assert previous is None
        replaced = register_stats_provider("api-test-cache", second)
        assert replaced is first
        try:
            stats = all_cache_stats()
            assert stats["api-test-cache"] == {"value": 2}
            # The replaced provider never ran: one name, one snapshot.
            assert calls == ["second"]
            assert sum(1 for name in stats if name == "api-test-cache") == 1
        finally:
            from repro.workloads import trace_cache

            trace_cache._STATS_PROVIDERS.pop("api-test-cache", None)


def _shim_worker(args):
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return (spec.name, int(trace.block_ids.shape[0]))
