"""Equivalence of the columnar trace engine with the event-walk model.

The columnar :class:`Trace` must be a pure representation change: every
derived quantity -- instruction counts, branch records, simulator MPKI
-- has to be *bit-identical* to what walking ``BlockEvent`` objects
produces.  The reference implementations below mirror the original
per-event loops; the tests run both sides over representative
catalogued workloads (one per behavioural family) and over a hand-built
event-list trace.
"""

from __future__ import annotations

import pytest

from repro.workloads.trace_cache import (
    clear_trace_cache,
    trace_cache_info,
    workload_trace,
)
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.icache import InstructionCache
from repro.frontend.predictors import make_predictor
from repro.frontend.simulation import (
    simulate_branch_predictor,
    simulate_btb,
    simulate_icache,
)
from repro.trace import BlockEvent, Trace
from repro.trace.instruction import BranchKind, CodeSection
from repro.workloads import get_workload

from trace_fixtures import build_tiny_program, trace_of

#: One workload per behavioural family: HPC parallel (FT), desktop
#: control-heavy (gobmk), large-serial-share ExMatEx (CoEVP), HPC proxy
#: app (LULESH), and SPEC INT pointer-chasing (mcf).
WORKLOAD_NAMES = ("FT", "gobmk", "CoEVP", "LULESH", "mcf")

SECTIONS = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)

TRACE_INSTRUCTIONS = 30_000


@pytest.fixture(scope="module", params=WORKLOAD_NAMES)
def workload_trace_fixture(request):
    return workload_trace(get_workload(request.param), TRACE_INSTRUCTIONS)


# ----------------------------------------------------------------------
# Reference (event-walk) implementations
# ----------------------------------------------------------------------

def ref_instruction_count(trace: Trace, section: CodeSection) -> int:
    blocks = trace.program.blocks
    return sum(
        blocks[event.block_id].num_instructions
        for event in trace.events
        if section is CodeSection.TOTAL or event.section is section
    )


def ref_branch_records(trace: Trace, section: CodeSection):
    blocks = trace.program.blocks
    records = []
    for event in trace.events:
        if section is not CodeSection.TOTAL and event.section is not section:
            continue
        block = blocks[event.block_id]
        kind = block.terminator
        if not kind.is_branch:
            continue
        target = event.target
        if target is None and block.taken_target is not None:
            target = block.taken_target
        records.append(
            (
                block.branch_address,
                kind,
                event.taken,
                target,
                block.fallthrough_address,
                event.section,
            )
        )
    return records


def ref_branch_mpki(trace: Trace, predictor, section: CodeSection):
    """The original scalar predict/update walk over branch records."""
    mispredictions = 0
    for address, kind, taken, target, _, _ in ref_branch_records(trace, section):
        if not kind.is_conditional:
            continue
        prediction = predictor.predict(address)
        predictor.update(address, taken)
        if prediction != taken:
            mispredictions += 1
    instructions = ref_instruction_count(trace, section)
    return mispredictions, (
        mispredictions * 1000.0 / instructions if instructions else 0.0
    )


def ref_btb_misses(trace: Trace, btb: BranchTargetBuffer, section: CodeSection):
    misses = 0
    for address, kind, taken, target, _, _ in ref_branch_records(trace, section):
        if not taken or target is None or kind is BranchKind.RETURN:
            continue
        if not btb.access(address, target):
            misses += 1
    return misses


def ref_icache_misses(trace: Trace, cache: InstructionCache, section: CodeSection):
    blocks = trace.program.blocks
    misses = 0
    for event in trace.events:
        if section is not CodeSection.TOTAL and event.section is not section:
            continue
        block = blocks[event.block_id]
        misses += cache.fetch_range(block.address, block.size_bytes)
    return misses


# ----------------------------------------------------------------------
# Columnar vs reference over catalogued workloads
# ----------------------------------------------------------------------

class TestColumnarEquivalence:
    @pytest.mark.parametrize("section", SECTIONS)
    def test_instruction_count(self, workload_trace_fixture, section):
        trace = workload_trace_fixture
        assert trace.instruction_count(section) == ref_instruction_count(
            trace, section
        )

    @pytest.mark.parametrize("section", SECTIONS)
    def test_branch_records(self, workload_trace_fixture, section):
        trace = workload_trace_fixture
        columnar = [tuple(record) for record in trace.branch_records(section)]
        assert columnar == ref_branch_records(trace, section)

    @pytest.mark.parametrize("section", SECTIONS)
    @pytest.mark.parametrize(
        "kind,budget,with_loop",
        [
            ("gshare", "small", False),
            ("tournament", "small", False),
            ("tage", "small", False),
            ("tage", "big", False),
            ("tournament", "small", True),
            ("always-taken", "small", False),
            ("btfn", "small", False),
        ],
    )
    def test_branch_predictor_mpki(
        self, workload_trace_fixture, section, kind, budget, with_loop
    ):
        trace = workload_trace_fixture
        reference = make_predictor(kind, budget, with_loop)
        columnar = make_predictor(kind, budget, with_loop)
        if kind == "btfn":
            # The scalar protocol cannot see targets; reference BTFN via
            # the per-record direction rule instead.
            ref_miss = sum(
                1
                for address, k, taken, target, _, _ in ref_branch_records(
                    trace, section
                )
                if k.is_conditional
                and (target is not None and target < address) != taken
            )
        else:
            ref_miss, _ = ref_branch_mpki(trace, reference, section)
        result = simulate_branch_predictor(trace, columnar, section)
        assert result.mispredictions == ref_miss

    @pytest.mark.parametrize("section", SECTIONS)
    def test_btb_mpki(self, workload_trace_fixture, section):
        trace = workload_trace_fixture
        reference = BranchTargetBuffer(512, 4)
        ref_miss = ref_btb_misses(trace, reference, section)
        result = simulate_btb(trace, section=section, entries=512, associativity=4)
        assert result.misses == ref_miss
        assert result.mpki == trace.mpki(ref_miss, section)

    @pytest.mark.parametrize("section", SECTIONS)
    def test_icache_mpki(self, workload_trace_fixture, section):
        trace = workload_trace_fixture
        reference = InstructionCache(16 * 1024, 64, 4)
        ref_miss = ref_icache_misses(trace, reference, section)
        result = simulate_icache(
            trace, section=section, size_bytes=16 * 1024, line_bytes=64, associativity=4
        )
        assert result.misses == ref_miss
        assert result.accesses == reference.accesses
        assert result.mpki == trace.mpki(ref_miss, section)

    def test_block_execution_counts_match_event_walk(self, workload_trace_fixture):
        trace = workload_trace_fixture
        walked: dict = {}
        for event in trace.events:
            walked[event.block_id] = walked.get(event.block_id, 0) + 1
        counts = trace.block_execution_counts()
        assert counts == walked
        # First-execution ordering is part of the contract (downstream
        # stable sorts tie-break on it).
        assert list(counts) == list(dict.fromkeys(e.block_id for e in trace.events))


# ----------------------------------------------------------------------
# Hand-built event-list traces
# ----------------------------------------------------------------------

class TestEventListConstruction:
    def test_event_list_trace_matches_columnar(self):
        program = build_tiny_program()
        generated = trace_of(program, instructions=3_000, seed=13)
        rebuilt = Trace(program, list(generated.events), name=generated.name)
        assert rebuilt.events == generated.events
        for section in SECTIONS:
            assert rebuilt.instruction_count(section) == generated.instruction_count(
                section
            )
            assert rebuilt.branch_records(section) == generated.branch_records(
                section
            )
        assert rebuilt.block_execution_counts() == generated.block_execution_counts()

    def test_events_round_trip_types(self):
        program = build_tiny_program()
        trace = trace_of(program, instructions=500)
        event = trace.events[0]
        assert isinstance(event, BlockEvent)
        assert isinstance(event.block_id, int)
        assert event.section is CodeSection.SERIAL
        assert event.target is None or isinstance(event.target, int)


# ----------------------------------------------------------------------
# Workload/trace cache
# ----------------------------------------------------------------------

class TestTraceCache:
    def test_repeated_calls_return_same_object(self):
        spec = get_workload("FT")
        first = workload_trace(spec, 20_000)
        second = workload_trace(spec, 20_000)
        assert first is second

    def test_cache_key_includes_instructions_and_seed(self):
        spec = get_workload("FT")
        base = workload_trace(spec, 20_000)
        assert workload_trace(spec, 10_000) is not base
        assert workload_trace(spec, 20_000, seed=1) is not base

    def test_cache_stats_and_clear(self):
        clear_trace_cache()
        spec = get_workload("CoMD")
        workload_trace(spec, 10_000)
        workload_trace(spec, 10_000)
        info = trace_cache_info()
        assert info["hits"] >= 1
        assert info["misses"] >= 1
        assert info["entries"] >= 1
        clear_trace_cache()
        assert trace_cache_info()["entries"] == 0
