"""Tests for the timing (Sniper substitute) and power (McPAT substitute) models."""

import pytest

from repro.frontend.simulation import simulate_frontend
from repro.power import (
    core_area_power,
    evaluate_cmp_energy,
    frontend_area_power,
    sram_for_btb,
    sram_for_icache,
    sram_for_predictor,
)
from repro.power.cmp_power import cmp_area_mm2
from repro.trace import CodeSection
from repro.uarch import (
    ASYMMETRIC_CMP,
    ASYMMETRIC_PLUS_CMP,
    BASELINE_CMP,
    BASELINE_CORE,
    STANDARD_CMP_CONFIGS,
    TAILORED_CMP,
    TAILORED_CORE,
    CmpConfig,
    cpi_for_section,
    profile_workload_frontend,
    run_on_cmp,
)
from repro.workloads import build_workload, get_workload

SMALL = 60_000


@pytest.fixture(scope="module")
def ft_profile():
    return profile_workload_frontend(build_workload(get_workload("FT")), SMALL)


@pytest.fixture(scope="module")
def gobmk_profile():
    # A longer window than for the HPC workloads so the desktop working
    # set exceeds the tailored front-end's capacity (as in the paper).
    return profile_workload_frontend(build_workload(get_workload("gobmk")), 150_000)


class TestCpi:
    def test_cpi_stack_components_add_up(self, ft_trace):
        result = simulate_frontend(ft_trace, BASELINE_CORE.frontend, CodeSection.PARALLEL)
        stack = cpi_for_section(BASELINE_CORE, result)
        assert stack.total == pytest.approx(
            stack.base + stack.memory + stack.branch + stack.btb + stack.icache
        )
        assert stack.frontend == pytest.approx(stack.branch + stack.btb + stack.icache)
        assert stack.as_dict()["total"] == pytest.approx(stack.total)

    def test_frontend_penalties_scale_with_mpki(self, gobmk_trace):
        result = simulate_frontend(gobmk_trace, TAILORED_CORE.frontend)
        stack = cpi_for_section(TAILORED_CORE, result)
        expected = result.branch.mpki / 1000.0 * TAILORED_CORE.branch_penalty_cycles
        assert stack.branch == pytest.approx(expected)


class TestCmpConfigs:
    def test_standard_configurations(self):
        assert BASELINE_CMP.total_cores == 8
        assert TAILORED_CMP.total_cores == 8
        assert ASYMMETRIC_CMP.total_cores == 8
        assert ASYMMETRIC_PLUS_CMP.total_cores == 9
        assert len(STANDARD_CMP_CONFIGS) == 4

    def test_master_core_selection(self):
        assert BASELINE_CMP.master_core is BASELINE_CORE
        assert TAILORED_CMP.master_core is TAILORED_CORE
        assert ASYMMETRIC_CMP.master_core is BASELINE_CORE

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CmpConfig(name="empty", baseline_cores=0, tailored_cores=0)
        with pytest.raises(ValueError):
            CmpConfig(name="negative", baseline_cores=-1, tailored_cores=2)

    def test_describe(self):
        assert "1B+7T" in ASYMMETRIC_CMP.describe().replace(" ", "")


class TestTimingModel:
    def test_profile_contains_expected_sections(self, ft_profile, gobmk_profile):
        assert not ft_profile.is_sequential
        assert gobmk_profile.is_sequential
        ft_profile.result_for(BASELINE_CORE, CodeSection.PARALLEL)
        gobmk_profile.result_for(TAILORED_CORE, CodeSection.TOTAL)
        with pytest.raises(KeyError):
            gobmk_profile.result_for(TAILORED_CORE, CodeSection.PARALLEL)

    def test_asymmetric_plus_is_fastest_for_hpc(self, ft_profile):
        times = {
            cmp.name: run_on_cmp(ft_profile, cmp).execution_seconds
            for cmp in STANDARD_CMP_CONFIGS
        }
        assert times["Asymmetric++ CMP"] < times["Baseline CMP"]

    def test_asymmetric_plus_improvement_is_near_the_core_count_ratio(self, ft_profile):
        baseline = run_on_cmp(ft_profile, BASELINE_CMP).execution_seconds
        plus = run_on_cmp(ft_profile, ASYMMETRIC_PLUS_CMP).execution_seconds
        assert 0.80 < plus / baseline < 0.98  # paper: 12% average reduction

    def test_tailoring_does_not_slow_hpc_down_much(self, ft_profile):
        baseline = run_on_cmp(ft_profile, BASELINE_CMP).execution_seconds
        tailored = run_on_cmp(ft_profile, TAILORED_CMP).execution_seconds
        assert tailored / baseline < 1.05  # SPEC OMP / NPB: <1% in the paper

    def test_sequential_workload_gains_nothing_from_extra_cores(self, gobmk_profile):
        baseline = run_on_cmp(gobmk_profile, BASELINE_CMP).execution_seconds
        plus = run_on_cmp(gobmk_profile, ASYMMETRIC_PLUS_CMP).execution_seconds
        assert plus == pytest.approx(baseline, rel=1e-6)

    def test_sequential_workload_suffers_on_tailored_cores(self, gobmk_profile):
        baseline = run_on_cmp(gobmk_profile, BASELINE_CMP).execution_seconds
        tailored = run_on_cmp(gobmk_profile, TAILORED_CMP).execution_seconds
        assert tailored > baseline  # desktop needs the big front-end

    def test_serial_plus_parallel_time(self, ft_profile):
        run = run_on_cmp(ft_profile, BASELINE_CMP)
        assert run.execution_seconds == pytest.approx(
            run.serial_seconds + run.parallel_seconds
        )
        assert run.serial_seconds >= 0 and run.parallel_seconds > 0


class TestPowerModels:
    def test_sram_scaling(self):
        small = sram_for_predictor(2 * 8192)
        big = sram_for_predictor(16 * 8192)
        assert big.area_mm2 > 4 * small.area_mm2
        assert big.leakage_w > small.leakage_w
        assert big.energy_per_access_nj > small.energy_per_access_nj

    def test_wider_lines_reduce_icache_accesses(self):
        narrow = sram_for_icache(16 * 1024, 64)
        wide = sram_for_icache(16 * 1024, 128)
        assert wide.accesses_per_instruction < narrow.accesses_per_instruction

    def test_btb_array_size(self):
        assert sram_for_btb(2048).storage_bits == 2048 * 52

    def test_core_area_and_power_match_table_iii(self):
        baseline = core_area_power(BASELINE_CORE)
        tailored = core_area_power(TAILORED_CORE)
        assert baseline.total_area_mm2 == pytest.approx(2.49, rel=0.05)
        assert baseline.active_power_w == pytest.approx(0.85, rel=0.08)
        assert tailored.total_area_mm2 == pytest.approx(2.11, rel=0.05)
        assert tailored.active_power_w == pytest.approx(0.79, rel=0.08)

    def test_tailored_core_saves_area_and_power(self):
        baseline = core_area_power(BASELINE_CORE)
        tailored = core_area_power(TAILORED_CORE)
        area_saving = 1.0 - tailored.total_area_mm2 / baseline.total_area_mm2
        power_saving = 1.0 - tailored.active_power_w / baseline.active_power_w
        assert 0.10 < area_saving < 0.22   # paper: 16%
        assert 0.04 < power_saving < 0.15  # paper: 7%

    def test_frontend_area_breakdown(self):
        frontend = frontend_area_power(BASELINE_CORE.frontend)
        assert frontend.total_area_mm2 == pytest.approx(
            frontend.icache_area_mm2 + frontend.predictor_area_mm2 + frontend.btb_area_mm2
        )
        rows = frontend.as_rows()
        assert set(rows) == {"I-cache", "BP", "BTB"}

    def test_idle_power_is_a_fraction_of_active(self):
        budget = core_area_power(BASELINE_CORE)
        assert 0 < budget.idle_power_w < budget.active_power_w

    def test_asymmetric_plus_fits_the_baseline_core_area_budget(self):
        baseline_area = cmp_area_mm2(BASELINE_CMP, include_l2=False)
        plus_area = cmp_area_mm2(ASYMMETRIC_PLUS_CMP, include_l2=False)
        assert plus_area <= baseline_area * 1.02  # same budget (within 2%)
        assert cmp_area_mm2(BASELINE_CMP) > baseline_area

    def test_cmp_energy_results(self, ft_profile):
        baseline = evaluate_cmp_energy(run_on_cmp(ft_profile, BASELINE_CMP))
        plus = evaluate_cmp_energy(run_on_cmp(ft_profile, ASYMMETRIC_PLUS_CMP))
        assert baseline.energy_j == pytest.approx(
            baseline.average_power_w * baseline.execution_seconds
        )
        # Figure 10: Asymmetric++ draws a bit more power but saves energy-delay.
        assert plus.average_power_w > baseline.average_power_w
        assert plus.energy_delay < baseline.energy_delay
