"""Tests for the experiment drivers and the command-line interface.

The drivers are exercised on reduced workload sets and short traces so
the suite stays fast; the full-scale runs live in ``benchmarks/``.
"""

import pytest

from repro import experiments
from repro.cli import main as cli_main
from repro.trace import CodeSection
from repro.workloads import Suite

TINY = 40_000
SUITES = [Suite.NPB, Suite.SPEC_CPU_INT]


class TestCharacterizationExperiments:
    def test_fig01_shapes_and_format(self):
        result = experiments.run_fig01(instructions=TINY, suites=SUITES)
        npb = result.branch_fraction[Suite.NPB][CodeSection.PARALLEL]
        desktop = result.branch_fraction[Suite.SPEC_CPU_INT][CodeSection.TOTAL]
        assert desktop > 2 * npb  # Characteristic 1
        text = experiments.format_fig01(result)
        assert "direct branch" in text and "NPB" in text

    def test_fig02_bias_shape(self):
        result = experiments.run_fig02(instructions=TINY, suites=SUITES)
        npb = result.strongly_biased(Suite.NPB, CodeSection.PARALLEL)
        desktop = result.strongly_biased(Suite.SPEC_CPU_INT, CodeSection.TOTAL)
        assert npb > desktop  # Characteristic 2
        assert "0-10%" in experiments.format_fig02(result)

    def test_table1_backward_share(self):
        result = experiments.run_table1(instructions=TINY, suites=SUITES)
        npb = result.backward[Suite.NPB][CodeSection.PARALLEL]
        desktop = result.backward[Suite.SPEC_CPU_INT][CodeSection.TOTAL]
        assert npb > desktop
        assert result.forward(Suite.NPB, CodeSection.PARALLEL) == pytest.approx(1 - npb)
        assert "backward" in experiments.format_table1(result)

    def test_fig03_footprints(self):
        result = experiments.run_fig03(instructions=TINY, suites=SUITES)
        npb = result.dynamic99_kb[Suite.NPB][CodeSection.PARALLEL]
        desktop = result.dynamic99_kb[Suite.SPEC_CPU_INT][CodeSection.TOTAL]
        assert npb < desktop  # Characteristic 3
        assert "KB" in experiments.format_fig03(result)

    def test_fig04_block_lengths(self):
        result = experiments.run_fig04(instructions=TINY, suites=SUITES)
        npb = result.block_bytes[Suite.NPB][CodeSection.PARALLEL]
        desktop = result.block_bytes[Suite.SPEC_CPU_INT][CodeSection.TOTAL]
        assert npb > 2 * desktop  # Characteristic 4
        assert "BBL" in experiments.format_fig04(result)


class TestStructureExperiments:
    def test_table2_budgets(self):
        result = experiments.run_table2()
        assert result.storage_kb("gshare", "small") == pytest.approx(2.0, rel=0.05)
        assert result.storage_kb("gshare", "big") == pytest.approx(16.0, rel=0.05)
        assert result.loop_predictor_bits > 0
        assert "gshare" in experiments.format_table2(result)

    def test_fig05_runs_on_a_subset(self):
        result = experiments.run_fig05(instructions=TINY, suites=[Suite.NPB])
        assert len(result.configurations) == 9
        values = result.mpki[Suite.NPB]
        assert all(v >= 0 for v in values.values())
        assert "gshare-small" in experiments.format_fig05(result)

    def test_fig06_breakdown(self):
        result = experiments.run_fig06(instructions=TINY, workloads=["FT", "gobmk"])
        total = result.total_mpki("FT", "gshare-small")
        assert total == pytest.approx(
            sum(result.breakdown["FT"]["gshare-small"].values())
        )
        assert "gobmk" in experiments.format_fig06(result)

    def test_fig07_btb_sweep(self):
        result = experiments.run_fig07(
            instructions=TINY, suites=[Suite.NPB], geometries=[(256, 4), (1024, 4)]
        )
        values = result.mpki[Suite.NPB]
        assert values[(1024, 4)] <= values[(256, 4)] + 0.1
        assert "256e/4w" in experiments.format_fig07(result)

    def test_fig08_icache_sweep(self):
        result = experiments.run_fig08(
            instructions=TINY, suites=[Suite.NPB], geometries=[(8, 4), (32, 4)]
        )
        values = result.mpki[Suite.NPB]
        assert values[(32, 4)] <= values[(8, 4)]
        assert "8KB/4w" in experiments.format_fig08(result)

    def test_fig09_line_width(self):
        result = experiments.run_fig09(instructions=TINY, workloads=["CoGL", "omnetpp"])
        assert set(result.workloads) == {"CoGL", "omnetpp"}
        assert 0.0 < result.usefulness_128["CoGL"] <= 1.0
        assert "usefulness" in experiments.format_fig09(result)

    def test_table3_area_power(self):
        result = experiments.run_table3()
        assert result.area_ratio() == pytest.approx(0.84, abs=0.04)
        assert result.power_ratio() == pytest.approx(0.93, abs=0.05)
        assert "Total core" in experiments.format_table3(result)


class TestCmpExperiments:
    def test_fig10_normalization(self):
        result = experiments.run_fig10(instructions=TINY, suites=[Suite.NPB])
        data = result.normalized[Suite.NPB]
        assert data["execution time"]["Baseline CMP"] == pytest.approx(1.0)
        assert data["execution time"]["Asymmetric++ CMP"] < 1.0
        assert data["power"]["Asymmetric++ CMP"] > 1.0
        assert "energy-delay" in experiments.format_fig10(result)

    def test_fig11_per_benchmark(self):
        result = experiments.run_fig11(instructions=TINY, workloads=["FT", "gobmk"])
        assert result.normalized_time["FT"]["Baseline CMP"] == pytest.approx(1.0)
        assert result.normalized_time["FT"]["Asymmetric++ CMP"] < 1.0
        assert result.normalized_time["gobmk"]["Asymmetric++ CMP"] == pytest.approx(1.0)
        assert "gobmk" in experiments.format_fig11(result)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig1" in output and "table3" in output

    def test_run_table2(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "gshare" in capsys.readouterr().out

    def test_run_fig6_with_instruction_override(self, capsys):
        assert cli_main(["table3", "--instructions", "20000"]) == 0
        assert "Total core" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            cli_main(["figure99"])
