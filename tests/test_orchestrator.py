"""Tests for the experiment orchestrator and the ``all`` CLI pipeline.

The headline assertion mirrors the acceptance criterion of the
orchestrator work: a smoke ``repro-frontend all`` run emits a manifest
covering every registered experiment, and an immediate rerun (fresh
in-process caches, same disk store) recomputes nothing while emitting
bit-identical CSV/JSON outputs.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.experiments import clear_trace_cache, run_fig11, tables_fig11
from repro.experiments.fig11_per_benchmark_time import SPEC as FIG11_SPEC
from repro.results.artifacts import build_frame_artifact, rendered_artifact
from repro.results.orchestrator import (
    experiment_key,
    get_spec,
    registry_names,
    run_experiments,
    unconsumed_flags,
    write_manifest,
)
from repro.results.store import (
    RESULT_CACHE_DIR_VARIABLE,
    clear_result_store,
    load_result,
)

#: Short enough that the full 18-experiment suite stays test-friendly.
TINY = 6_000

#: Every paper artefact (plus the preset explorations) the orchestrator
#: must cover.
EXPECTED = {
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
    "fig9", "fig10", "fig11", "table1", "table2", "table3", "cmpsweep",
    "explore-frontend", "explore-smoke", "explore-cmp",
}


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_result_store()
    clear_trace_cache()
    yield
    clear_result_store()
    clear_trace_cache()


def _manifest_files(directory) -> dict:
    """Per-experiment file bytes of a manifest directory (not manifest.json)."""
    return {
        name: (directory / name).read_bytes()
        for name in sorted(os.listdir(directory))
        if name != "manifest.json"
    }


class TestRegistry:
    def test_registry_covers_every_paper_artefact(self):
        assert set(registry_names()) == EXPECTED

    def test_dependencies_precede_dependents(self):
        names = registry_names()
        for name in names:
            for dependency in get_spec(name).dependencies:
                assert names.index(dependency) < names.index(name)

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(KeyError, match="figure99"):
            run_experiments(["figure99"], instructions=TINY)


class TestOrchestratedRuns:
    def test_results_are_stored_and_reused_in_process(self):
        first = run_experiments(["table2"], instructions=TINY)
        assert first.counts()["computed"] == 1
        second = run_experiments(["table2"], instructions=TINY)
        assert second.counts() == {"computed": 0, "derived": 0, "cached": 1}
        assert second.outcome("table2").artifact == first.outcome("table2").artifact

    def test_instruction_budget_invalidates(self):
        run_experiments(["fig6"], instructions=TINY)
        report = run_experiments(["fig6"], instructions=TINY * 2)
        assert report.counts()["computed"] == 1

    def test_fig11_derives_from_fig10_bit_identically(self):
        report = run_experiments(["fig10", "fig11"], instructions=TINY)
        assert report.outcome("fig10").status == "computed"
        assert report.outcome("fig11").status == "derived"
        result = run_fig11(instructions=TINY)
        direct = build_frame_artifact(
            "fig11", FIG11_SPEC.title, tables_fig11(result), result
        )
        derived = report.outcome("fig11").artifact
        # Both the stored frame-native form and the rendered manifest
        # layout are bit-identical to a direct computation.
        assert json.dumps(derived) == json.dumps(direct)
        assert json.dumps(rendered_artifact(derived)) == json.dumps(
            rendered_artifact(direct)
        )

    def test_fig11_alone_computes_without_pulling_in_fig10(self):
        report = run_experiments(["fig11"], instructions=TINY)
        assert [o.name for o in report.outcomes] == ["fig11"]
        assert report.outcome("fig11").status == "computed"

    def test_interrupted_run_resumes_from_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        run_experiments(["fig6", "fig9"], instructions=TINY)
        # Simulate the process dying and restarting.
        clear_result_store()
        clear_trace_cache()
        report = run_experiments(["fig6", "fig9", "table2"], instructions=TINY)
        statuses = {o.name: o.status for o in report.outcomes}
        assert statuses == {"fig6": "cached", "fig9": "cached", "table2": "computed"}

    def test_unconsumed_flags_detection(self):
        assert unconsumed_flags(["fig1"], False, ["core-scaling"]) == ["--scenarios"]
        assert unconsumed_flags(["cmpsweep"], True, ["core-scaling"]) == []
        assert unconsumed_flags(registry_names(), True, None) == []
        # Model-only experiments take no instruction budget.
        assert unconsumed_flags(["table2"], False, None, "--smoke") == ["--smoke"]
        assert unconsumed_flags(["table2", "fig1"], False, None, "--smoke") == []


class TestFullSuiteManifest:
    def test_all_smoke_rerun_is_served_from_store_bit_identically(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path / "store"))
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"

        assert (
            cli_main(
                ["all", "--instructions", str(TINY), "--out", str(cold_dir), "--verbose"]
            )
            == 0
        )
        cold = capsys.readouterr()

        # Fresh in-process caches: the rerun must be served entirely by
        # the disk layer, exactly like a new CLI invocation.
        clear_result_store()
        clear_trace_cache()

        assert (
            cli_main(
                ["all", "--instructions", str(TINY), "--out", str(warm_dir), "--verbose"]
            )
            == 0
        )
        warm = capsys.readouterr()

        # The manifest covers every experiment, cold and warm.
        for directory in (cold_dir, warm_dir):
            manifest = json.loads((directory / "manifest.json").read_text())
            assert set(manifest["experiments"]) == EXPECTED
            for entry in manifest["experiments"].values():
                assert (directory / entry["csv"]).exists()
                assert (directory / entry["json"]).exists()

        # Zero recomputes on the warm run, reported via --verbose.
        assert "0 computed, 0 derived, 18 served from store" in warm.err
        assert "18 served from store" not in cold.err

        # Every emitted CSV/JSON is bit-identical between the runs, and
        # so is the rendered text output.
        assert _manifest_files(cold_dir) == _manifest_files(warm_dir)
        assert cold.out.replace(str(cold_dir), "") == warm.out.replace(str(warm_dir), "")

        warm_manifest = json.loads((warm_dir / "manifest.json").read_text())
        assert all(
            entry["status"] == "cached"
            for entry in warm_manifest["experiments"].values()
        )

    def test_corrupted_store_entry_triggers_recompute(self, tmp_path, monkeypatch):
        store_dir = tmp_path / "store"
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(store_dir))
        run_experiments(["fig6"], instructions=TINY)
        key = experiment_key(get_spec("fig6"), TINY)
        clear_result_store()
        clear_trace_cache()
        (entry,) = list(store_dir.iterdir())
        entry.write_text("{ truncated")
        assert load_result(key, "fig6") is None
        clear_result_store()
        report = run_experiments(["fig6"], instructions=TINY)
        assert report.outcome("fig6").status == "computed"


class TestStrictCli:
    def test_ignored_scenarios_warns_by_default(self, capsys):
        assert cli_main(["fig6", "--instructions", str(TINY), "--scenarios", "paper"]) == 0
        captured = capsys.readouterr()
        assert "--scenarios ignored" in captured.err and "fig6" in captured.err

    def test_ignored_scenarios_fails_under_strict(self, capsys):
        rc = cli_main(
            ["fig6", "--instructions", str(TINY), "--scenarios", "paper", "--strict"]
        )
        assert rc != 0
        assert "--strict" in capsys.readouterr().err

    def test_ignored_budget_flag_fails_under_strict(self, capsys):
        assert cli_main(["table2", "--smoke"]) == 0
        assert "--smoke ignored" in capsys.readouterr().err
        assert cli_main(["table2", "--instructions", "5000", "--strict"]) != 0
        assert "--instructions ignored" in capsys.readouterr().err

    def test_consumed_flags_pass_under_strict(self, capsys):
        rc = cli_main(
            ["cmpsweep", "--instructions", str(TINY), "--scenarios", "paper", "--strict"]
        )
        assert rc == 0
        assert "ignored" not in capsys.readouterr().err


class TestManifestWriting:
    def test_write_manifest_lists_every_outcome(self, tmp_path):
        report = run_experiments(["table2", "table3"], instructions=TINY)
        path = write_manifest(report, str(tmp_path / "out"))
        manifest = json.loads(open(path).read())
        assert set(manifest["experiments"]) == {"table2", "table3"}
        entry = manifest["experiments"]["table2"]
        assert entry["status"] == "computed"
        assert len(entry["key"]) == 64
        csv_text = (tmp_path / "out" / entry["csv"]).read_text()
        assert csv_text.splitlines()[0].startswith("predictor,")

    def test_multi_table_csv_carries_block_names(self, tmp_path):
        report = run_experiments(
            ["cmpsweep"], instructions=TINY, scenario_names=["paper", "core-scaling"]
        )
        write_manifest(report, str(tmp_path))
        lines = (tmp_path / "cmpsweep.csv").read_text().splitlines()
        assert lines[0].startswith("table,")
        assert any(line.startswith("paper,") for line in lines)
        assert any(line.startswith("core-scaling,") for line in lines)
