"""Tests for code layout, the Trace container, and the executor."""

import pytest

from repro.trace import (
    BranchKind,
    CodeRegion,
    CodeSection,
    ExecutionSchedule,
    FixedTripCount,
    Function,
    If,
    Loop,
    Phase,
    Program,
    TraceGenerator,
    generate_trace,
    layout_program,
)
from repro.trace.instruction import TEXT_BASE_ADDRESS

from trace_fixtures import build_tiny_program, trace_of


class TestLayout:
    def test_first_block_starts_at_text_base(self, tiny_program):
        assert tiny_program.blocks[0].address >= TEXT_BASE_ADDRESS

    def test_blocks_within_a_function_are_contiguous(self, tiny_program):
        for function in tiny_program.functions:
            blocks = list(function.blocks())
            for previous, current in zip(blocks, blocks[1:]):
                assert current.address == previous.end_address

    def test_functions_do_not_overlap(self, tiny_program):
        spans = []
        for function in tiny_program.functions:
            blocks = list(function.blocks())
            spans.append((blocks[0].address, blocks[-1].end_address))
        spans.sort()
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b >= end_a

    def test_function_alignment(self):
        program = build_tiny_program()
        for function in program.functions:
            first = next(function.blocks())
            assert first.address % 16 == 0

    def test_loop_backedge_is_backward(self):
        body = CodeRegion(4)
        loop = Loop(body, FixedTripCount(3))
        program = Program("p", [Function("f", loop)])
        layout_program(program)
        assert loop.latch.taken_target == body.block.address
        assert loop.latch.taken_target < loop.latch.address

    def test_if_branch_is_forward(self):
        then = CodeRegion(4)
        conditional = If(0.5, then)
        program = Program("p", [Function("f", conditional)])
        layout_program(program)
        assert conditional.condition.taken_target == then.block.end_address
        assert conditional.condition.taken_target > conditional.condition.address

    def test_if_else_targets(self):
        then, orelse = CodeRegion(4), CodeRegion(5)
        conditional = If(0.5, then, orelse=orelse)
        program = Program("p", [Function("f", conditional)])
        layout_program(program)
        assert conditional.condition.taken_target == orelse.block.address
        assert conditional.skip_else.taken_target == orelse.block.end_address

    def test_call_targets_callee_entry(self):
        callee = Function("leaf", CodeRegion(3))
        from repro.trace import CallRegion

        call = CallRegion(callee)
        program = Program("p", [Function("main", call), callee])
        layout_program(program)
        assert call.call_block.taken_target == callee.entry_address


class TestTrace:
    def test_instruction_count_matches_blocks(self, tiny_trace):
        blocks = tiny_trace.program.blocks
        expected = sum(blocks[e.block_id].num_instructions for e in tiny_trace.events)
        assert tiny_trace.instruction_count() == expected

    def test_sections_partition_total(self, ft_trace):
        serial = ft_trace.instruction_count(CodeSection.SERIAL)
        parallel = ft_trace.instruction_count(CodeSection.PARALLEL)
        assert serial + parallel == ft_trace.instruction_count(CodeSection.TOTAL)
        assert ft_trace.section_fraction(CodeSection.SERIAL) == pytest.approx(
            serial / (serial + parallel)
        )

    def test_branch_records_only_contain_branches(self, tiny_trace):
        for record in tiny_trace.branch_records():
            assert record.kind.is_branch

    def test_branch_records_are_cached(self, tiny_trace):
        assert tiny_trace.branch_records() is tiny_trace.branch_records()

    def test_conditional_branches_subset(self, tiny_trace):
        conditional = tiny_trace.conditional_branches()
        assert all(r.kind is BranchKind.CONDITIONAL_DIRECT for r in conditional)
        assert len(conditional) <= tiny_trace.branch_count()

    def test_backward_forward_classification(self, tiny_trace):
        for record in tiny_trace.branch_records():
            if record.target is None:
                continue
            assert record.is_backward == (record.target < record.address)
            assert record.is_backward != record.is_forward

    def test_block_execution_counts_sum_to_events(self, tiny_trace):
        counts = tiny_trace.block_execution_counts()
        assert sum(counts.values()) == len(tiny_trace.events)

    def test_mpki_helper(self, tiny_trace):
        instructions = tiny_trace.instruction_count()
        assert tiny_trace.mpki(instructions) == pytest.approx(1000.0)
        assert tiny_trace.mpki(0) == 0.0


class TestExecution:
    def test_budget_is_respected_with_small_overshoot(self, tiny_program):
        trace = trace_of(tiny_program, instructions=1_000)
        assert 1_000 <= trace.instruction_count() <= 1_200

    def test_generation_is_deterministic(self, tiny_program):
        first = trace_of(tiny_program, instructions=1_500, seed=11)
        second = trace_of(tiny_program, instructions=1_500, seed=11)
        assert first.events == second.events

    def test_different_seeds_differ(self):
        program = build_tiny_program(probability_then=0.5)
        first = trace_of(program, instructions=1_500, seed=1)
        second = trace_of(program, instructions=1_500, seed=2)
        assert first.events != second.events

    def test_phase_sections_are_tagged(self, tiny_program):
        serial = Phase(tiny_program.entry_function, CodeSection.SERIAL)
        parallel = Phase(tiny_program.function_named("leaf"), CodeSection.PARALLEL)
        schedule = ExecutionSchedule(steady=[serial, parallel])
        trace = TraceGenerator(tiny_program, schedule, seed=0).run(2_000)
        assert trace.instruction_count(CodeSection.SERIAL) > 0
        assert trace.instruction_count(CodeSection.PARALLEL) > 0

    def test_phase_rejects_total_section(self, tiny_program):
        with pytest.raises(ValueError):
            Phase(tiny_program.entry_function, CodeSection.TOTAL)

    def test_phase_rejects_zero_repeat(self, tiny_program):
        with pytest.raises(ValueError):
            Phase(tiny_program.entry_function, CodeSection.SERIAL, repeat=0)

    def test_schedule_requires_phases(self):
        with pytest.raises(ValueError):
            ExecutionSchedule()

    def test_generate_trace_requires_positive_budget(self, tiny_program):
        schedule = ExecutionSchedule(
            steady=[Phase(tiny_program.entry_function, CodeSection.SERIAL)]
        )
        with pytest.raises(ValueError):
            generate_trace(tiny_program, schedule, max_instructions=0)

    def test_setup_phase_runs_once(self, tiny_program):
        setup = Phase(tiny_program.function_named("leaf"), CodeSection.SERIAL)
        steady = Phase(tiny_program.entry_function, CodeSection.PARALLEL)
        schedule = ExecutionSchedule(setup=[setup], steady=[steady])
        trace = TraceGenerator(tiny_program, schedule, seed=0).run(3_000)
        leaf_blocks = {
            b.block_id for b in tiny_program.function_named("leaf").blocks()
        }
        serial_events = [
            e for e in trace.events
            if e.section is CodeSection.SERIAL and e.block_id in leaf_blocks
        ]
        # leaf has two blocks (body + return), executed exactly once as setup.
        assert len(serial_events) == 2
