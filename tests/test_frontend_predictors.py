"""Tests for the branch direction predictors (Section IV-A)."""

import pytest

from repro.frontend.predictors import (
    BimodalPredictor,
    GsharePredictor,
    LoopPredictor,
    PredictorWithLoop,
    TagePredictor,
    TournamentPredictor,
    make_predictor,
)
from repro.frontend.predictors.base import SaturatingCounter, index_bits
from repro.frontend.predictors.factory import predictor_configurations
from repro.frontend.simulation import simulate_branch_predictor


def train(predictor, address, outcomes):
    """Feed a sequence of outcomes and return the prediction accuracy."""
    correct = 0
    for taken in outcomes:
        if predictor.predict(address) == taken:
            correct += 1
        predictor.update(address, taken)
    return correct / len(outcomes)


class TestHelpers:
    def test_saturating_counter_saturates(self):
        value = 0
        for _ in range(10):
            value = SaturatingCounter.update(value, True)
        assert value == 3
        for _ in range(10):
            value = SaturatingCounter.update(value, False)
        assert value == 0

    def test_saturating_counter_direction(self):
        assert SaturatingCounter.taken(2)
        assert not SaturatingCounter.taken(1)

    def test_index_bits(self):
        assert index_bits(1) == 0
        assert index_bits(1024) == 10
        with pytest.raises(ValueError):
            index_bits(3)


class TestBimodal:
    def test_learns_a_biased_branch(self):
        predictor = BimodalPredictor(entries=256)
        accuracy = train(predictor, 0x4000, [True] * 100)
        assert accuracy > 0.95

    def test_learns_not_taken_branches(self):
        predictor = BimodalPredictor(entries=256)
        accuracy = train(predictor, 0x4000, [False] * 100)
        assert accuracy > 0.9

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            BimodalPredictor(entries=100)

    def test_storage(self):
        assert BimodalPredictor(entries=4096).storage_bits() == 8192


class TestGshare:
    def test_learns_biased_branches(self):
        predictor = GsharePredictor(history_bits=12)
        accuracy = train(predictor, 0x4000, [True] * 200)
        assert accuracy > 0.97

    def test_learns_an_alternating_pattern(self):
        predictor = GsharePredictor(history_bits=12)
        pattern = [True, False] * 200
        accuracy = train(predictor, 0x4000, pattern)
        assert accuracy > 0.9

    def test_table_ii_budgets(self):
        assert make_predictor("gshare", "small").storage_kb() == pytest.approx(2.0, rel=0.01)
        assert make_predictor("gshare", "big").storage_kb() == pytest.approx(16.0, rel=0.01)


class TestTournament:
    def test_learns_biased_branches(self):
        predictor = TournamentPredictor()
        accuracy = train(predictor, 0x4000, [True] * 200)
        assert accuracy > 0.95

    def test_local_history_catches_short_periodic_patterns(self):
        predictor = TournamentPredictor(local_index_bits=10, history_bits=10)
        pattern = ([True, True, False] * 120)
        accuracy = train(predictor, 0x4000, pattern)
        assert accuracy > 0.8

    def test_table_ii_cost_formula(self):
        small = TournamentPredictor(local_index_bits=10, history_bits=8)
        expected = (1 << 10) * (8 + 2) + (1 << (8 + 2))
        assert small.storage_bits() == expected


class TestTage:
    def test_learns_biased_branches(self):
        predictor = TagePredictor(num_tables=4, entries_per_table=128, max_history=64)
        accuracy = train(predictor, 0x4000, [True] * 300)
        assert accuracy > 0.95

    def test_learns_long_periodic_pattern_better_than_gshare_small(self):
        pattern = ([True] * 7 + [False]) * 80
        tage = make_predictor("tage", "big")
        gshare = GsharePredictor(history_bits=6)
        tage_accuracy = train(tage, 0x4000, list(pattern))
        gshare_accuracy = train(gshare, 0x4000, list(pattern))
        assert tage_accuracy >= gshare_accuracy

    def test_update_without_predict_is_allowed(self):
        predictor = TagePredictor(num_tables=2, entries_per_table=64, max_history=16)
        predictor.update(0x4000, True)  # must not raise

    def test_rejects_zero_tables(self):
        with pytest.raises(ValueError):
            TagePredictor(num_tables=0)

    def test_small_budget_is_roughly_2kb(self):
        assert make_predictor("tage", "small").storage_kb() == pytest.approx(2.0, rel=0.25)

    def test_big_budget_is_far_larger_than_small(self):
        small = make_predictor("tage", "small").storage_bits()
        big = make_predictor("tage", "big").storage_bits()
        assert big > 4 * small


class TestLoopPredictor:
    def _run_loop(self, predictor, address, trip, repetitions):
        mispredictions = 0
        for _ in range(repetitions):
            for iteration in range(trip):
                taken = iteration < trip - 1
                if predictor.predict(address) != taken and predictor.is_confident(address):
                    mispredictions += 1
                predictor.update(address, taken)
        return mispredictions

    def test_learns_constant_trip_count(self):
        predictor = LoopPredictor()
        address = 0x4010
        self._run_loop(predictor, address, trip=12, repetitions=10)
        assert predictor.is_confident(address)
        # Once confident, a full loop execution is predicted perfectly.
        for iteration in range(12):
            assert predictor.predict(address) == (iteration < 11)
            predictor.update(address, iteration < 11)

    def test_not_confident_for_varying_trip_counts(self):
        predictor = LoopPredictor()
        address = 0x4020
        trips = [5, 7, 6, 8, 5, 9, 6, 7, 5, 8]
        for trip in trips:
            for iteration in range(trip):
                predictor.update(address, iteration < trip - 1)
        assert not predictor.is_confident(address)

    def test_mostly_not_taken_branches_are_not_treated_as_loops(self):
        predictor = LoopPredictor()
        address = 0x4030
        for _ in range(50):
            predictor.update(address, False)
        assert not predictor.is_confident(address)

    def test_storage_is_about_half_a_kilobyte(self):
        # The paper budgets the 64-entry LBP at roughly 512 bytes.
        assert 300 <= LoopPredictor().storage_bytes() <= 600

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ValueError):
            LoopPredictor(entries=60)


class TestHybrid:
    def test_loop_override_improves_fixed_loops(self):
        base = GsharePredictor(history_bits=8)
        hybrid = PredictorWithLoop(GsharePredictor(history_bits=8), LoopPredictor())
        address = 0x4040
        outcomes = []
        for _ in range(60):
            outcomes.extend([True] * 19 + [False])
        base_accuracy = train(base, address, outcomes)
        hybrid_accuracy = train(hybrid, address, outcomes)
        assert hybrid_accuracy >= base_accuracy

    def test_storage_adds_the_loop_predictor(self):
        base = GsharePredictor(history_bits=13)
        hybrid = PredictorWithLoop(GsharePredictor(history_bits=13), LoopPredictor())
        assert hybrid.storage_bits() == base.storage_bits() + LoopPredictor().storage_bits()

    def test_name_prefix(self):
        hybrid = make_predictor("tage", "small", with_loop=True)
        assert hybrid.name == "L-tage"


class TestFactory:
    def test_unknown_kind_and_budget(self):
        with pytest.raises(ValueError):
            make_predictor("perceptron")
        with pytest.raises(ValueError):
            make_predictor("gshare", "huge")

    def test_nine_figure5_configurations(self):
        configurations = predictor_configurations()
        assert len(configurations) == 9
        labels = [label for label, _, _, _ in configurations]
        assert labels[:3] == ["gshare-big", "tournament-big", "tage-big"]
        assert all(label.startswith("L-") for label in labels[6:])


class TestSimulationOnTraces:
    def test_mpki_is_consistent_with_misprediction_rate(self, ft_trace):
        result = simulate_branch_predictor(ft_trace, make_predictor("gshare", "small"))
        assert result.mpki == pytest.approx(
            result.mispredictions * 1000.0 / result.instruction_count
        )
        breakdown = result.breakdown_mpki()
        assert sum(breakdown.values()) == pytest.approx(result.mpki)

    def test_hpc_mpki_is_much_lower_than_desktop(self, ft_trace, gobmk_trace):
        predictor = make_predictor("tage", "small")
        hpc = simulate_branch_predictor(ft_trace, predictor).mpki
        desktop = simulate_branch_predictor(
            gobmk_trace, make_predictor("tage", "small")
        ).mpki
        assert desktop > 3 * hpc  # Figure 5 shape

    def test_loop_predictor_helps_hpc(self, ft_trace):
        plain = simulate_branch_predictor(ft_trace, make_predictor("gshare", "small")).mpki
        with_loop = simulate_branch_predictor(
            ft_trace, make_predictor("gshare", "small", with_loop=True)
        ).mpki
        assert with_loop <= plain  # Implication 1
