"""Hand-built tiny programs shared by the trace-layer tests.

Kept in an unambiguously named module (not ``conftest``) so tests can
import the helpers directly: ``conftest`` is also the name of the
benchmark harness configuration, and which of the two wins the
``sys.modules`` slot depends on collection order.
"""

from __future__ import annotations

from repro.trace import (
    CodeSection,
    CodeRegion,
    ExecutionSchedule,
    FixedTripCount,
    Function,
    If,
    Loop,
    Phase,
    Program,
    Sequence,
    TraceGenerator,
    layout_program,
)


def build_tiny_program(loop_trips: int = 5, probability_then: float = 0.8) -> Program:
    """A two-function program with one loop, one conditional, one call."""
    callee = Function(name="leaf", body=CodeRegion(6))
    body = Sequence([
        CodeRegion(4),
        If(probability_then, CodeRegion(3)),
        CodeRegion(2),
    ])
    main_body = Sequence([
        CodeRegion(5),
        Loop(body, FixedTripCount(loop_trips)),
        CodeRegion(3),
    ])
    main = Function(name="main", body=main_body)
    program = Program("tiny", [main, callee])
    return layout_program(program)


def trace_of(program: Program, instructions: int = 2_000, seed: int = 7):
    """Run a program's first function as a steady serial phase."""
    schedule = ExecutionSchedule(
        steady=[Phase(program.entry_function, CodeSection.SERIAL)]
    )
    return TraceGenerator(program, schedule, seed=seed).run(instructions)
