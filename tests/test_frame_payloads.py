"""The frame-native payload contract, end to end.

PR 7 made :class:`repro.api.frame.ResultFrame` the canonical experiment
payload from driver to store to CLI.  These tests pin the three load-
bearing guarantees of that refactor:

* **Golden byte-identity**: the manifest CSV/JSON emitted for every
  registered experiment is byte-identical to the pre-refactor output
  recorded in ``tests/golden_manifest/`` (same instruction budget).
* **Versioned columnar storage**: every stored artifact carries its
  payload as schema-versioned frames that round-trip through the disk
  store, and corrupt frame payloads are rejected and recomputed.
* **Sliceable payloads**: every experiment's stored frames support
  ``select()``/``column()`` with no per-experiment glue.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.api.frame import ResultFrame
from repro.experiments import clear_trace_cache
from repro.results.artifacts import ARTIFACT_SCHEMA_VERSION
from repro.results.orchestrator import (
    experiment_key,
    get_spec,
    registry_names,
    run_experiments,
    write_manifest,
)
from repro.results.store import (
    RESULT_CACHE_DIR_VARIABLE,
    clear_result_store,
    load_result,
)

#: Must match the budget the golden manifests were recorded at.
TINY = 6_000

GOLDEN = pathlib.Path(__file__).resolve().parent / "golden_manifest"


@pytest.fixture(scope="module")
def full_run(tmp_path_factory):
    """One full 15-experiment run plus its written manifest directory."""
    clear_result_store()
    clear_trace_cache()
    report = run_experiments(registry_names(), instructions=TINY)
    out_dir = tmp_path_factory.mktemp("manifest")
    write_manifest(report, str(out_dir))
    yield report, out_dir
    clear_result_store()
    clear_trace_cache()


class TestGoldenByteIdentity:
    def test_golden_directory_covers_every_experiment(self):
        names = {path.stem for path in GOLDEN.iterdir()}
        assert names == set(registry_names())

    @pytest.mark.parametrize("name", sorted(registry_names()))
    @pytest.mark.parametrize("extension", ["csv", "json"])
    def test_manifest_file_is_byte_identical(self, full_run, name, extension):
        _, out_dir = full_run
        emitted = (out_dir / f"{name}.{extension}").read_bytes()
        golden = (GOLDEN / f"{name}.{extension}").read_bytes()
        assert emitted == golden


class TestStoredFrameContract:
    def test_every_artifact_is_frame_native(self, full_run):
        report, _ = full_run
        for outcome in report.outcomes:
            artifact = outcome.artifact
            assert artifact["schema"] == ARTIFACT_SCHEMA_VERSION, outcome.name
            assert artifact["frames"], outcome.name
            assert artifact["primary"] in artifact["frames"], outcome.name
            for name, payload in artifact["frames"].items():
                frame = ResultFrame.from_payload(payload)
                assert frame.columns, (outcome.name, name)

    def test_every_stored_frame_slices(self, full_run):
        """select()/column() work on every experiment's stored frames."""
        report, _ = full_run
        for outcome in report.outcomes:
            for name in sorted(outcome.artifact["frames"]):
                frame = outcome.stored_frame(name)
                rows = frame.rows()
                assert rows, (outcome.name, name)
                first_column = frame.columns[0]
                assert len(frame.column(first_column)) == len(rows)
                pivot_value = rows[0][0]
                selected = frame.select(**{first_column: pivot_value})
                assert 0 < len(selected.rows()) <= len(rows)
                assert all(
                    record[first_column] == pivot_value
                    for record in selected.records()
                )

    def test_primary_frame_supports_workload_selection(self, full_run):
        """The acceptance example: select(workload=...) on a payload."""
        report, _ = full_run
        frame = report.outcome("fig11").stored_frame()
        workload = frame.column("workload")[0]
        narrowed = frame.select(workload=workload)
        assert narrowed.rows()
        assert set(narrowed.column("workload")) == {workload}


class TestDiskRoundTrip:
    def test_frames_round_trip_through_the_disk_store(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        clear_result_store()
        clear_trace_cache()
        report = run_experiments(["table2"], instructions=TINY)
        computed = report.outcome("table2").artifact
        # Fresh process simulation: only the disk layer remains.
        clear_result_store()
        key = experiment_key(get_spec("table2"), TINY)
        loaded = load_result(key, "table2")
        assert loaded is not None
        assert json.dumps(loaded) == json.dumps(computed)
        for name, payload in loaded["frames"].items():
            frame = ResultFrame.from_payload(payload)
            assert frame.rows(), name
        clear_result_store()
        clear_trace_cache()

    def test_corrupt_frame_payload_is_rejected_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        """A stored entry whose frame payload no longer validates is a
        miss (not a crash), and the orchestrator recomputes it."""
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        clear_result_store()
        clear_trace_cache()
        run_experiments(["table2"], instructions=TINY)
        key = experiment_key(get_spec("table2"), TINY)
        (entry_path,) = list(tmp_path.iterdir())
        entry = json.loads(entry_path.read_text())
        primary = entry["artifact"]["primary"]
        # Mangle the frame: a row narrower than the declared columns.
        entry["artifact"]["frames"][primary]["rows"][0] = ["stub"]
        entry_path.write_text(json.dumps(entry))
        clear_result_store()
        assert load_result(key, "table2") is None
        clear_result_store()
        report = run_experiments(["table2"], instructions=TINY)
        assert report.outcome("table2").status == "computed"
        clear_result_store()
        clear_trace_cache()
