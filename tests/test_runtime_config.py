"""RuntimeConfig resolution: explicit kwarg > environment > default.

Every field of :class:`repro.api.runtime_config.RuntimeConfig` is
checked through the full precedence chain, including the ``none``-
disables-cache semantics of both cache directories and the activation
scoping the Session layer builds on.
"""

from __future__ import annotations

import pytest

from repro.api import runtime_config as rc


class TestPrecedence:
    """Explicit argument beats environment variable beats default."""

    def test_defaults_with_clean_environment(self, monkeypatch):
        for name in rc.ENVIRONMENT_VARIABLES:
            monkeypatch.delenv(name, raising=False)
        config = rc.RuntimeConfig.from_environment()
        assert config.trace_engine == "compiled"
        assert config.trace_cache_dir is None
        assert config.result_cache_dir is None
        assert config.parallel is False
        assert config.processes is None
        assert config.instructions == rc.DEFAULT_INSTRUCTIONS

    def test_trace_engine(self, monkeypatch):
        monkeypatch.delenv(rc.TRACE_ENGINE_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().trace_engine == "compiled"
        monkeypatch.setenv(rc.TRACE_ENGINE_VARIABLE, "reference")
        assert rc.RuntimeConfig.from_environment().trace_engine == "reference"
        # Explicit beats the environment.
        assert (
            rc.RuntimeConfig.from_environment(trace_engine="compiled").trace_engine
            == "compiled"
        )
        # Unknown *environment* spellings resolve to the default engine
        # (lenient, the historical env-var contract) ...
        monkeypatch.setenv(rc.TRACE_ENGINE_VARIABLE, "warp-drive")
        assert rc.RuntimeConfig.from_environment().trace_engine == "compiled"
        # ... but an unknown *explicit* engine raises: the typed API
        # must not swallow typos.
        with pytest.raises(ValueError):
            rc.RuntimeConfig.from_environment(trace_engine="referense")
        with pytest.raises(ValueError):
            rc.RuntimeConfig(trace_engine="bogus")
        with pytest.raises(ValueError):
            rc.RuntimeConfig().replace(trace_engine="bogus")

    @pytest.mark.parametrize(
        "field,variable",
        [
            ("trace_cache_dir", rc.TRACE_CACHE_DIR_VARIABLE),
            ("result_cache_dir", rc.RESULT_CACHE_DIR_VARIABLE),
        ],
    )
    def test_cache_dirs(self, monkeypatch, tmp_path, field, variable):
        env_dir = str(tmp_path / "from-env")
        explicit_dir = str(tmp_path / "explicit")

        monkeypatch.delenv(variable, raising=False)
        assert getattr(rc.RuntimeConfig.from_environment(), field) is None

        monkeypatch.setenv(variable, env_dir)
        assert getattr(rc.RuntimeConfig.from_environment(), field) == env_dir
        # Explicit path beats the environment path.
        config = rc.RuntimeConfig.from_environment(**{field: explicit_dir})
        assert getattr(config, field) == explicit_dir
        # Explicit None (and every disable spelling) disables even when
        # the environment names a directory.
        config = rc.RuntimeConfig.from_environment(**{field: None})
        assert getattr(config, field) is None
        for spelling in ("none", "NONE", "off", "0", "", "disabled"):
            config = rc.RuntimeConfig.from_environment(**{field: spelling})
            assert getattr(config, field) is None, spelling

        # Environment disable spellings resolve to None too.
        monkeypatch.setenv(variable, "none")
        assert getattr(rc.RuntimeConfig.from_environment(), field) is None
        # ... and an explicit path still beats an environment disable.
        config = rc.RuntimeConfig.from_environment(**{field: explicit_dir})
        assert getattr(config, field) == explicit_dir

    def test_parallel_defaults_the_shared_trace_cache(self, monkeypatch, tmp_path):
        """Parallel with a fully unset trace cache auto-enables the
        per-user shared directory (the legacy run_sweep behaviour);
        explicit or environment settings still win."""
        monkeypatch.delenv(rc.TRACE_CACHE_DIR_VARIABLE, raising=False)
        config = rc.RuntimeConfig.from_environment(parallel=True)
        assert config.trace_cache_dir == rc.default_trace_cache_dir()
        # An environment disable wins over the parallel default.
        monkeypatch.setenv(rc.TRACE_CACHE_DIR_VARIABLE, "none")
        assert (
            rc.RuntimeConfig.from_environment(parallel=True).trace_cache_dir is None
        )
        # So does an explicit disable or an explicit directory.
        monkeypatch.delenv(rc.TRACE_CACHE_DIR_VARIABLE, raising=False)
        config = rc.RuntimeConfig.from_environment(
            parallel=True, trace_cache_dir=None
        )
        assert config.trace_cache_dir is None
        config = rc.RuntimeConfig.from_environment(
            parallel=True, trace_cache_dir=str(tmp_path)
        )
        assert config.trace_cache_dir == str(tmp_path)

    def test_parallel(self, monkeypatch):
        monkeypatch.delenv(rc.PARALLEL_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().parallel is False
        for truthy in ("1", "true", "YES", "on"):
            monkeypatch.setenv(rc.PARALLEL_VARIABLE, truthy)
            assert rc.RuntimeConfig.from_environment().parallel is True, truthy
        monkeypatch.setenv(rc.PARALLEL_VARIABLE, "0")
        assert rc.RuntimeConfig.from_environment().parallel is False
        monkeypatch.setenv(rc.PARALLEL_VARIABLE, "1")
        assert rc.RuntimeConfig.from_environment(parallel=False).parallel is False

    def test_processes(self, monkeypatch):
        monkeypatch.delenv(rc.PROCESSES_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().processes is None
        monkeypatch.setenv(rc.PROCESSES_VARIABLE, "4")
        assert rc.RuntimeConfig.from_environment().processes == 4
        assert rc.RuntimeConfig.from_environment(processes=2).processes == 2
        assert rc.RuntimeConfig.from_environment(processes=None).processes is None
        # Garbage in the environment falls back to the default.
        monkeypatch.setenv(rc.PROCESSES_VARIABLE, "many")
        assert rc.RuntimeConfig.from_environment().processes is None

    def test_instructions(self, monkeypatch):
        monkeypatch.delenv(rc.INSTRUCTIONS_VARIABLE, raising=False)
        assert (
            rc.RuntimeConfig.from_environment().instructions
            == rc.DEFAULT_INSTRUCTIONS
        )
        monkeypatch.setenv(rc.INSTRUCTIONS_VARIABLE, "60000")
        assert rc.RuntimeConfig.from_environment().instructions == 60000
        assert (
            rc.RuntimeConfig.from_environment(instructions=12345).instructions
            == 12345
        )
        # An explicit zero is preserved, not swallowed by a falsy check.
        assert rc.RuntimeConfig.from_environment(instructions=0).instructions == 0
        monkeypatch.setenv(rc.INSTRUCTIONS_VARIABLE, "0")
        assert rc.RuntimeConfig.from_environment().instructions == 0

    def test_executor(self, monkeypatch):
        monkeypatch.delenv(rc.EXECUTOR_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().executor == "auto"
        monkeypatch.setenv(rc.EXECUTOR_VARIABLE, "processes")
        assert rc.RuntimeConfig.from_environment().executor == "processes"
        # Explicit beats the environment; names pass through unresolved
        # (entry points are validated at sweep time, not here).
        config = rc.RuntimeConfig.from_environment(executor="serial")
        assert config.executor == "serial"
        assert rc.RuntimeConfig(executor="  ").executor == "auto"

    def test_retries(self, monkeypatch):
        monkeypatch.delenv(rc.RETRIES_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().retries == rc.DEFAULT_RETRIES
        monkeypatch.setenv(rc.RETRIES_VARIABLE, "5")
        assert rc.RuntimeConfig.from_environment().retries == 5
        assert rc.RuntimeConfig.from_environment(retries=0).retries == 0
        # Garbage or negative environment values fall back to the
        # default; an explicit negative raises.
        monkeypatch.setenv(rc.RETRIES_VARIABLE, "lots")
        assert rc.RuntimeConfig.from_environment().retries == rc.DEFAULT_RETRIES
        monkeypatch.setenv(rc.RETRIES_VARIABLE, "-1")
        assert rc.RuntimeConfig.from_environment().retries == rc.DEFAULT_RETRIES
        with pytest.raises(ValueError):
            rc.RuntimeConfig(retries=-1)

    def test_item_timeout(self, monkeypatch):
        monkeypatch.delenv(rc.ITEM_TIMEOUT_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().item_timeout is None
        monkeypatch.setenv(rc.ITEM_TIMEOUT_VARIABLE, "2.5")
        assert rc.RuntimeConfig.from_environment().item_timeout == 2.5
        assert rc.RuntimeConfig.from_environment(item_timeout=1).item_timeout == 1.0
        # A zero/negative *environment* timeout stays lenient ("no
        # timeout", matching the unset state); explicit ones raise.
        monkeypatch.setenv(rc.ITEM_TIMEOUT_VARIABLE, "0")
        assert rc.RuntimeConfig.from_environment().item_timeout is None
        monkeypatch.setenv(rc.ITEM_TIMEOUT_VARIABLE, "-3")
        assert rc.RuntimeConfig.from_environment().item_timeout is None
        with pytest.raises(ValueError):
            rc.RuntimeConfig(item_timeout=0)
        with pytest.raises(ValueError):
            rc.RuntimeConfig(item_timeout=-3)

    def test_retry_delay(self, monkeypatch):
        monkeypatch.delenv(rc.RETRY_DELAY_VARIABLE, raising=False)
        assert (
            rc.RuntimeConfig.from_environment().retry_delay == rc.DEFAULT_RETRY_DELAY
        )
        monkeypatch.setenv(rc.RETRY_DELAY_VARIABLE, "0.2")
        assert rc.RuntimeConfig.from_environment().retry_delay == 0.2
        # A zero/negative *environment* delay falls back to the default;
        # explicit ones raise instead of silently clamping.
        monkeypatch.setenv(rc.RETRY_DELAY_VARIABLE, "0")
        assert (
            rc.RuntimeConfig.from_environment().retry_delay == rc.DEFAULT_RETRY_DELAY
        )
        with pytest.raises(ValueError):
            rc.RuntimeConfig.from_environment(retry_delay=0)
        with pytest.raises(ValueError):
            rc.RuntimeConfig(retry_delay=-1.0)

    def test_queue_dir(self, monkeypatch):
        monkeypatch.delenv(rc.QUEUE_DIR_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().queue_dir is None
        monkeypatch.setenv(rc.QUEUE_DIR_VARIABLE, "/tmp/queue")
        assert rc.RuntimeConfig.from_environment().queue_dir == "/tmp/queue"
        assert rc.RuntimeConfig.from_environment(queue_dir=None).queue_dir is None
        monkeypatch.setenv(rc.QUEUE_DIR_VARIABLE, "none")
        assert rc.RuntimeConfig.from_environment().queue_dir is None
        assert rc.RuntimeConfig(queue_dir="off").queue_dir is None

    def test_lease_ttl_and_heartbeat(self, monkeypatch):
        monkeypatch.delenv(rc.LEASE_TTL_VARIABLE, raising=False)
        monkeypatch.delenv(rc.HEARTBEAT_INTERVAL_VARIABLE, raising=False)
        config = rc.RuntimeConfig.from_environment()
        assert config.lease_ttl == rc.DEFAULT_LEASE_TTL
        assert config.heartbeat_interval == rc.DEFAULT_HEARTBEAT_INTERVAL
        monkeypatch.setenv(rc.LEASE_TTL_VARIABLE, "12")
        monkeypatch.setenv(rc.HEARTBEAT_INTERVAL_VARIABLE, "3")
        config = rc.RuntimeConfig.from_environment()
        assert config.lease_ttl == 12.0
        assert config.heartbeat_interval == 3.0
        # Garbage or non-positive environment values fall back.
        monkeypatch.setenv(rc.LEASE_TTL_VARIABLE, "soon")
        monkeypatch.setenv(rc.HEARTBEAT_INTERVAL_VARIABLE, "-1")
        config = rc.RuntimeConfig.from_environment()
        assert config.lease_ttl == rc.DEFAULT_LEASE_TTL
        assert config.heartbeat_interval == rc.DEFAULT_HEARTBEAT_INTERVAL
        # An env-only heartbeat >= TTL is resolved to the default ratio.
        monkeypatch.setenv(rc.LEASE_TTL_VARIABLE, "6")
        monkeypatch.setenv(rc.HEARTBEAT_INTERVAL_VARIABLE, "30")
        config = rc.RuntimeConfig.from_environment()
        assert config.heartbeat_interval == 1.0
        # Explicit knobs are strict: non-positive values raise, and an
        # explicit heartbeat must stay below the TTL.
        with pytest.raises(ValueError):
            rc.RuntimeConfig(lease_ttl=0)
        with pytest.raises(ValueError):
            rc.RuntimeConfig(heartbeat_interval=-2)
        with pytest.raises(ValueError):
            rc.RuntimeConfig(lease_ttl=5.0, heartbeat_interval=6.0)
        # Lowering only the TTL keeps the untouched default heartbeat
        # usable by scaling it down at the default ratio.
        config = rc.RuntimeConfig(lease_ttl=3.0)
        assert config.heartbeat_interval == pytest.approx(0.5)

    def test_fault_plan(self, monkeypatch):
        monkeypatch.delenv(rc.FAULT_PLAN_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().fault_plan is None
        document = '{"faults": [{"kind": "raise", "index": 0}]}'
        monkeypatch.setenv(rc.FAULT_PLAN_VARIABLE, document)
        assert rc.RuntimeConfig.from_environment().fault_plan == document
        assert rc.RuntimeConfig.from_environment(fault_plan=None).fault_plan is None

    def test_execution_knobs_stay_out_of_semantic(self):
        config = rc.RuntimeConfig(
            executor="processes",
            retries=7,
            item_timeout=3.0,
            retry_delay=0.2,
            fault_plan='{"faults": []}',
        )
        # Execution policy can never change the numbers, so it can
        # never change a result key either.
        assert config.semantic() == rc.RuntimeConfig().semantic()


class TestConfigBehaviour:
    def test_replace_normalizes_cache_dirs_and_engine(self):
        config = rc.RuntimeConfig()
        assert config.replace(trace_cache_dir="none").trace_cache_dir is None
        assert config.replace(result_cache_dir="off").result_cache_dir is None
        assert config.replace(trace_engine="REFERENCE").trace_engine == "reference"
        kept = config.replace(trace_cache_dir="/tmp/somewhere")
        assert kept.trace_cache_dir == "/tmp/somewhere"

    def test_direct_construction_normalizes_too(self):
        config = rc.RuntimeConfig(
            trace_engine="Reference", trace_cache_dir="NONE", result_cache_dir=""
        )
        assert config.trace_engine == "reference"
        assert config.trace_cache_dir is None
        assert config.result_cache_dir is None

    def test_semantic_excludes_execution_details(self):
        config = rc.RuntimeConfig(parallel=True, processes=8, instructions=1)
        assert config.semantic() == {"trace_engine": "compiled"}

    def test_describe_covers_every_field(self):
        described = rc.RuntimeConfig().describe()
        assert set(described) == {
            "trace_engine",
            "trace_cache_dir",
            "result_cache_dir",
            "parallel",
            "processes",
            "instructions",
            "executor",
            "retries",
            "item_timeout",
            "retry_delay",
            "fault_plan",
            "cache_namespace",
            "queue_dir",
            "lease_ttl",
            "heartbeat_interval",
            "serve_host",
            "serve_port",
        }


class TestCacheNamespace:
    """One path component isolating concurrent sessions' disk caches."""

    def test_precedence_and_normalization(self, monkeypatch):
        monkeypatch.delenv(rc.CACHE_NAMESPACE_VARIABLE, raising=False)
        assert rc.RuntimeConfig.from_environment().cache_namespace is None
        monkeypatch.setenv(rc.CACHE_NAMESPACE_VARIABLE, "ci-run-7")
        assert rc.RuntimeConfig.from_environment().cache_namespace == "ci-run-7"
        # Explicit beats the environment; blank means "no namespace".
        config = rc.RuntimeConfig.from_environment(cache_namespace="mine")
        assert config.cache_namespace == "mine"
        assert (
            rc.RuntimeConfig.from_environment(cache_namespace="  ").cache_namespace
            is None
        )
        assert (
            rc.RuntimeConfig.from_environment(cache_namespace=None).cache_namespace
            is None
        )

    def test_explicit_invalid_namespace_raises(self):
        for bad in ("a/b", "a\\b", "..", "."):
            with pytest.raises(ValueError):
                rc.RuntimeConfig(cache_namespace=bad)

    def test_invalid_environment_namespace_is_ignored(self, monkeypatch):
        monkeypatch.setenv(rc.CACHE_NAMESPACE_VARIABLE, "../escape")
        assert rc.RuntimeConfig.from_environment().cache_namespace is None

    def test_namespace_stays_out_of_semantic(self):
        # The namespace relocates cache files; it cannot change numbers,
        # so it must not invalidate content-addressed results.
        config = rc.RuntimeConfig(cache_namespace="elsewhere")
        assert config.semantic() == rc.RuntimeConfig().semantic()

    def test_accessors_join_the_namespace(self, monkeypatch, tmp_path):
        import os

        config = rc.RuntimeConfig(
            trace_cache_dir=str(tmp_path / "traces"),
            result_cache_dir=str(tmp_path / "results"),
            cache_namespace="ns",
        )
        with rc.activated(config):
            assert rc.current_trace_cache_dir() == os.path.join(
                str(tmp_path / "traces"), "ns"
            )
            assert rc.current_result_cache_dir() == os.path.join(
                str(tmp_path / "results"), "ns"
            )
        # Legacy mode joins the environment namespace the same way.
        monkeypatch.setenv(rc.TRACE_CACHE_DIR_VARIABLE, str(tmp_path / "traces"))
        monkeypatch.setenv(rc.RESULT_CACHE_DIR_VARIABLE, str(tmp_path / "results"))
        monkeypatch.setenv(rc.CACHE_NAMESPACE_VARIABLE, "env-ns")
        assert rc.current_trace_cache_dir() == os.path.join(
            str(tmp_path / "traces"), "env-ns"
        )
        assert rc.current_result_cache_dir() == os.path.join(
            str(tmp_path / "results"), "env-ns"
        )
        # A namespace without an enabled disk layer stays disabled.
        monkeypatch.setenv(rc.TRACE_CACHE_DIR_VARIABLE, "none")
        assert rc.current_trace_cache_dir() is None

    def test_two_namespaces_resolve_to_distinct_paths(self, tmp_path):
        shared = str(tmp_path / "shared")
        first = rc.RuntimeConfig(trace_cache_dir=shared, cache_namespace="a")
        second = rc.RuntimeConfig(trace_cache_dir=shared, cache_namespace="b")
        with rc.activated(first):
            dir_a = rc.current_trace_cache_dir()
        with rc.activated(second):
            dir_b = rc.current_trace_cache_dir()
        assert dir_a != dir_b
        assert dir_a.startswith(shared) and dir_b.startswith(shared)

    def test_worker_environment_exports_namespaced_dir_once(
        self, monkeypatch, tmp_path
    ):
        import os

        monkeypatch.setenv(rc.CACHE_NAMESPACE_VARIABLE, "parent-ns")
        config = rc.RuntimeConfig(
            trace_cache_dir=str(tmp_path / "traces"), cache_namespace="ns"
        )
        with rc.worker_environment(config):
            # The exported directory is already namespaced, and the
            # namespace variable is blanked so workers (which resolve it
            # in legacy mode) cannot join it a second time.
            assert rc.read_environment(rc.TRACE_CACHE_DIR_VARIABLE) == os.path.join(
                str(tmp_path / "traces"), "ns"
            )
            assert rc.read_environment(rc.CACHE_NAMESPACE_VARIABLE) == ""
            assert rc.current_trace_cache_dir() == os.path.join(
                str(tmp_path / "traces"), "ns"
            )
        # The parent's own namespace setting is restored afterwards.
        assert rc.read_environment(rc.CACHE_NAMESPACE_VARIABLE) == "parent-ns"


class TestActivation:
    """An activated config wins over the environment, scoped."""

    def test_activated_config_overrides_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv(rc.TRACE_CACHE_DIR_VARIABLE, str(tmp_path / "env"))
        monkeypatch.setenv(rc.TRACE_ENGINE_VARIABLE, "reference")
        config = rc.RuntimeConfig(
            trace_engine="compiled", trace_cache_dir=str(tmp_path / "mine")
        )
        assert rc.current_trace_cache_dir() == str(tmp_path / "env")
        assert rc.current_trace_engine() == "reference"
        with rc.activated(config):
            assert rc.active_config() is config
            assert rc.current_trace_cache_dir() == str(tmp_path / "mine")
            assert rc.current_trace_engine() == "compiled"
            assert rc.current_config() is config
        assert rc.active_config() is None
        assert rc.current_trace_cache_dir() == str(tmp_path / "env")
        assert rc.current_trace_engine() == "reference"

    def test_activation_nests_and_restores_on_error(self):
        outer = rc.RuntimeConfig(trace_engine="reference")
        inner = rc.RuntimeConfig(trace_engine="compiled")
        with rc.activated(outer):
            with rc.activated(inner):
                assert rc.current_trace_engine() == "compiled"
            assert rc.current_trace_engine() == "reference"
            with pytest.raises(RuntimeError):
                with rc.activated(inner):
                    raise RuntimeError("boom")
            assert rc.active_config() is outer
        assert rc.active_config() is None

    def test_worker_environment_exports_and_restores(self, monkeypatch, tmp_path):
        monkeypatch.setenv(rc.TRACE_CACHE_DIR_VARIABLE, str(tmp_path / "env"))
        monkeypatch.delenv(rc.TRACE_ENGINE_VARIABLE, raising=False)
        config = rc.RuntimeConfig(
            trace_engine="reference", trace_cache_dir=str(tmp_path / "mine")
        )
        with rc.worker_environment(config):
            assert rc.read_environment(rc.TRACE_CACHE_DIR_VARIABLE) == str(
                tmp_path / "mine"
            )
            assert rc.read_environment(rc.TRACE_ENGINE_VARIABLE) == "reference"
        # Fully restored: no leak into later legacy-mode resolution.
        assert rc.read_environment(rc.TRACE_CACHE_DIR_VARIABLE) == str(
            tmp_path / "env"
        )
        assert rc.read_environment(rc.TRACE_ENGINE_VARIABLE) is None
        # A disabled cache dir is exported as an explicit disable, so
        # workers cannot fall back to an inherited directory.
        with rc.worker_environment(rc.RuntimeConfig()):
            assert rc.read_environment(rc.TRACE_CACHE_DIR_VARIABLE) == "none"

    def test_export_environment_default(self, monkeypatch):
        monkeypatch.delenv(rc.PROCESSES_VARIABLE, raising=False)
        rc.export_environment_default(rc.PROCESSES_VARIABLE, "3")
        assert rc.read_environment(rc.PROCESSES_VARIABLE) == "3"
        # An already-set variable is left untouched.
        rc.export_environment_default(rc.PROCESSES_VARIABLE, "9")
        assert rc.read_environment(rc.PROCESSES_VARIABLE) == "3"
        monkeypatch.delenv(rc.PROCESSES_VARIABLE, raising=False)
