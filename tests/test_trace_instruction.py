"""Tests for the instruction-level vocabulary."""

import pytest

from repro.trace.instruction import (
    DEFAULT_INSTRUCTION_BYTES,
    FIGURE1_CATEGORIES,
    TEXT_BASE_ADDRESS,
    BranchKind,
    CodeSection,
)


class TestBranchKind:
    def test_none_is_not_a_branch(self):
        assert not BranchKind.NONE.is_branch

    @pytest.mark.parametrize(
        "kind",
        [k for k in BranchKind if k is not BranchKind.NONE],
    )
    def test_every_other_kind_is_a_branch(self, kind):
        assert kind.is_branch

    def test_only_conditional_direct_is_conditional(self):
        conditional = [k for k in BranchKind if k.is_conditional]
        assert conditional == [BranchKind.CONDITIONAL_DIRECT]

    def test_indirect_kinds(self):
        assert BranchKind.INDIRECT_CALL.is_indirect
        assert BranchKind.INDIRECT_BRANCH.is_indirect
        assert not BranchKind.CALL.is_indirect
        assert not BranchKind.RETURN.is_indirect

    def test_call_kinds(self):
        assert BranchKind.CALL.is_call
        assert BranchKind.INDIRECT_CALL.is_call
        assert not BranchKind.RETURN.is_call

    def test_figure1_category_of_direct_branches(self):
        assert BranchKind.CONDITIONAL_DIRECT.figure1_category == "direct branch"
        assert BranchKind.UNCONDITIONAL_DIRECT.figure1_category == "direct branch"

    def test_figure1_category_of_calls_and_returns(self):
        assert BranchKind.CALL.figure1_category == "call"
        assert BranchKind.INDIRECT_CALL.figure1_category == "indirect call"
        assert BranchKind.RETURN.figure1_category == "return"
        assert BranchKind.SYSCALL.figure1_category == "syscall"

    def test_figure1_category_rejects_fallthrough(self):
        with pytest.raises(ValueError):
            BranchKind.NONE.figure1_category

    def test_all_categories_are_reachable(self):
        reachable = {
            kind.figure1_category for kind in BranchKind if kind.is_branch
        }
        assert reachable == set(FIGURE1_CATEGORIES)


class TestCodeSection:
    def test_labels(self):
        assert CodeSection.SERIAL.label == "serial"
        assert CodeSection.PARALLEL.label == "parallel"
        assert CodeSection.TOTAL.label == "total"

    def test_sections_are_distinct(self):
        assert len({CodeSection.SERIAL, CodeSection.PARALLEL, CodeSection.TOTAL}) == 3


class TestConstants:
    def test_text_base_address_is_page_aligned(self):
        assert TEXT_BASE_ADDRESS % 4096 == 0

    def test_default_instruction_size_is_plausible_x86(self):
        assert 2.0 <= DEFAULT_INSTRUCTION_BYTES <= 6.0
