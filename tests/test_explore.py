"""Design-space exploration: grids, Pareto frontiers, resumable plans.

Covers the declarative :class:`GridSpec` compiler (cross products,
constraints, CMP dedup semantics), the vectorized Pareto extraction
against a brute-force O(n^2) reference, per-axis sensitivity tables,
:meth:`Session.explore` end to end (including a >=1000-point grid
through the batched engine), chunk-level store resume, and the CLI
``explore`` subcommand.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.api import ExplorePlan, GridSpec, ParetoFrontier, PlanOutcome, Session
from repro.api.frame import ResultFrame
from repro.cli import main as cli_main
from repro.explore import (
    GRID_PRESETS,
    Axis,
    cmp_exploration_grid,
    frontend_grid,
    get_grid,
    pareto_frontier,
    pareto_mask,
    sensitivity_frame,
    sensitivity_summary,
    smoke_grid,
)
from repro.explore import pareto as pareto_module
from repro.frontend.configs import BASELINE_FRONTEND
from repro.results.store import clear_result_store
from repro.trace.instruction import CodeSection

SMALL = 20_000


class TestGridSpec:
    def test_frontend_cross_product_order_and_defaults(self):
        grid = GridSpec.frontend(
            predictor_budget=("small", "big"),
            btb_entries=(256, 2048),
        )
        points = grid.points()
        assert grid.size == 4 and len(points) == 4
        # Canonical axis order regardless of keyword order; first axis
        # is the outermost loop.
        assert grid.axis_names == ("predictor_budget", "btb_entries")
        assert [p.parameters() for p in points] == [
            {"predictor_budget": "small", "btb_entries": 256},
            {"predictor_budget": "small", "btb_entries": 2048},
            {"predictor_budget": "big", "btb_entries": 256},
            {"predictor_budget": "big", "btb_entries": 2048},
        ]
        # Unswept parameters take the baseline values.
        for point in points:
            assert point.config.icache.size_bytes == 32 * 1024
            assert point.config.predictor.kind == "tournament"
        # Point names are unique and key the batched engine results.
        assert len({p.name for p in points}) == 4
        assert all(p.name == p.config.name for p in points)

    def test_constraints_filter_before_compilation(self):
        grid = GridSpec.frontend(
            predictor_budget=("small", "big"),
            btb_entries=(256, 2048),
            constraints=(
                lambda p: p["btb_entries"] == 2048 or p["predictor_budget"] == "small",
            ),
        )
        assert [p.parameters() for p in grid.points()] == [
            {"predictor_budget": "small", "btb_entries": 256},
            {"predictor_budget": "small", "btb_entries": 2048},
            {"predictor_budget": "big", "btb_entries": 2048},
        ]

    def test_unknown_axes_and_values_are_rejected(self):
        with pytest.raises(ValueError, match="unknown front-end axis"):
            GridSpec.frontend(warp_speed=(1, 2))
        with pytest.raises(ValueError, match="unknown cmp axis"):
            GridSpec(kind="cmp", axes=(Axis("warp", (1,)),))
        with pytest.raises(ValueError, match="predictor_kind"):
            GridSpec.frontend(predictor_kind=("oracle",)).points()
        with pytest.raises(ValueError, match="no values"):
            GridSpec.frontend(btb_entries=())
        with pytest.raises(ValueError, match="duplicate"):
            GridSpec.frontend(btb_entries=(256, 256))

    def test_cmp_grid_semantics(self):
        grid = GridSpec.cmp(cores=(1, 2, 3), mixes=("asymmetric", "asymmetric++"))
        points = grid.points()
        # asymmetric needs >=2 cores; asymmetric++ at N is asymmetric at
        # N+1, so the overlap is emitted once (first occurrence wins).
        names = [p.name for p in points]
        assert len(names) == len(set(names))
        assert "1B+1T" in names and "1B+2T" in names
        # The surviving point keeps the axis values of its first
        # occurrence in l2 x cores x mix order: asymmetric++ at 2 cores
        # comes before asymmetric at 3 cores.
        first = {p.name: p.parameters() for p in points}
        assert first["1B+2T"] == {"l2_kb": 256, "cores": 2, "mix": "asymmetric++"}

    def test_presets_compile(self):
        assert len(frontend_grid().points()) == 96
        assert len(smoke_grid().points()) == 8
        assert len(cmp_exploration_grid().points()) > 40
        assert set(GRID_PRESETS) == {"frontend", "smoke", "cmp"}
        assert get_grid("smoke").name == "smoke"
        with pytest.raises(KeyError, match="unknown grid preset"):
            get_grid("galaxy")


def brute_force_pareto(points) -> list:
    """O(n^2) reference: the definition, straight from the paper text."""
    keep = []
    for mine in points:
        dominated = False
        for other in points:
            if all(o <= m for o, m in zip(other, mine)) and any(
                o < m for o, m in zip(other, mine)
            ):
                dominated = True
                break
        keep.append(not dominated)
    return keep


class TestParetoMask:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("shape", [(1, 1), (7, 2), (40, 3), (120, 2), (64, 1)])
    def test_matches_brute_force_on_random_points(self, seed, shape):
        rng = np.random.default_rng(seed)
        # Low-resolution values force ties and duplicates.
        points = rng.integers(0, 5, size=shape).astype(float)
        assert pareto_mask(points).tolist() == brute_force_pareto(points.tolist())

    def test_duplicates_do_not_dominate_each_other(self):
        mask = pareto_mask([[1.0, 2.0], [1.0, 2.0], [3.0, 3.0]])
        assert mask.tolist() == [True, True, False]

    def test_blocked_path_matches_unblocked(self, monkeypatch):
        rng = np.random.default_rng(17)
        points = rng.integers(0, 6, size=(50, 3)).astype(float)
        expected = pareto_mask(points).tolist()
        # A tiny pair budget forces many candidate blocks.
        monkeypatch.setattr(pareto_module, "_PAIR_BUDGET", 7)
        assert pareto_mask(points).tolist() == expected

    def test_shape_validation(self):
        assert pareto_mask(np.empty((0, 2))).tolist() == []
        with pytest.raises(ValueError, match="matrix"):
            pareto_mask([1.0, 2.0])

    def test_frontier_groups_independently(self):
        frame = ResultFrame.from_rows(
            ("workload", "cost"),
            [["a", 1.0], ["a", 2.0], ["b", 5.0], ["b", 9.0]],
        )
        grouped = ParetoFrontier.from_frame(frame, ["cost"], group_by=["workload"])
        # b's cheapest point survives even though a's points beat it.
        assert grouped.mask == (True, False, True, False)
        assert len(grouped) == 2
        ungrouped = pareto_frontier(frame, ["cost"])
        assert ungrouped.mask == (True, False, False, False)
        with pytest.raises(ValueError, match="objective"):
            ParetoFrontier.from_frame(frame, [])


class TestSensitivity:
    FRAME = ResultFrame.from_rows(
        ("budget", "btb", "mpki"),
        [
            ["small", 256, 4.0],
            ["small", 2048, 2.0],
            ["big", 256, 3.0],
            ["big", 2048, 1.0],
        ],
    )

    def test_per_axis_statistics(self):
        table = sensitivity_frame(self.FRAME, ["budget", "btb"], ["mpki"])
        assert table.columns == ("axis", "value", "metric", "mean", "min", "max")
        records = {(r["axis"], r["value"]): r for r in table.records()}
        assert records[("budget", "small")]["mean"] == pytest.approx(3.0)
        assert records[("budget", "small")]["max"] == pytest.approx(4.0)
        assert records[("btb", 2048)]["mean"] == pytest.approx(1.5)
        assert records[("btb", 2048)]["min"] == pytest.approx(1.0)

    def test_summary_spread_ranks_axes(self):
        table = sensitivity_frame(self.FRAME, ["budget", "btb"], ["mpki"])
        summary = sensitivity_summary(table)
        spreads = {r["axis"]: r["spread"] for r in summary.records()}
        # btb moves the mean by 2.0 (3.5 -> 1.5), budget only by 1.0.
        assert spreads["btb"] == pytest.approx(2.0)
        assert spreads["budget"] == pytest.approx(1.0)


class TestExplorePlan:
    @pytest.fixture(scope="class")
    def session(self):
        return Session(
            instructions=SMALL, trace_cache_dir=None, result_cache_dir=None
        )

    def test_plan_is_declarative_and_validated(self, session):
        plan = session.explore("smoke", workloads=["FT"])
        assert isinstance(plan, ExplorePlan)
        assert plan.describe()["grid"]["name"] == "smoke"
        with pytest.raises(KeyError, match="unknown objective"):
            session.explore("smoke", workloads=["FT"], objectives=["latency"])
        with pytest.raises(ValueError, match="workload"):
            session.explore("smoke", workloads=[])
        with pytest.raises(TypeError, match="GridSpec"):
            session.explore(42)
        with pytest.raises(KeyError):
            session.explore("galaxy")

    def test_frontend_exploration_matches_direct_simulation(self, session):
        grid = smoke_grid()
        plan = session.explore(grid, workloads=["FT"], use_store=False)
        result = plan.result()
        frame = result.frames["grid"]
        points = grid.points()
        assert len(frame) == len(points)
        # Spot-check: the grid rows are exactly what the batched engine
        # reports for the same configs on the same trace.
        direct = session.frontend_many("FT", grid.configs(), instructions=SMALL)
        for point in points:
            row = frame.select(point=point.name).records()[0]
            reference = direct[(point.config.name, CodeSection.TOTAL)]
            assert row["branch_mpki"] == reference.branch.mpki
            assert row["btb_mpki"] == reference.btb.mpki
            assert row["icache_mpki"] == reference.icache.mpki
        # Frontier rows are a subset of grid rows, per the reference.
        objectives = plan.resolved_objectives
        matrix = [
            [record[name] for name in objectives] for record in frame.records()
        ]
        expected = brute_force_pareto(matrix)
        assert list(ParetoFrontier.from_frame(
            frame, objectives, group_by=("workload", "section")
        ).mask) == expected

    def test_plan_protocol_outcome(self, session):
        plan = session.explore("smoke", workloads=["FT"], use_store=False)
        outcome = plan.outcome()
        assert isinstance(outcome, PlanOutcome)
        assert outcome.kind == "explore"
        assert outcome.status == "computed"
        assert outcome.key == plan.journal_scope()
        assert outcome.details["points"] == 8
        assert outcome.frame == plan.frame()

    def test_cmp_exploration(self, session):
        grid = GridSpec.cmp(cores=(1, 4), mixes=("baseline", "asymmetric"))
        result = session.explore(grid, workloads=["FT"], use_store=False).result()
        frame = result.frames["grid"]
        assert frame.columns == (
            "workload",
            "point",
            "l2_kb",
            "cores",
            "mix",
            "time_s",
            "power_w",
            "energy_j",
            "area_mm2",
        )
        assert len(frame) == 3  # no 1-core asymmetric chip
        baseline = frame.select(point="4B+0T").records()[0]
        asymmetric = frame.select(point="1B+3T").records()[0]
        assert asymmetric["area_mm2"] < baseline["area_mm2"]
        assert result.frames["pareto"].columns == frame.columns

    def test_thousand_point_grid_through_batched_engine(self, session):
        grid = GridSpec.frontend(
            name="dense",
            predictor_kind=("gshare", "tournament"),
            predictor_budget=("small", "big"),
            predictor_loop=(False, True),
            btb_entries=(64, 128, 256, 512, 1024, 2048),
            btb_associativity=(2, 4),
            icache_kb=(8, 16, 32),
            icache_line_bytes=(64, 128),
            icache_associativity=(2, 4),
        )
        points = grid.points()
        assert len(points) == 2 * 2 * 2 * 6 * 2 * 3 * 2 * 2 == 1152
        plan = session.explore(grid, workloads=["FT"], use_store=False)
        result = plan.result()
        frame = result.frames["grid"]
        assert len(frame) == 1152
        assert result.points == 1152
        # The frontier over the full grid matches the brute-force
        # reference definition.
        objectives = plan.resolved_objectives
        matrix = [
            [record[name] for name in objectives] for record in frame.records()
        ]
        assert [bool(k) for k in pareto_mask(matrix)] == brute_force_pareto(matrix)
        frontier = result.frames["pareto"]
        assert 0 < len(frontier) < len(frame)
        # Sensitivity covers every swept axis value.
        sensitivity = result.frames["sensitivity"]
        axis_values = {(r["axis"], r["value"]) for r in sensitivity.records()}
        assert ("btb_entries", 512) in axis_values
        assert ("icache_kb", 8) in axis_values


class TestExploreResume:
    def _session(self, tmp_path):
        return Session(
            instructions=SMALL,
            trace_cache_dir=None,
            result_cache_dir=str(tmp_path / "results"),
        )

    def test_warm_rerun_is_served_from_store(self, tmp_path):
        clear_result_store()  # hermetic: drop entries leaked by other tests
        session = self._session(tmp_path)
        plan = session.explore("smoke", workloads=["FT", "gobmk"], chunk_points=3)
        cold = plan.result()
        assert (cold.chunks_cached, cold.chunks_computed) == (0, 6)
        clear_result_store()  # drop the in-memory layer: disk must serve
        warm = plan.result()
        assert (warm.chunks_cached, warm.chunks_computed) == (6, 0)
        for name in ("grid", "pareto", "sensitivity"):
            assert warm.frames[name] == cold.frames[name]
        assert plan.outcome().status == "cached"

    def test_interrupted_exploration_replays_only_missing_chunks(self, tmp_path):
        clear_result_store()  # hermetic: drop entries leaked by other tests
        session = self._session(tmp_path)
        plan = session.explore("smoke", workloads=["FT"], chunk_points=2)
        cold = plan.result()
        assert cold.chunks_total == 4
        # Simulate an interruption that lost part of the store: delete
        # two chunk entries from disk.
        entries = sorted((tmp_path / "results").rglob("*.json"))
        assert len(entries) == 4
        for entry in entries[:2]:
            entry.unlink()
        clear_result_store()
        resumed = plan.result()
        assert resumed.chunks_cached == 2
        assert resumed.chunks_computed == 2
        assert resumed.frames["grid"] == cold.frames["grid"]

    def test_store_disabled_always_computes(self, tmp_path):
        session = self._session(tmp_path)
        plan = session.explore(
            "smoke", workloads=["FT"], chunk_points=4, use_store=False
        )
        first = plan.result()
        second = plan.result()
        assert first.chunks_computed == second.chunks_computed == 2
        assert not list((tmp_path / "results").rglob("*.json"))


class TestExploreCli:
    def test_explore_smoke_cold_then_warm_byte_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path / "store"))
        clear_result_store()
        cold_dir = tmp_path / "cold"
        warm_dir = tmp_path / "warm"
        assert (
            cli_main(["explore", "--smoke", "--strict", "--out", str(cold_dir)]) == 0
        )
        clear_result_store()
        assert (
            cli_main(["explore", "--smoke", "--strict", "--out", str(warm_dir)]) == 0
        )
        for name in ("explore.csv", "explore.json"):
            assert (cold_dir / name).read_bytes() == (warm_dir / name).read_bytes()
        cold_manifest = json.loads((cold_dir / "manifest.json").read_text())
        warm_manifest = json.loads((warm_dir / "manifest.json").read_text())
        assert cold_manifest["experiments"]["explore"]["status"] == "computed"
        assert warm_manifest["experiments"]["explore"]["status"] == "cached"
        payload = json.loads((cold_dir / "explore.json").read_text())
        assert payload["experiment"] == "explore"
        titles = [table["title"] for table in payload["tables"]]
        assert any("Pareto frontier" in title for title in titles)
        assert any("sensitivity" in title for title in titles)

    def test_explore_rejects_unknown_grid_and_scenarios(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["explore", "--grid", "galaxy"])
        rc = cli_main(["explore", "--scenarios", "paper", "--strict"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--scenarios" in err
