"""Compiled segment engine: equivalence, determinism, and invariants.

The compiled generator must be **bit-identical** to the reference tree
walk -- the RNG draw order is preserved exactly (batched draws consume
the bit stream like sequential scalar draws, the vectorized weighted
choice reproduces the scalar cumulative scan, and every near-budget or
near-depth-limit region falls back to literally executing the original
tree).  These tests assert that equivalence over workloads x seeds x
lengths, determinism across processes and cache layers, and the
Section III analysis invariants on compiled traces.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import (
    analyze_basic_blocks,
    analyze_branch_bias,
    analyze_branch_mix,
    analyze_footprint,
)
from repro.trace import (
    CallRegion,
    CodeRegion,
    CodeSection,
    CompiledTraceGenerator,
    ExecutionSchedule,
    FixedTripCount,
    Function,
    GeometricTripCount,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Phase,
    Program,
    Sequence,
    SyscallRegion,
    TraceGenerator,
    UniformTripCount,
    compile_schedule,
    layout_program,
)
from repro.trace.compiler import TRACE_ENGINE_VARIABLE
from repro.workloads import build_workload, get_workload
from repro.workloads.trace_cache import (
    TRACE_CACHE_DIR_VARIABLE,
    clear_trace_cache,
    trace_cache_info,
    workload_trace,
)

#: Workloads spanning every suite: HPC loop nests (FT, LULESH, md),
#: a large serial-share proxy app (CoEVP), and branchy desktop code
#: (gobmk) -- the structures that stress different compiler paths.
EQUIVALENCE_WORKLOADS = ("FT", "LULESH", "md", "CoEVP", "gobmk")
EQUIVALENCE_SEEDS = (0, 7, 1234)
EQUIVALENCE_LENGTHS = (30_000, 120_000)


def assert_traces_identical(reference, compiled):
    __tracebackhide__ = True
    assert len(reference) == len(compiled)
    assert np.array_equal(reference.block_ids, compiled.block_ids)
    assert np.array_equal(reference.taken_column, compiled.taken_column)
    assert np.array_equal(reference.target_column, compiled.target_column)
    assert np.array_equal(reference.section_column, compiled.section_column)


class TestCompiledEquivalence:
    @pytest.mark.parametrize("name", EQUIVALENCE_WORKLOADS)
    def test_bit_identical_across_seeds_and_lengths(self, name):
        workload = build_workload(get_workload(name))
        for seed in EQUIVALENCE_SEEDS:
            for instructions in EQUIVALENCE_LENGTHS:
                reference = TraceGenerator(
                    workload.program, workload.schedule, seed=seed
                ).run(instructions)
                compiled = CompiledTraceGenerator(
                    workload.program, workload.schedule, seed=seed
                ).run(instructions)
                assert_traces_identical(reference, compiled)

    def test_tiny_budget_truncation_matches(self):
        """The literal fallback reproduces mid-region truncation."""
        workload = build_workload(get_workload("FT"))
        for instructions in (1, 10, 97, 1003):
            reference = TraceGenerator(
                workload.program, workload.schedule, seed=3
            ).run(instructions)
            compiled = CompiledTraceGenerator(
                workload.program, workload.schedule, seed=3
            ).run(instructions)
            assert_traces_identical(reference, compiled)

    def test_hand_built_program_with_every_region_kind(self):
        """Dynamic loops, indirect dispatch, patterns, calls, syscalls."""
        leaf_a = Function(name="leaf_a", body=CodeRegion(5))
        leaf_b = Function(name="leaf_b", body=CodeRegion(9))
        inner = Sequence(
            [
                CodeRegion(3),
                If(0.4, CodeRegion(4), orelse=CodeRegion(2)),
                If(0.9, CodeRegion(3), pattern=[True, True, False]),
                IndirectCallRegion([leaf_a, leaf_b], weights=[2.0, 1.0]),
                IndirectJumpRegion(
                    [CodeRegion(2), CodeRegion(5), CodeRegion(3)],
                    weights=[1.0, 0.5, 2.0],
                ),
                JumpRegion(),
            ]
        )
        body = Sequence(
            [
                CodeRegion(6),
                Loop(inner, UniformTripCount(3, 9)),
                CallRegion(leaf_a),
                Loop(CodeRegion(4), GeometricTripCount(5.0)),
                SyscallRegion(),
                Loop(
                    Sequence([CodeRegion(2), If(0.5, CodeRegion(2))]),
                    FixedTripCount(4),
                ),
            ]
        )
        main = Function(name="main", body=body)
        program = layout_program(Program("handmade", [main, leaf_a, leaf_b]))
        schedule = ExecutionSchedule(
            steady=[Phase(main, CodeSection.SERIAL)]
        )
        for seed in (0, 11, 99):
            for instructions in (500, 5_000, 50_000):
                reference = TraceGenerator(program, schedule, seed=seed).run(
                    instructions
                )
                compiled = CompiledTraceGenerator(program, schedule, seed=seed).run(
                    instructions
                )
                assert_traces_identical(reference, compiled)

    def test_setup_and_multi_phase_schedules(self):
        setup_fn = Function(name="setup", body=CodeRegion(20))
        serial_fn = Function(
            name="serial",
            body=Loop(CodeRegion(5), FixedTripCount(3)),
        )
        parallel_fn = Function(
            name="parallel",
            body=Loop(
                Sequence([CodeRegion(4), If(0.7, CodeRegion(2))]),
                UniformTripCount(2, 5),
            ),
        )
        program = layout_program(
            Program("phased", [setup_fn, serial_fn, parallel_fn])
        )
        schedule = ExecutionSchedule(
            setup=[Phase(setup_fn, CodeSection.SERIAL)],
            steady=[
                Phase(serial_fn, CodeSection.SERIAL, repeat=2),
                Phase(parallel_fn, CodeSection.PARALLEL, repeat=3),
            ],
        )
        for seed in (0, 42):
            reference = TraceGenerator(program, schedule, seed=seed).run(4_000)
            compiled = CompiledTraceGenerator(program, schedule, seed=seed).run(4_000)
            assert_traces_identical(reference, compiled)
        sections = set(np.unique(compiled.section_column).tolist())
        assert sections == {int(CodeSection.SERIAL), int(CodeSection.PARALLEL)}

    def test_shared_function_across_phases_keeps_pattern_state(self):
        """A pattern site reached through two phases stays continuous.

        The same function may appear in several Phase entries; its
        pattern-If positions are global per owner in the reference
        generator, so the compiled engine must share them across the
        (independently compiled) phase bodies too.
        """
        shared_fn = Function(
            name="shared",
            body=Loop(
                Sequence(
                    [
                        CodeRegion(3),
                        If(0.5, CodeRegion(4), pattern=[True, False, False]),
                    ]
                ),
                FixedTripCount(4),
            ),
        )
        program = layout_program(Program("twophase", [shared_fn]))
        schedule = ExecutionSchedule(
            steady=[
                Phase(shared_fn, CodeSection.SERIAL),
                Phase(shared_fn, CodeSection.PARALLEL),
            ]
        )
        for seed in (0, 7):
            reference = TraceGenerator(program, schedule, seed=seed).run(5_000)
            compiled = CompiledTraceGenerator(program, schedule, seed=seed).run(5_000)
            assert_traces_identical(reference, compiled)

    def test_zero_trip_loops_match(self):
        """Loops that may draw zero iterations emit nothing, crash-free."""
        main = Function(
            name="main",
            body=Sequence(
                [
                    CodeRegion(2),
                    Loop(CodeRegion(3), GeometricTripCount(0.5, minimum=0)),
                    Loop(
                        Sequence([CodeRegion(2), If(0.6, CodeRegion(2))]),
                        GeometricTripCount(0.0, minimum=0),
                    ),
                ]
            ),
        )
        program = layout_program(Program("zerotrip", [main]))
        schedule = ExecutionSchedule(steady=[Phase(main, CodeSection.SERIAL)])
        for seed in (3, 21):
            reference = TraceGenerator(program, schedule, seed=seed).run(3_000)
            compiled = CompiledTraceGenerator(program, schedule, seed=seed).run(3_000)
            assert_traces_identical(reference, compiled)

    def test_compilation_is_memoized_per_program(self):
        workload = build_workload(get_workload("FT"))
        first = compile_schedule(workload.program, workload.schedule)
        second = compile_schedule(workload.program, workload.schedule)
        assert first is second
        assert workload.compiled is first


class TestCompiledDeterminism:
    def test_same_seed_same_trace_across_generator_instances(self):
        workload = build_workload(get_workload("CoMD"))
        first = CompiledTraceGenerator(
            workload.program, workload.schedule, seed=5
        ).run(40_000)
        fresh = CompiledTraceGenerator(
            workload.program, workload.schedule, seed=5
        ).run(40_000)
        assert_traces_identical(first, fresh)

    def test_engine_env_variable_selects_reference(self, monkeypatch):
        spec = get_workload("MG")
        monkeypatch.setenv(TRACE_ENGINE_VARIABLE, "reference")
        clear_trace_cache()
        reference = workload_trace(spec, 30_000)
        monkeypatch.setenv(TRACE_ENGINE_VARIABLE, "compiled")
        clear_trace_cache()
        compiled = workload_trace(spec, 30_000)
        assert_traces_identical(reference, compiled)
        clear_trace_cache()

    def test_identical_across_cache_layers(self, tmp_path, monkeypatch):
        """In-process vs .npz reload vs freshly compiled agree exactly."""
        spec = get_workload("SP")
        monkeypatch.setenv(TRACE_CACHE_DIR_VARIABLE, str(tmp_path))
        clear_trace_cache()
        generated = workload_trace(spec, 25_000)
        assert trace_cache_info()["disk_stores"] == 1

        in_process = workload_trace(spec, 25_000)
        assert in_process is generated  # memory layer returns the object

        clear_trace_cache()
        reloaded = workload_trace(spec, 25_000)  # comes back from .npz
        assert trace_cache_info()["disk_hits"] == 1
        assert_traces_identical(generated, reloaded)

        monkeypatch.setenv(TRACE_CACHE_DIR_VARIABLE, "none")
        clear_trace_cache()
        recompiled = workload_trace(spec, 25_000)  # freshly compiled
        assert trace_cache_info()["disk_hits"] == 0
        assert_traces_identical(generated, recompiled)
        clear_trace_cache()


class TestCompiledAnalysisInvariants:
    """Section III analyses hold on compiled traces.

    The compiled engine is bit-identical to the reference, so these are
    belt-and-braces: they pin the analysis-facing properties the rest
    of the package relies on, independent of the equivalence assertion.
    """

    @pytest.fixture(scope="class")
    def compiled_trace(self):
        workload = build_workload(get_workload("FT"))
        return workload.compiled.run(60_000, seed=0, name="FT")

    def test_instruction_budget_reached(self, compiled_trace):
        assert compiled_trace.instruction_count() >= 60_000
        serial = compiled_trace.instruction_count(CodeSection.SERIAL)
        parallel = compiled_trace.instruction_count(CodeSection.PARALLEL)
        assert serial + parallel == compiled_trace.instruction_count()

    def test_branch_mix_is_consistent(self, compiled_trace):
        mix = analyze_branch_mix(compiled_trace)
        assert 0 < mix.branch_fraction < 1
        fractions = mix.category_fractions
        assert abs(sum(fractions.values()) - mix.branch_fraction) < 1e-9

    def test_branch_bias_covers_all_conditionals(self, compiled_trace):
        bias = analyze_branch_bias(compiled_trace)
        assert bias.dynamic_conditional_count == sum(
            1 for r in compiled_trace.branch_records() if r.kind.is_conditional
        )
        assert abs(sum(bias.bucket_fractions.values()) - 1.0) < 1e-9

    def test_footprint_and_blocks_are_positive(self, compiled_trace):
        footprint = analyze_footprint(compiled_trace)
        assert 0 < footprint.dynamic_footprint_bytes <= footprint.static_bytes
        assert footprint.executed_static_bytes <= footprint.static_bytes
        blocks = analyze_basic_blocks(compiled_trace)
        assert blocks.average_block_instructions > 1
