"""Tests for the content-addressed result store.

Covers the store contract directly: key stability across processes,
invalidation when the configuration or seed changes, corrupted-entry
recovery (a truncated disk file falls back to recompute), and
concurrent writers relying on the atomic write-then-rename pattern
shared with the trace cache.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.results.artifacts import block, build_artifact
from repro.results.store import (
    RESULT_CACHE_DIR_VARIABLE,
    clear_result_store,
    load_result,
    resolved_result_dir,
    result_key,
    result_store_info,
    store_result,
    store_result_cas,
)

CONFIG = {"instructions": 20_000, "geometries": [[256, 4], [1024, 4]]}
WORKLOADS = ("FT", "gobmk")


@pytest.fixture(autouse=True)
def _fresh_store():
    clear_result_store()
    yield
    clear_result_store()


def _artifact(experiment: str = "fig7", value: str = "1.00") -> dict:
    return build_artifact(
        experiment,
        "a title",
        [block(["suite", "mpki"], [["NPB", value]])],
        {"mpki": {"NPB": float(value)}},
    )


class TestResultKey:
    def test_key_is_deterministic_and_order_insensitive(self):
        first = result_key("fig7", CONFIG, WORKLOADS)
        reordered = {"geometries": [[256, 4], [1024, 4]], "instructions": 20_000}
        assert result_key("fig7", reordered, list(WORKLOADS)) == first

    def test_key_changes_with_every_provenance_component(self):
        reference = result_key("fig7", CONFIG, WORKLOADS, seed=0)
        assert result_key("fig8", CONFIG, WORKLOADS) != reference
        assert result_key("fig7", {**CONFIG, "instructions": 40_000}, WORKLOADS) != reference
        assert (
            result_key("fig7", {**CONFIG, "geometries": [[512, 4]]}, WORKLOADS)
            != reference
        )
        assert result_key("fig7", CONFIG, ("FT",)) != reference
        assert result_key("fig7", CONFIG, WORKLOADS, seed=1) != reference

    def test_key_changes_when_the_package_source_changes(self, monkeypatch):
        from repro.results import store as store_module

        reference = result_key("fig7", CONFIG, WORKLOADS)
        assert store_module.code_fingerprint()  # Memoized, non-empty.
        monkeypatch.setattr(store_module, "_CODE_FINGERPRINT", "different-code")
        assert result_key("fig7", CONFIG, WORKLOADS) != reference

    def test_key_is_stable_across_processes(self):
        expected = result_key("fig7", CONFIG, WORKLOADS)
        script = (
            "from repro.results.store import result_key;"
            f"print(result_key('fig7', {CONFIG!r}, {WORKLOADS!r}))"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        output = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert output == expected


class TestStoreLayers:
    def test_memory_roundtrip_without_disk(self, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, "none")
        assert resolved_result_dir() is None
        key = result_key("fig7", CONFIG, WORKLOADS)
        assert load_result(key, "fig7") is None
        store_result(key, _artifact())
        assert load_result(key, "fig7") == _artifact()
        info = result_store_info()
        assert info["hits"] == 1 and info["stores"] == 1
        assert info["disk_stores"] == 0

    def test_disk_roundtrip_survives_memory_clear(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result(key, _artifact())
        clear_result_store()  # Simulate a fresh process.
        assert load_result(key, "fig7") == _artifact()
        assert result_store_info()["disk_hits"] == 1

    def test_experiment_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result(key, _artifact(experiment="fig7"))
        clear_result_store()
        assert load_result(key, "fig8") is None

    def test_corrupted_disk_entry_falls_back_to_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result(key, _artifact())
        clear_result_store()
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        content = entry.read_bytes()
        entry.write_bytes(content[: len(content) // 2])  # Truncate.
        assert load_result(key, "fig7") is None
        # A recompute-and-store heals the entry.
        store_result(key, _artifact())
        clear_result_store()
        assert load_result(key, "fig7") == _artifact()

    def test_garbage_disk_entry_falls_back_to_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result(key, _artifact())
        clear_result_store()
        (entry,) = [p for p in tmp_path.iterdir() if p.suffix == ".json"]
        entry.write_text(json.dumps({"key": key, "artifact": {"schema": 999}}))
        assert load_result(key, "fig7") is None

    def test_unwritable_disk_layer_is_best_effort(self, tmp_path, monkeypatch):
        target = tmp_path / "not-a-directory"
        target.write_text("occupied")
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(target / "store"))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result(key, _artifact())  # Must not raise.
        assert load_result(key, "fig7") == _artifact()  # Memory layer still works.
        assert result_store_info()["disk_stores"] == 0


class TestConcurrentWriters:
    def test_racing_writers_never_corrupt_an_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        barrier = threading.Barrier(8)

        def writer() -> None:
            barrier.wait()
            for _ in range(10):
                store_result(key, _artifact())

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        clear_result_store()
        assert load_result(key, "fig7") == _artifact()
        # No temporary files may survive the renames.
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_racing_writers_on_distinct_keys(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        keys = [
            result_key("fig7", {**CONFIG, "instructions": n}, WORKLOADS)
            for n in range(1000, 1016)
        ]
        barrier = threading.Barrier(len(keys))

        def writer(key: str, value: str) -> None:
            barrier.wait()
            store_result(key, _artifact(value=value))

        threads = [
            threading.Thread(target=writer, args=(key, f"{index}.00"))
            for index, key in enumerate(keys)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        clear_result_store()
        for index, key in enumerate(keys):
            assert load_result(key, "fig7") == _artifact(value=f"{index}.00")


class TestCompareAndSwap:
    """store_result_cas: first writer wins, conflicts quarantined."""

    def test_first_writer_wins_on_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        status, winner = store_result_cas(key, _artifact(value="1.00"), "fig7")
        assert status == "stored"
        assert winner == _artifact(value="1.00")
        # Identical re-publication is the benign double completion.
        status, winner = store_result_cas(key, _artifact(value="1.00"), "fig7")
        assert status == "identical"
        assert winner == _artifact(value="1.00")
        # A different publication loses: the first artifact stands.
        status, winner = store_result_cas(key, _artifact(value="9.99"), "fig7")
        assert status == "conflict"
        assert winner == _artifact(value="1.00")
        clear_result_store()
        assert load_result(key, "fig7") == _artifact(value="1.00")
        evidence = [p.name for p in tmp_path.iterdir() if ".conflict" in p.name]
        assert len(evidence) == 1
        with open(tmp_path / evidence[0], "r", encoding="utf-8") as stream:
            losing = json.load(stream)
        assert losing["artifact"] == _artifact(value="9.99")

    def test_cas_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result_cas(key, _artifact(value="1.00"), "fig7")
        store_result_cas(key, _artifact(value="1.00"), "fig7")
        store_result_cas(key, _artifact(value="9.99"), "fig7")
        info = result_store_info()
        assert info["cas_stores"] == 1
        assert info["cas_identical"] == 1
        assert info["cas_conflicts"] == 1

    def test_memory_only_cas(self, monkeypatch):
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, "none")
        key = result_key("fig7", CONFIG, WORKLOADS)
        assert store_result_cas(key, _artifact(value="1.00"), "fig7")[0] == "stored"
        assert store_result_cas(key, _artifact(value="1.00"), "fig7")[0] == "identical"
        status, winner = store_result_cas(key, _artifact(value="2.00"), "fig7")
        assert status == "conflict"
        assert winner == _artifact(value="1.00")
        assert load_result(key, "fig7") == _artifact(value="1.00")

    def test_etag_is_order_insensitive(self):
        from repro.results.store import artifact_etag

        artifact = _artifact()
        reordered = {k: artifact[k] for k in reversed(list(artifact))}
        assert artifact_etag(artifact) == artifact_etag(reordered)
        assert artifact_etag(artifact) != artifact_etag(_artifact(value="9.99"))

    def test_cas_round_trips_artifact_verbatim(self, tmp_path, monkeypatch):
        # Key order of the stored artifact is preserved (the frame
        # payload tests depend on a verbatim round trip).
        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        key = result_key("fig7", CONFIG, WORKLOADS)
        store_result_cas(key, _artifact(), "fig7")
        clear_result_store()
        assert json.dumps(load_result(key, "fig7")) == json.dumps(_artifact())


def _stress_writer(worker_id: int, shared_keys, contested_key: str, out_queue):
    """One racing process of the multi-process store stress test."""
    clear_result_store()  # Fresh per-process memory layer and counters.
    for _ in range(5):
        for index, key in enumerate(shared_keys):
            if (worker_id + index) % 2 == 0:
                store_result(key, _artifact(value=f"{index}.00"))
            else:
                store_result_cas(key, _artifact(value=f"{index}.00"), "fig7")
    _, winner = store_result_cas(
        contested_key, _artifact(value=f"{worker_id}.50"), "fig7"
    )
    out_queue.put((worker_id, winner["payload"]["mpki"]["NPB"]))


class TestMultiProcessWriters:
    """Satellite: 8 real processes racing the disk store on overlapping
    keys -- no torn entries, no lost entries, one deterministic winner
    per contested key."""

    def test_eight_processes_race_store_and_cas(self, tmp_path, monkeypatch):
        import multiprocessing

        monkeypatch.setenv(RESULT_CACHE_DIR_VARIABLE, str(tmp_path))
        shared_keys = [
            result_key("fig7", {**CONFIG, "instructions": n}, WORKLOADS)
            for n in range(2000, 2006)
        ]
        contested_key = result_key("fig7", {**CONFIG, "contested": True}, WORKLOADS)
        ctx = multiprocessing.get_context()
        out_queue = ctx.Queue()
        processes = [
            ctx.Process(
                target=_stress_writer,
                args=(worker_id, shared_keys, contested_key, out_queue),
            )
            for worker_id in range(8)
        ]
        for process in processes:
            process.start()
        winners = [out_queue.get(timeout=120) for _ in processes]
        for process in processes:
            process.join(timeout=120)
            assert process.exitcode == 0

        # No lost entries: every overlapping key holds its one value.
        clear_result_store()
        for index, key in enumerate(shared_keys):
            assert load_result(key, "fig7") == _artifact(value=f"{index}.00")
        # One deterministic winner on the contested key: every process
        # converged on the same artifact, and it is what the disk holds.
        values = {value for _, value in winners}
        assert len(values) == 1
        stored = load_result(contested_key, "fig7")
        assert stored["payload"]["mpki"]["NPB"] == values.pop()
        # No torn entries: every surviving file parses, no temporaries.
        for entry in tmp_path.iterdir():
            if entry.name.endswith(".tmp"):
                raise AssertionError(f"leaked temporary {entry.name}")
            if entry.suffix == ".json" or ".conflict" in entry.name:
                with open(entry, "r", encoding="utf-8") as stream:
                    json.load(stream)
