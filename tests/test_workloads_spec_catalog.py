"""Tests for workload specifications, the catalog, and suite helpers."""

import pytest

from repro.workloads import (
    WORKLOADS,
    SectionProfile,
    Suite,
    WorkloadSpec,
    desktop_workloads,
    get_workload,
    hpc_workloads,
    workload_names,
    workloads_in_suite,
)
from repro.workloads.suites import HPC_SUITES, SUITE_ORDER


def _profile(**overrides) -> SectionProfile:
    return SectionProfile(branch_fraction=0.1).scaled(**overrides)


class TestSectionProfile:
    def test_branch_fraction_bounds(self):
        with pytest.raises(ValueError):
            SectionProfile(branch_fraction=0.0)
        with pytest.raises(ValueError):
            SectionProfile(branch_fraction=1.0)

    def test_conditional_fraction_accounts_for_returns(self):
        profile = _profile(call_fraction=0.1, indirect_call_fraction=0.02)
        assert profile.return_fraction == pytest.approx(0.12)
        assert profile.conditional_fraction < 1.0 - 2 * 0.12 + 1e-9

    def test_rejects_branch_mix_without_conditionals(self):
        with pytest.raises(ValueError):
            SectionProfile(branch_fraction=0.1, call_fraction=0.45, unconditional_fraction=0.2)

    def test_rejects_bad_loop_share(self):
        with pytest.raises(ValueError):
            _profile(loop_share=0.0)

    def test_rejects_bad_trip_count(self):
        with pytest.raises(ValueError):
            _profile(avg_trip_count=0.5)

    def test_rejects_bias_shares_exceeding_one(self):
        with pytest.raises(ValueError):
            _profile(balanced_if_share=0.7, moderate_if_share=0.5)

    def test_rejects_non_positive_hot_code(self):
        with pytest.raises(ValueError):
            _profile(hot_code_kb=0.0)

    def test_strong_if_share_is_complement(self):
        profile = _profile(balanced_if_share=0.2, moderate_if_share=0.3)
        assert profile.strong_if_share == pytest.approx(0.5)

    def test_mean_block_sizes(self):
        profile = _profile(branch_fraction=0.1, bytes_per_instruction=4.0)
        assert profile.mean_block_instructions == pytest.approx(10.0)
        assert profile.mean_block_bytes == pytest.approx(40.0)

    def test_scaled_returns_modified_copy(self):
        profile = _profile()
        other = profile.scaled(branch_fraction=0.2)
        assert other.branch_fraction == 0.2
        assert profile.branch_fraction == 0.1


class TestWorkloadSpec:
    def _spec(self, **overrides) -> WorkloadSpec:
        values = dict(
            name="toy",
            suite=Suite.NPB,
            parallel=_profile(hot_code_kb=4.0),
            serial=_profile(hot_code_kb=4.0),
            serial_fraction=0.01,
            static_code_kb=64.0,
            threads=8,
        )
        values.update(overrides)
        return WorkloadSpec(**values)

    def test_serial_fraction_bounds(self):
        with pytest.raises(ValueError):
            self._spec(serial_fraction=1.5)

    def test_static_code_must_cover_hot_code(self):
        with pytest.raises(ValueError):
            self._spec(static_code_kb=4.0)

    def test_threads_must_be_positive(self):
        with pytest.raises(ValueError):
            self._spec(threads=0)

    def test_sequential_detection(self):
        assert self._spec(serial_fraction=1.0).is_sequential
        assert self._spec(threads=1).is_sequential
        assert not self._spec().is_sequential

    def test_cold_code_complements_hot_code(self):
        spec = self._spec()
        assert spec.cold_code_kb == pytest.approx(64.0 - 8.0)

    def test_seed_is_deterministic_and_name_dependent(self):
        assert self._spec().seed == self._spec().seed
        assert self._spec().seed != self._spec(name="other").seed

    def test_parallel_fraction(self):
        assert self._spec(serial_fraction=0.25).parallel_fraction == pytest.approx(0.75)


class TestCatalog:
    def test_total_workload_count(self):
        assert len(WORKLOADS) == 41

    def test_suite_sizes_match_the_paper(self):
        assert len(workloads_in_suite(Suite.EXMATEX)) == 8
        assert len(workloads_in_suite(Suite.SPEC_OMP)) == 11
        assert len(workloads_in_suite(Suite.NPB)) == 10
        assert len(workloads_in_suite(Suite.SPEC_CPU_INT)) == 12

    def test_hpc_and_desktop_partitions(self):
        assert len(hpc_workloads()) == 29
        assert len(desktop_workloads()) == 12
        assert len(hpc_workloads()) + len(desktop_workloads()) == len(WORKLOADS)

    def test_workload_names_are_unique(self):
        names = workload_names()
        assert len(names) == len(set(names))

    def test_get_workload_known_and_unknown(self):
        assert get_workload("LULESH").suite is Suite.EXMATEX
        with pytest.raises(KeyError):
            get_workload("does-not-exist")

    def test_desktop_workloads_are_sequential(self):
        for spec in desktop_workloads():
            assert spec.is_sequential
            assert spec.threads == 1

    def test_hpc_workloads_run_eight_threads(self):
        for spec in hpc_workloads():
            assert spec.threads == 8
            assert spec.serial_fraction < 0.5

    def test_paper_callouts(self):
        assert get_workload("CoEVP").serial_fraction == pytest.approx(0.35)
        assert get_workload("VPFFT").static_code_kb == pytest.approx(800.0)
        assert get_workload("UA").static_code_kb == pytest.approx(252.0)
        assert get_workload("CoEVP").parallel.indirect_branch_fraction > 0.005

    def test_hpc_branch_fractions_are_below_desktop(self):
        hpc_average = sum(s.parallel.branch_fraction for s in hpc_workloads()) / 29
        desktop_average = sum(s.serial.branch_fraction for s in desktop_workloads()) / 12
        assert hpc_average < desktop_average / 1.5

    def test_suite_order_covers_all_suites(self):
        assert set(SUITE_ORDER) == set(Suite)
        assert all(suite.is_hpc for suite in HPC_SUITES)

    def test_suite_labels(self):
        assert Suite.SPEC_CPU_INT.is_desktop
        assert not Suite.SPEC_CPU_INT.is_hpc
        assert Suite.EXMATEX.label == "ExMatEx"
