"""Fault tolerance of the execution layer, end to end.

Covers the supervised executors (retry, worker death, hang/timeout,
serial degradation), the checkpoint journal (record/replay, corrupt-
entry quarantine, concurrent writers, kill-and-resume through a real
SIGKILL), deterministic fault injection, the trace-cache quarantine
path, and the deprecation schedule of the legacy module-level entry
points.  Everything is deterministic: faults are pinned to exact
``(item, attempt)`` sites, never to timing.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap
import threading

import pytest

from repro.exec import (
    ExecutionSettings,
    Fault,
    FaultPlan,
    InjectedFault,
    SweepError,
    execute_items,
    resolve_executor,
)
from repro.exec import executors as executors_module
from repro.exec.journal import (
    SweepJournal,
    item_key,
    journal_for_scope,
    journal_info,
    reset_journal_info,
)
from repro.exec.results import (
    STATUS_OK,
    STATUS_REPLAYED,
    STATUS_TIMEOUT,
    STATUS_WORKER_DEATH,
)

#: A short, cheap worker sweep shared by most tests.
ITEMS = list(range(4))

#: Settings tuned for test speed: real retry semantics, tiny backoff.
FAST = dict(retries=2, retry_delay=0.001)


def _square(args):
    return args * args


def _explode(args):
    raise RuntimeError(f"boom on {args}")


def serial_settings(**overrides):
    merged = {"processes": None, **FAST, **overrides}
    return ExecutionSettings(**merged)


def run_with(executor_name, worker, items=ITEMS, **overrides):
    executor = resolve_executor(executor_name)
    return execute_items(worker, items, serial_settings(**overrides), executor)


class TestRetries:
    @pytest.mark.parametrize("executor_name", ["serial", "processes"])
    def test_transient_exception_succeeds_after_retry(self, executor_name):
        plan = FaultPlan.of(Fault(kind="raise", index=2, attempt=1))
        report = run_with(
            executor_name, _square, fault_plan=plan, processes=2
        )
        assert [item.value for item in report.items] == [0, 1, 4, 9]
        assert [item.status for item in report.items] == [STATUS_OK] * 4
        # The faulted item took exactly one extra attempt; the rest one.
        assert [item.attempts for item in report.items] == [1, 1, 2, 1]

    @pytest.mark.parametrize("executor_name", ["serial", "processes"])
    def test_permanent_failure_yields_structured_report(self, executor_name):
        plan = FaultPlan.of(
            *[Fault(kind="raise", index=1, attempt=attempt) for attempt in (1, 2, 3)]
        )
        report = run_with(
            executor_name, _square, fault_plan=plan, retries=2, processes=2
        )
        with pytest.raises(SweepError) as caught:
            report.values()
        assert caught.value.report is report
        text = str(caught.value)
        assert "sweep failed on 1/4 item(s)" in text
        assert "item 1: error after 3 attempt(s)" in text
        assert InjectedFault.__name__ in text
        # Partial results survive alongside the failure.
        assert report.partial_values() == {0: 0, 2: 4, 3: 9}

    def test_retries_zero_disables_retrying(self):
        plan = FaultPlan.of(Fault(kind="raise", index=0, attempt=1))
        report = run_with("serial", _square, retries=0, fault_plan=plan)
        (failure,) = report.failures()
        assert failure.index == 0 and failure.attempts == 1

    def test_worker_exception_without_plan_is_captured(self):
        report = run_with("serial", _explode, items=[7], retries=0)
        (failure,) = report.failures()
        assert "boom on 7" in failure.error


class TestWorkerDeath:
    @pytest.mark.parametrize("executor_name", ["serial", "processes"])
    def test_killed_worker_is_replaced_and_item_retried(self, executor_name):
        plan = FaultPlan.of(Fault(kind="kill", index=1, attempt=1))
        report = run_with(
            executor_name, _square, fault_plan=plan, processes=2
        )
        assert report.values() == [0, 1, 4, 9]
        assert report.items[1].attempts == 2

    def test_unkillable_item_fails_as_worker_death(self):
        plan = FaultPlan.of(
            *[Fault(kind="kill", index=1, attempt=attempt) for attempt in (1, 2)]
        )
        report = run_with("processes", _square, retries=1, fault_plan=plan, processes=2)
        (failure,) = report.failures()
        assert failure.status == STATUS_WORKER_DEATH
        assert failure.attempts == 2
        assert report.partial_values() == {0: 0, 2: 4, 3: 9}


class TestTimeout:
    def test_hung_item_is_killed_and_reported_as_timeout(self):
        plan = FaultPlan.of(Fault(kind="hang", index=2, attempt=1, seconds=30.0))
        report = run_with(
            "processes",
            _square,
            fault_plan=plan,
            item_timeout=0.3,
            processes=2,
        )
        hung = report.items[2]
        assert hung.status == STATUS_TIMEOUT
        assert "timeout" in hung.error
        # A timeout is a final verdict, not a transient failure: the
        # item is not retried (it would hang again) ...
        assert hung.attempts == 1
        # ... and every other item still completed.
        assert report.partial_values() == {0: 0, 1: 1, 3: 9}


class TestSerialDegradation:
    def test_broken_pool_degrades_to_serial_bit_identically(self, monkeypatch):
        def refuse(ctx, worker, plan_json):
            raise OSError("no processes for you")

        serial = run_with("serial", _square)
        monkeypatch.setattr(executors_module, "_start_worker", refuse)
        degraded = run_with("processes", _square, processes=2)
        assert degraded.degraded is True
        assert degraded.values() == serial.values()

    @pytest.mark.parametrize("executor_name", ["serial", "processes"])
    def test_serial_and_process_executors_are_bit_identical(self, executor_name):
        report = run_with(executor_name, _square, processes=2)
        assert report.degraded is False
        assert report.executor == executor_name
        assert report.values() == [_square(item) for item in ITEMS]


class TestJournal:
    def test_record_and_replay_only_missing_items(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "scope"))
        executor = resolve_executor("serial")
        plan = FaultPlan.of(
            *[Fault(kind="raise", index=3, attempt=attempt) for attempt in (1, 2, 3)]
        )
        first = execute_items(
            _square, ITEMS, serial_settings(fault_plan=plan), executor, journal
        )
        assert len(first.failures()) == 1
        # The three successes were checkpointed ...
        assert len(journal.load()) == 3
        # ... so the rerun replays them and computes only the failure.
        second = execute_items(_square, ITEMS, serial_settings(), executor, journal)
        assert [item.status for item in second.items] == [
            STATUS_REPLAYED,
            STATUS_REPLAYED,
            STATUS_REPLAYED,
            STATUS_OK,
        ]
        undisturbed = execute_items(_square, ITEMS, serial_settings(), executor)
        assert second.values() == undisturbed.values()

    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        reset_journal_info()
        directory = tmp_path / "scope"
        journal = SweepJournal(str(directory))
        journal.record(item_key(_square, 0, 0), 0)
        key = item_key(_square, 1, 1)
        journal.record(key, 1)
        (directory / f"{key}.item").write_bytes(b"torn write, not a pickle")
        entries = journal.load()
        # The damaged entry is gone from the replay set but kept as
        # evidence; the intact one still replays.
        assert len(entries) == 1
        assert journal_info()["quarantined"] == 1
        corrupt = [name for name in os.listdir(directory) if name.endswith(".corrupt")]
        assert len(corrupt) == 1
        # The quarantined bytes are preserved verbatim.
        assert (directory / corrupt[0]).read_bytes() == b"torn write, not a pickle"

    def test_concurrent_writers_never_tear_an_entry(self, tmp_path):
        journal = SweepJournal(str(tmp_path / "scope"))
        keys = [f"{index:03d}" for index in range(40)]

        def write_all(payload):
            for key in keys:
                journal.record(key, (payload, key))

        threads = [
            threading.Thread(target=write_all, args=(payload,))
            for payload in ("a", "b", "c", "d")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        entries = journal.load()
        # Every entry is present and readable (last writer won; no
        # torn pickles, so nothing was quarantined) ...
        assert sorted(entries) == keys
        for key, value in entries.items():
            assert value[0] in "abcd" and value[1] == key
        # ... and no temporary files leaked.
        assert not [
            name
            for name in os.listdir(journal.directory)
            if name.endswith(".tmp") or name.endswith(".corrupt")
        ]

    def test_discard_drops_scope_and_empty_parent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULT_CACHE_DIR", str(tmp_path))
        journal = journal_for_scope("a" * 64)
        journal.record("key", 1)
        assert os.path.isdir(journal.directory)
        journal.discard()
        assert not os.path.exists(journal.directory)
        # The journals/ shell is removed too, so a store directory
        # holding nothing but a finished sweep's scaffolding ends empty.
        assert not os.path.exists(os.path.dirname(journal.directory))


class TestKillAndResume:
    """A sweep SIGKILLed at item k resumes, replaying only 0..k-1."""

    CHILD = textwrap.dedent(
        """
        import json, os, signal, sys

        from repro.exec import ExecutionSettings, execute_items, resolve_executor
        from repro.exec.journal import journal_for_scope

        def worker(args):
            if args == 3 and os.environ.get("CHAOS_KILL"):
                # Hard-kill the supervising process mid-sweep: the
                # deterministic stand-in for a crashed campaign.
                os.kill(os.getppid(), signal.SIGKILL)
            return args * args

        settings = ExecutionSettings(processes=1, retries=0, retry_delay=0.001)
        report = execute_items(
            worker,
            list(range(6)),
            settings,
            resolve_executor("processes"),
            journal_for_scope("f" * 64),
        )
        json.dump(
            {
                "statuses": [item.status for item in report.items],
                "values": report.values(),
            },
            sys.stdout,
        )
        """
    )

    def _run_child(self, store_dir, chaos_kill):
        env = dict(os.environ)
        env["REPRO_RESULT_CACHE_DIR"] = str(store_dir)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if chaos_kill:
            env["CHAOS_KILL"] = "1"
        else:
            env.pop("CHAOS_KILL", None)
        return subprocess.run(
            [sys.executable, "-c", self.CHILD],
            env=env,
            timeout=120,
            capture_output=True,
            text=True,
        )

    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path):
        import json

        store_dir = tmp_path / "store"
        killed = self._run_child(store_dir, chaos_kill=True)
        assert killed.returncode == -signal.SIGKILL
        # One worker process means in-order dispatch: items 0..2 were
        # checkpointed incrementally before item 3 took the supervisor
        # down -- the kill loses only the in-flight item.
        journal = SweepJournal(str(store_dir / "journals" / ("f" * 32)))
        assert len(journal.load()) == 3
        resumed_child = self._run_child(store_dir, chaos_kill=False)
        assert resumed_child.returncode == 0, resumed_child.stderr
        resumed = json.loads(resumed_child.stdout)
        assert resumed["statuses"] == [STATUS_REPLAYED] * 3 + [STATUS_OK] * 3
        # Bit-identical to a run that was never disturbed.
        undisturbed_child = self._run_child(tmp_path / "fresh", chaos_kill=False)
        assert undisturbed_child.returncode == 0, undisturbed_child.stderr
        undisturbed = json.loads(undisturbed_child.stdout)
        assert resumed["values"] == undisturbed["values"]
        assert undisturbed["statuses"] == [STATUS_OK] * 6

    def test_resume_keys_on_worker_and_arguments(self, tmp_path):
        # A journal written by one worker function can never replay
        # into a sweep over a different worker or different arguments.
        journal = SweepJournal(str(tmp_path / "scope"))
        executor = resolve_executor("serial")
        execute_items(_square, ITEMS, serial_settings(), executor, journal)
        other = execute_items(
            _explode, ITEMS, serial_settings(retries=0), executor, journal
        )
        assert not [item for item in other.items if item.status == STATUS_REPLAYED]


class LegacyListExecutor:
    """An entry-point executor written against the pre-hook interface."""

    name = "legacy-list"

    def run(self, worker, items, settings):
        from repro.exec.executors import RunOutcome
        from repro.exec.results import ItemResult

        results = [
            ItemResult(index, STATUS_OK, value=worker(args)) for index, args in items
        ]
        return RunOutcome(results, False)


class TestExecutorResolution:
    def test_entry_point_executor_resolves_by_module_attribute(self):
        executor = resolve_executor("test_exec_resilience:LegacyListExecutor")
        assert executor.name == "legacy-list"

    def test_pre_hook_executor_is_journaled_from_results(self, tmp_path):
        # A custom executor that never calls on_result still checkpoints:
        # execute_items journals its returned successes as a safety net.
        executor = resolve_executor("test_exec_resilience:LegacyListExecutor")
        journal = SweepJournal(str(tmp_path / "scope"))
        report = execute_items(_square, ITEMS, serial_settings(), executor, journal)
        assert report.values() == [0, 1, 4, 9]
        assert len(journal.load()) == len(ITEMS)

    def test_unknown_executor_is_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("warp-drive")


class TestFaultPlans:
    def test_plan_round_trips_through_json(self):
        plan = FaultPlan.of(
            Fault(kind="kill", index=1),
            Fault(kind="raise", index=2, attempt=2, message="flaky"),
            Fault(kind="hang", index=3, seconds=1.5),
            Fault(kind="truncate", index=0, target="*.npz", store="trace-cache"),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_spec_accepts_inline_json_and_files(self, tmp_path):
        document = '{"faults": [{"kind": "raise", "index": 1}]}'
        inline = FaultPlan.from_spec(document)
        path = tmp_path / "plan.json"
        path.write_text(document, encoding="utf-8")
        assert FaultPlan.from_spec(str(path)) == inline
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("  ") is None

    def test_unknown_kind_and_store_are_rejected(self):
        with pytest.raises(ValueError):
            Fault(kind="meteor", index=0)
        with pytest.raises(ValueError):
            Fault(kind="truncate", index=0, store="the-moon")

    def test_truncate_fault_quarantines_trace_cache_entry(
        self, tmp_path, monkeypatch
    ):
        from repro.workloads import get_workload
        from repro.workloads.trace_cache import (
            clear_trace_cache,
            trace_cache_info,
            workload_trace,
        )

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        spec = get_workload("FT")
        reference = workload_trace(spec, 2_000)
        assert [name for name in os.listdir(tmp_path) if name.endswith(".npz")]
        FaultPlan.of(
            Fault(kind="truncate", index=0, target="*.npz", store="trace-cache")
        ).fire(0, 1, allow_exit=False)
        clear_trace_cache()  # Drop the memory layer; force a disk read.
        recovered = workload_trace(spec, 2_000)
        info = trace_cache_info()
        assert info["quarantined"] == 1
        corrupt = [
            name for name in os.listdir(tmp_path) if name.endswith(".corrupt")
        ]
        assert len(corrupt) == 1
        # The recompute is bit-identical to the pre-damage trace.
        import numpy as np

        assert np.array_equal(recovered.block_ids, reference.block_ids)
        assert np.array_equal(recovered.taken_column, reference.taken_column)
        assert np.array_equal(recovered.target_column, reference.target_column)


class TestShimsRemoved:
    """The deprecation cycle is complete: the module-level shims are gone."""

    def test_run_sweep_and_workload_trace_removed_from_common(self):
        import repro.experiments.common as common

        assert not hasattr(common, "run_sweep")
        assert not hasattr(common, "workload_trace")

    def test_canonical_homes_still_serve_the_replacements(self):
        from repro.api import default_session
        from repro.workloads import get_workload
        from repro.workloads.trace_cache import workload_trace

        assert default_session().map(_square, ITEMS) == [
            _square(item) for item in ITEMS
        ]
        spec = get_workload("FT")
        # The process-wide cache returns the very same trace object.
        assert workload_trace(spec, 2_000) is workload_trace(spec, 2_000)

    def test_package_level_simulate_frontend_removed(self):
        import repro.frontend
        from repro.frontend import simulation

        with pytest.raises(AttributeError):
            repro.frontend.simulate_frontend
        with pytest.raises(AttributeError):
            repro.frontend.simulate_frontend_many
        assert "simulate_frontend" not in repro.frontend.__all__
        # The engine itself stays importable from its canonical module.
        assert callable(simulation.simulate_frontend)
        assert callable(simulation.simulate_frontend_many)

    def test_unknown_frontend_attribute_still_raises(self):
        import repro.frontend

        with pytest.raises(AttributeError):
            repro.frontend.definitely_not_a_thing
