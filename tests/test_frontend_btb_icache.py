"""Tests for the BTB, the I-cache, and the front-end configurations."""

import pytest

from repro.frontend import (
    BASELINE_FRONTEND,
    TAILORED_FRONTEND,
    BranchTargetBuffer,
    ICacheConfig,
    InstructionCache,
    simulate_btb,
    simulate_icache,
)
from repro.frontend.simulation import simulate_frontend
from repro.trace import CodeSection


class TestBTB:
    def test_first_access_misses_then_hits(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        assert not btb.access(0x4000, 0x5000)
        assert btb.access(0x4000, 0x5000)
        assert btb.miss_rate == pytest.approx(0.5)

    def test_target_change_counts_as_miss(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        btb.access(0x4000, 0x5000)
        assert not btb.access(0x4000, 0x6000)
        assert btb.access(0x4000, 0x6000)

    def test_lru_eviction_within_a_set(self):
        btb = BranchTargetBuffer(entries=4, associativity=2)
        # Addresses mapping to the same set (2 sets -> stride of 8 bytes).
        a, b, c = 0x4000, 0x4008, 0x4010
        btb.access(a, 1)
        btb.access(b, 2)
        btb.access(c, 3)   # evicts a
        assert btb.lookup(a) is None
        assert btb.lookup(b) == 2

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=100, associativity=4)
        with pytest.raises(ValueError):
            BranchTargetBuffer(entries=64, associativity=3)

    def test_storage_bits_scale_with_entries(self):
        small = BranchTargetBuffer(entries=256).storage_bits()
        big = BranchTargetBuffer(entries=2048).storage_bits()
        assert big == 8 * small

    def test_reset_statistics(self):
        btb = BranchTargetBuffer(entries=64, associativity=4)
        btb.access(0x4000, 1)
        btb.reset_statistics()
        assert btb.lookups == 0 and btb.misses == 0

    def test_hpc_btb_mpki_is_insensitive_to_size(self, ft_trace):
        small = simulate_btb(ft_trace, entries=256, associativity=8).mpki
        large = simulate_btb(ft_trace, entries=1024, associativity=8).mpki
        assert small - large < 0.5  # Implication 2

    def test_desktop_benefits_from_a_bigger_btb(self, gobmk_trace):
        small = simulate_btb(gobmk_trace, entries=256, associativity=8).mpki
        large = simulate_btb(gobmk_trace, entries=1024, associativity=8).mpki
        assert large < small * 0.95

    def test_desktop_mpki_exceeds_hpc(self, ft_trace, gobmk_trace):
        hpc = simulate_btb(ft_trace, entries=512, associativity=4).mpki
        desktop = simulate_btb(gobmk_trace, entries=512, associativity=4).mpki
        assert desktop > hpc


class TestInstructionCache:
    def test_repeated_fetch_hits(self):
        cache = InstructionCache(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.fetch_range(0x4000, 128) == 2
        assert cache.fetch_range(0x4000, 128) == 0
        assert cache.accesses == 4

    def test_capacity_eviction(self):
        cache = InstructionCache(size_bytes=256, line_bytes=64, associativity=2)
        for start in range(0, 512, 64):
            cache.fetch_range(0x4000 + start, 64)
        # Working set is twice the capacity; re-fetching the start misses.
        assert cache.fetch_range(0x4000, 64) == 1

    def test_miss_rate_property(self):
        cache = InstructionCache(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.miss_rate == 0.0
        cache.fetch_range(0x4000, 64)
        assert cache.miss_rate == 1.0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            InstructionCache(size_bytes=1000, line_bytes=64, associativity=4)
        with pytest.raises(ValueError):
            InstructionCache(size_bytes=1024, line_bytes=48, associativity=4)

    def test_zero_byte_fetch(self):
        cache = InstructionCache(size_bytes=1024, line_bytes=64, associativity=2)
        assert cache.fetch_range(0x4000, 0) == 0

    def test_storage_bits_exceed_data_bits(self):
        cache = InstructionCache(size_bytes=8192, line_bytes=64, associativity=4)
        assert cache.storage_bits() > 8192 * 8

    def test_hpc_fits_in_a_small_cache(self, ft_trace):
        mpki = simulate_icache(ft_trace, size_bytes=16 * 1024, line_bytes=128,
                               associativity=8).mpki
        assert mpki < 1.0  # Implication 3

    def test_desktop_needs_the_large_cache(self, gobmk_trace):
        small = simulate_icache(gobmk_trace, size_bytes=16 * 1024).mpki
        large = simulate_icache(gobmk_trace, size_bytes=32 * 1024).mpki
        assert small > 1.5 * large  # Figure 8: ~2.5x in the paper

    def test_wider_lines_help_hpc(self, ft_trace):
        narrow = simulate_icache(ft_trace, size_bytes=16 * 1024, line_bytes=32,
                                 associativity=8).mpki
        wide = simulate_icache(ft_trace, size_bytes=16 * 1024, line_bytes=128,
                               associativity=8).mpki
        assert wide <= narrow  # Figure 9 shape for HPC


class TestConfigs:
    def test_baseline_matches_the_paper(self):
        assert BASELINE_FRONTEND.icache.size_bytes == 32 * 1024
        assert BASELINE_FRONTEND.icache.line_bytes == 64
        assert BASELINE_FRONTEND.predictor.budget == "big"
        assert BASELINE_FRONTEND.btb.entries == 2048

    def test_tailored_matches_the_paper(self):
        assert TAILORED_FRONTEND.icache.size_bytes == 16 * 1024
        assert TAILORED_FRONTEND.icache.line_bytes == 128
        assert TAILORED_FRONTEND.predictor.with_loop
        assert TAILORED_FRONTEND.btb.entries == 256

    def test_config_builders(self):
        cache = ICacheConfig(size_bytes=8192, line_bytes=64, associativity=2).build()
        assert isinstance(cache, InstructionCache)
        assert "8KB" in ICacheConfig(size_bytes=8192).label

    def test_describe_mentions_all_structures(self):
        text = BASELINE_FRONTEND.describe()
        assert "I-cache" in text and "BP" in text and "BTB" in text

    def test_simulate_frontend_returns_all_components(self, ft_trace):
        result = simulate_frontend(ft_trace, TAILORED_FRONTEND, CodeSection.PARALLEL)
        assert result.config_name == "tailored"
        assert result.branch.mpki >= 0.0
        assert result.btb.mpki >= 0.0
        assert result.icache.mpki >= 0.0
