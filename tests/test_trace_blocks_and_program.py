"""Tests for basic blocks, region types, and the program container."""

import numpy as np
import pytest

from repro.trace import (
    BranchKind,
    BasicBlock,
    CallRegion,
    CodeRegion,
    FixedTripCount,
    Function,
    GeometricTripCount,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Program,
    Sequence,
    SyscallRegion,
    UniformTripCount,
    layout_program,
)
from repro.trace.basic_block import BlockSizing, total_code_bytes
from repro.trace.execution import ExecutionContext


def make_context(max_instructions: int = 10_000, seed: int = 3) -> ExecutionContext:
    return ExecutionContext(np.random.default_rng(seed), max_instructions)


class TestBasicBlock:
    def test_requires_at_least_one_instruction(self):
        with pytest.raises(ValueError):
            BasicBlock(num_instructions=0, size_bytes=0)

    def test_requires_at_least_one_byte_per_instruction(self):
        with pytest.raises(ValueError):
            BasicBlock(num_instructions=4, size_bytes=3)

    def test_end_and_fallthrough_addresses(self):
        block = BasicBlock(num_instructions=4, size_bytes=16)
        block.address = 0x1000
        assert block.end_address == 0x1010
        assert block.fallthrough_address == 0x1010

    def test_branch_address_is_inside_the_block(self):
        block = BasicBlock(
            num_instructions=4, size_bytes=16, terminator=BranchKind.CONDITIONAL_DIRECT
        )
        block.address = 0x2000
        assert 0x2000 <= block.branch_address < 0x2010

    def test_branch_address_requires_a_branch(self):
        block = BasicBlock(num_instructions=4, size_bytes=16)
        with pytest.raises(ValueError):
            block.branch_address

    def test_total_code_bytes(self):
        blocks = [BasicBlock(2, 8), BasicBlock(3, 12)]
        assert total_code_bytes(blocks) == 20


class TestBlockSizing:
    def test_draw_respects_minimum(self):
        sizing = BlockSizing(mean_instructions=2.0, min_instructions=2)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert sizing.draw_instructions(rng) >= 2

    def test_size_block_scales_bytes(self):
        sizing = BlockSizing(mean_instructions=10.0, bytes_per_instruction=4.0)
        rng = np.random.default_rng(1)
        block = sizing.size_block(rng)
        assert block.size_bytes >= block.num_instructions


class TestTripCounts:
    def test_fixed_is_regular(self):
        model = FixedTripCount(7)
        rng = np.random.default_rng(0)
        assert model.is_regular
        assert model.mean == 7.0
        assert all(model.draw(rng) == 7 for _ in range(10))

    def test_fixed_rejects_non_positive(self):
        with pytest.raises(ValueError):
            FixedTripCount(0)

    def test_uniform_bounds(self):
        model = UniformTripCount(3, 6)
        rng = np.random.default_rng(0)
        draws = [model.draw(rng) for _ in range(200)]
        assert min(draws) >= 3 and max(draws) <= 6
        assert not model.is_regular

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformTripCount(5, 4)

    def test_geometric_mean_is_approximate(self):
        model = GeometricTripCount(12.0, minimum=2)
        rng = np.random.default_rng(0)
        draws = [model.draw(rng) for _ in range(3000)]
        assert min(draws) >= 2
        assert 10.0 <= sum(draws) / len(draws) <= 14.0

    def test_geometric_rejects_mean_below_minimum(self):
        with pytest.raises(ValueError):
            GeometricTripCount(1.0, minimum=3)


class TestRegions:
    def test_code_region_emits_one_event(self):
        region = CodeRegion(5)
        ctx = make_context()
        region.execute(ctx)
        assert len(ctx.events) == 1
        assert ctx.instructions_emitted == 5

    def test_sequence_executes_in_order(self):
        first, second = CodeRegion(2), CodeRegion(3)
        program = Program("p", [Function("f", Sequence([first, second]))])
        ctx = make_context()
        program.entry_function.body.execute(ctx)
        assert [e.block_id for e in ctx.events] == [
            first.block.block_id, second.block.block_id,
        ]

    def test_loop_executes_body_trip_times(self):
        body = CodeRegion(4)
        loop = Loop(body, FixedTripCount(6))
        Program("p", [Function("f", loop)])
        ctx = make_context()
        loop.execute(ctx)
        body_events = [e for e in ctx.events if e.block_id == body.block.block_id]
        latch_events = [e for e in ctx.events if e.block_id == loop.latch.block_id]
        assert len(body_events) == 6
        assert len(latch_events) == 6
        assert sum(e.taken for e in latch_events) == 5
        assert latch_events[-1].taken is False

    def test_if_probability_zero_never_runs_then(self):
        then = CodeRegion(3)
        conditional = If(0.0, then)
        Program("p", [Function("f", conditional)])
        ctx = make_context()
        for _ in range(20):
            conditional.execute(ctx)
        assert all(e.block_id != then.block.block_id for e in ctx.events)
        condition_events = [
            e for e in ctx.events if e.block_id == conditional.condition.block_id
        ]
        assert all(e.taken for e in condition_events)

    def test_if_pattern_cycles_deterministically(self):
        then = CodeRegion(2)
        conditional = If(0.5, then, pattern=[True, False, True])
        Program("p", [Function("f", conditional)])
        ctx = make_context()
        for _ in range(6):
            conditional.execute(ctx)
        condition_events = [
            e for e in ctx.events if e.block_id == conditional.condition.block_id
        ]
        # taken == "skip then", so the pattern [T, F, T] gives [F, T, F].
        assert [e.taken for e in condition_events] == [False, True, False] * 2

    def test_if_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            If(1.5, CodeRegion(1))

    def test_if_rejects_empty_pattern(self):
        with pytest.raises(ValueError):
            If(0.5, CodeRegion(1), pattern=[])

    def test_if_with_else_emits_skip_jump(self):
        conditional = If(1.0, CodeRegion(2), orelse=CodeRegion(2))
        Program("p", [Function("f", conditional)])
        ctx = make_context()
        conditional.execute(ctx)
        skip_events = [
            e for e in ctx.events if e.block_id == conditional.skip_else.block_id
        ]
        assert len(skip_events) == 1 and skip_events[0].taken

    def test_call_region_emits_call_and_return(self):
        callee = Function("leaf", CodeRegion(4))
        call = CallRegion(callee)
        program = Program("p", [Function("main", call), callee])
        layout_program(program)
        ctx = make_context()
        call.execute(ctx)
        kinds = [program.blocks[e.block_id].terminator for e in ctx.events]
        assert BranchKind.CALL in kinds
        assert BranchKind.RETURN in kinds

    def test_indirect_call_targets_each_callee_eventually(self):
        callees = [Function(f"leaf{i}", CodeRegion(2)) for i in range(3)]
        call = IndirectCallRegion(callees)
        program = Program("p", [Function("main", call)] + callees)
        layout_program(program)
        ctx = make_context()
        for _ in range(60):
            call.execute(ctx)
        targets = {
            e.target for e in ctx.events
            if program.blocks[e.block_id].terminator is BranchKind.INDIRECT_CALL
        }
        assert targets == {callee.entry_address for callee in callees}

    def test_indirect_call_rejects_empty_callees(self):
        with pytest.raises(ValueError):
            IndirectCallRegion([])

    def test_indirect_jump_dispatches_to_cases(self):
        cases = [CodeRegion(2), CodeRegion(3)]
        region = IndirectJumpRegion(cases, weights=[1.0, 1.0])
        program = Program("p", [Function("main", region)])
        layout_program(program)
        ctx = make_context()
        for _ in range(40):
            region.execute(ctx)
        executed = {e.block_id for e in ctx.events}
        assert cases[0].block.block_id in executed
        assert cases[1].block.block_id in executed

    def test_indirect_jump_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            IndirectJumpRegion([CodeRegion(1)], weights=[0.5, 0.5])

    def test_jump_region_is_always_taken_forward(self):
        jump = JumpRegion()
        program = Program("p", [Function("main", jump)])
        layout_program(program)
        ctx = make_context()
        jump.execute(ctx)
        assert ctx.events[0].taken
        assert jump.block.taken_target == jump.block.end_address

    def test_syscall_region_kind(self):
        syscall = SyscallRegion()
        Program("p", [Function("main", syscall)])
        ctx = make_context()
        syscall.execute(ctx)
        assert syscall.block.terminator is BranchKind.SYSCALL

    def test_region_static_size_helpers(self):
        region = Sequence([CodeRegion(4), CodeRegion(6)])
        assert region.instruction_count() == 10
        assert region.code_bytes() >= 10


class TestProgram:
    def test_blocks_get_unique_dense_ids(self, tiny_program):
        ids = [block.block_id for block in tiny_program.blocks]
        assert ids == list(range(len(ids)))

    def test_block_lookup(self, tiny_program):
        block = tiny_program.blocks[3]
        assert tiny_program.block(3) is block

    def test_function_named(self, tiny_program):
        assert tiny_program.function_named("leaf").name == "leaf"
        with pytest.raises(KeyError):
            tiny_program.function_named("missing")

    def test_requires_at_least_one_function(self):
        with pytest.raises(ValueError):
            Program("empty", [])

    def test_block_cannot_belong_to_two_programs(self):
        region = CodeRegion(4)
        Program("first", [Function("f", region)])
        with pytest.raises(ValueError):
            Program("second", [Function("g", region)])

    def test_static_sizes_are_consistent(self, tiny_program):
        assert tiny_program.static_code_bytes() == sum(
            block.size_bytes for block in tiny_program.blocks
        )
        assert tiny_program.static_instruction_count() == sum(
            block.num_instructions for block in tiny_program.blocks
        )
