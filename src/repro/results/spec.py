"""Declarative experiment specifications.

Each experiment module (``repro.experiments.fig05_branch_mpki``, ...)
exposes a module-level ``SPEC``: the uniform interface the orchestrator
registers it behind.  A spec names the compute kernel (the ``run_*``
driver), how to render its result into table blocks, and everything
that must be folded into the content-addressed result key -- the
workload set and any semantic constants (geometries, CMP names,
predictor configurations) baked into the driver's defaults.

Specs may also declare *dependencies*: experiments whose stored
artifacts they can be derived from without simulating anything (e.g.
Figure 11 is a per-benchmark slice of Figure 10's execution-time
metric).  Derivation is opportunistic -- when a dependency's artifact
is unavailable the driver simply runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Tuple

from repro.results.artifacts import TableBlock

#: A derive hook: (dependency artifacts by name, resolved semantic
#: config) -> result object, or ``None`` to fall back to the runner.
DeriveFn = Callable[[Mapping[str, Mapping[str, Any]], Mapping[str, Any]], Optional[Any]]


def _no_workloads() -> Tuple[str, ...]:
    """Default workload set for model-only experiments (tables 2/3)."""
    return ()


def _no_constants() -> Mapping[str, Any]:
    return {}


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper artefact registered with the orchestrator."""

    #: Registry/CLI name, e.g. ``"fig5"``.
    name: str
    #: Human-readable description shown in manifests and ``list``.
    title: str
    #: The ``run_*`` driver (the compute kernel).
    runner: Callable[..., Any]
    #: result -> table blocks (exactly what the CLI prints / CSV emits).
    tables: Callable[[Any], Sequence[TableBlock]]
    #: Workload names folded into the result key (the default set the
    #: runner sweeps when invoked through the orchestrator).
    workloads: Callable[[], Tuple[str, ...]] = field(default=_no_workloads)
    #: Extra semantic configuration folded into the key: defaults baked
    #: into the driver that change its numbers (geometries, CMP names).
    constants: Callable[[], Mapping[str, Any]] = field(default=_no_constants)
    #: Experiments this one can be derived from (see :attr:`derive`).
    dependencies: Tuple[str, ...] = ()
    #: Optional derivation hook replacing the runner when every
    #: dependency artifact is available and compatible.
    derive: Optional[DeriveFn] = None
