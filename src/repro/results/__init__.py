"""Content-addressed experiment results: store, specs, orchestrator.

The subpackage splits into:

* :mod:`repro.results.artifacts` -- the JSON-serializable form of a
  result (table blocks + payload) and its CSV/JSON emission,
* :mod:`repro.results.spec` -- the uniform :class:`ExperimentSpec`
  interface every experiment module registers itself behind,
* :mod:`repro.results.store` -- the content-addressed store (in-process
  layer plus the ``REPRO_RESULT_CACHE_DIR`` disk layer),
* :mod:`repro.results.orchestrator` -- dependency-ordered execution of
  any experiment selection with store reuse and manifest emission.

The orchestrator is intentionally *not* imported here: experiment
modules import ``repro.results.spec``/``artifacts`` at definition time,
and the orchestrator imports the experiment modules -- keeping this
``__init__`` free of the orchestrator avoids the import cycle.  Use
``from repro.results.orchestrator import run_experiments``.
"""

from repro.results.artifacts import (
    TableBlock,
    block,
    build_artifact,
    to_jsonable,
)
from repro.results.spec import ExperimentSpec
from repro.results.store import (
    RESULT_CACHE_DIR_VARIABLE,
    RESULT_STORE_VERSION,
    clear_result_store,
    default_result_store_dir,
    enable_shared_result_store,
    load_result,
    resolved_result_dir,
    result_key,
    result_store_info,
    store_result,
    store_result_cas,
)

__all__ = [
    "TableBlock",
    "block",
    "build_artifact",
    "to_jsonable",
    "ExperimentSpec",
    "RESULT_CACHE_DIR_VARIABLE",
    "RESULT_STORE_VERSION",
    "clear_result_store",
    "default_result_store_dir",
    "enable_shared_result_store",
    "load_result",
    "resolved_result_dir",
    "result_key",
    "result_store_info",
    "store_result",
    "store_result_cas",
]
