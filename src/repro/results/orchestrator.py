"""Unified experiment orchestrator.

Registers every figure/table/sweep driver behind the uniform
:class:`~repro.results.spec.ExperimentSpec` interface, resolves their
dependency graph (Figure 11 derives from Figure 10; the Section V
experiments share front-end profiles in-process by running in paper
order), and executes any selection -- up to the whole paper -- with
shared parallel sweeps and the content-addressed result store.

Every result is keyed by its full provenance (see
:func:`repro.results.store.result_key`), checked against the store
before computing, and stored immediately after computing -- so a killed
``repro-frontend all`` run resumes from where it died, replaying only
the missing keys, and a warm rerun recomputes nothing at all.
"""

from __future__ import annotations

import inspect
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exec.journal import journal_for_scope, journal_scope
from repro.results.artifacts import (
    build_frame_artifact,
    ensure_directory,
    write_artifact_csv,
    write_artifact_json,
)
from repro.results.spec import ExperimentSpec
from repro.results.store import load_result, result_key, store_result_cas

#: Dynamic trace length of ``--smoke`` runs: long enough for every
#: experiment to produce non-degenerate tables, short enough for the
#: whole paper to regenerate in well under a minute.
SMOKE_INSTRUCTIONS = 20_000

#: Manifest schema version (the ``manifest.json`` layout).
MANIFEST_SCHEMA_VERSION = 1


def _registry() -> "Dict[str, ExperimentSpec]":
    """The experiment registry, in paper order.

    Built lazily (and memoized) so importing this module does not pull
    in every experiment module; the import is one-directional -- the
    experiment modules never import the orchestrator.
    """
    global _SPECS
    if _SPECS is None:
        from repro import experiments

        specs = [
            experiments.fig01_branch_mix.SPEC,
            experiments.fig02_branch_bias.SPEC,
            experiments.table1_taken_direction.SPEC,
            experiments.fig03_footprint.SPEC,
            experiments.fig04_basic_blocks.SPEC,
            experiments.table2_predictor_budgets.SPEC,
            experiments.fig05_branch_mpki.SPEC,
            experiments.fig06_mpki_breakdown.SPEC,
            experiments.fig07_btb.SPEC,
            experiments.fig08_icache.SPEC,
            experiments.fig09_icache_lines.SPEC,
            experiments.table3_area_power.SPEC,
            experiments.fig10_cmp_configs.SPEC,
            experiments.fig11_per_benchmark_time.SPEC,
            experiments.cmp_sweep.SPEC,
            *experiments.explore_presets.SPECS,
        ]
        _SPECS = {spec.name: spec for spec in specs}
    return _SPECS


_SPECS: Optional[Dict[str, ExperimentSpec]] = None


def registry_names() -> List[str]:
    """Every registered experiment name, in paper order."""
    return list(_registry())


def get_spec(name: str) -> ExperimentSpec:
    """Look up one registered experiment spec by name."""
    registry = _registry()
    if name not in registry:
        known = ", ".join(registry)
        raise KeyError(f"unknown experiment {name!r}; expected one of {known}")
    return registry[name]


@dataclass
class ExperimentOutcome:
    """How one experiment of a run was satisfied."""

    name: str
    title: str
    key: str
    #: ``"computed"`` (runner executed), ``"derived"`` (built from a
    #: dependency's artifact), or ``"cached"`` (served from the store).
    status: str
    artifact: Dict[str, Any]

    def frame(self):
        """The artifact's tables as one columnar ResultFrame.

        This is what the manifest writer emits (multi-table artifacts
        gain the leading ``table`` column); heterogeneous-header
        artifacts raise -- use :meth:`frames` for those.
        """
        from repro.api.frame import ResultFrame

        return ResultFrame.from_artifact(self.artifact)

    def frames(self):
        """One ResultFrame per table block of the artifact."""
        from repro.api.frame import artifact_frames

        return artifact_frames(self.artifact)

    def stored_frames(self) -> "Dict[str, Any]":
        """The artifact's stored payload frames, by name.

        These are the canonical columnar payloads (v2 artifacts store
        one versioned frame per logical table); every frame supports
        ``select()``/``column()`` slicing without driver code.
        """
        from repro.api.frame import ResultFrame

        return {
            name: ResultFrame.from_payload(payload)
            for name, payload in (self.artifact.get("frames") or {}).items()
        }

    def stored_frame(self, name: Optional[str] = None):
        """One stored payload frame (default: the artifact's primary)."""
        from repro.api.frame import ResultFrame

        frames = self.artifact.get("frames") or {}
        if name is None:
            name = self.artifact.get("primary")
        if name not in frames:
            known = ", ".join(frames) or "none"
            raise KeyError(
                f"experiment {self.name!r} has no stored frame {name!r} "
                f"(stored: {known})"
            )
        return ResultFrame.from_payload(frames[name])


@dataclass
class RunReport:
    """Outcome of one orchestrated run."""

    instructions: int
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    #: Flags the caller passed that no selected experiment consumed.
    ignored_flags: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        """Number of experiments per outcome status."""
        counts = {"computed": 0, "derived": 0, "cached": 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def outcome(self, name: str) -> ExperimentOutcome:
        """The outcome of one experiment of this run."""
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"experiment {name!r} is not part of this run")


def _accepts(runner: Any, parameter: str) -> bool:
    return parameter in inspect.signature(runner).parameters


def spec_config(
    spec: ExperimentSpec,
    instructions: int,
    scenario_names: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Resolve a spec's *semantic* configuration (the key material).

    Only parameters that change the numbers are included; execution
    details (``run_parallel``, ``processes``) are deliberately absent,
    because serial and parallel sweeps produce bit-identical results.
    """
    config: Dict[str, Any] = dict(spec.constants())
    if _accepts(spec.runner, "instructions"):
        config["instructions"] = int(instructions)
    if _accepts(spec.runner, "scenario_names"):
        if scenario_names is None:
            from repro.uarch.sweep import standard_scenarios

            scenario_names = list(standard_scenarios())
        config["scenario_names"] = list(scenario_names)
    return config


def experiment_key(
    spec: ExperimentSpec,
    instructions: int,
    scenario_names: Optional[Sequence[str]] = None,
) -> str:
    """Content-address of one experiment under a run configuration."""
    config = spec_config(spec, instructions, scenario_names)
    return result_key(spec.name, config, spec.workloads())


def _topological(names: Sequence[str]) -> List[str]:
    """Order a selection so dependencies come before their dependents.

    Unselected dependencies are *not* pulled in -- they are consulted
    through the store instead, so asking for one cheap experiment never
    triggers an expensive prerequisite.
    """
    registry = _registry()
    selected = [name for name in registry if name in set(names)]
    ordered: List[str] = []
    visiting: set = set()

    def visit(name: str) -> None:
        if name in ordered or name not in selected:
            return
        if name in visiting:
            raise ValueError(f"dependency cycle through experiment {name!r}")
        visiting.add(name)
        for dependency in registry[name].dependencies:
            visit(dependency)
        visiting.discard(name)
        ordered.append(name)

    for name in selected:
        visit(name)
    return ordered


def run_experiments(
    names: Optional[Sequence[str]] = None,
    instructions: int = SMOKE_INSTRUCTIONS,
    run_parallel: bool = False,
    processes: Optional[int] = None,
    scenario_names: Optional[Sequence[str]] = None,
    use_store: bool = True,
) -> RunReport:
    """Execute a selection of experiments (default: the whole paper).

    For each experiment, in dependency order: consult the result store,
    then try deriving from dependency artifacts, then run the driver
    (fanning its per-workload sweep across processes under
    ``run_parallel``).  Freshly computed or derived artifacts are stored
    immediately, making interrupted runs resumable.
    """
    registry = _registry()
    if names is None:
        names = list(registry)
    unknown = [name for name in names if name not in registry]
    if unknown:
        raise KeyError(f"unknown experiment(s): {', '.join(sorted(unknown))}")

    report = RunReport(instructions=int(instructions))
    report.ignored_flags.extend(unconsumed_flags(names, run_parallel, scenario_names))

    for name in _topological(names):
        spec = registry[name]
        config = spec_config(spec, instructions, scenario_names)
        key = result_key(spec.name, config, spec.workloads())

        artifact = load_result(key, spec.name) if use_store else None
        if artifact is not None:
            report.outcomes.append(
                ExperimentOutcome(name, spec.title, key, "cached", artifact)
            )
            continue

        result = None
        status = "computed"
        if spec.derive is not None:
            dependencies = _dependency_artifacts(
                spec, report, instructions, scenario_names, use_store
            )
            if dependencies is not None:
                result = spec.derive(dependencies, config)
                if result is not None:
                    status = "derived"
        if result is None:
            # Every Session.map the driver performs checkpoints its
            # items under this experiment's own result key (which folds
            # in the code fingerprint), so a killed run replays only
            # the missing items on the next invocation.
            with journal_scope(key):
                result = spec.runner(
                    **_runner_kwargs(spec, config, run_parallel, processes)
                )
        artifact = build_frame_artifact(
            spec.name, spec.title, spec.tables(result), result
        )
        if use_store:
            # First-writer-wins: when two orchestrations race on the
            # same key (overlapping CLI invocations, a resumed run
            # racing a zombie), every process converges on the first
            # published artifact instead of last-writer clobbering.
            _, artifact = store_result_cas(key, artifact, spec.name)
            journal = journal_for_scope(key)
            if journal is not None:
                # The artifact is durable now; the item-level
                # checkpoints behind it have served their purpose.
                journal.discard()
        report.outcomes.append(
            ExperimentOutcome(name, spec.title, key, status, artifact)
        )
    return report


def unconsumed_flags(
    names: Sequence[str],
    run_parallel: bool,
    scenario_names: Optional[Sequence[str]],
    budget_flag: Optional[str] = None,
) -> List[str]:
    """Caller flags that no selected experiment's runner consumes.

    ``budget_flag`` names the flag an explicit instruction budget came
    from (``--instructions``/``--smoke``/``--full``), so model-only
    selections (table2/table3) that take no budget report it instead of
    silently ignoring it.
    """
    registry = _registry()
    ignored = []
    if budget_flag is not None and not any(
        _accepts(registry[name].runner, "instructions") for name in names
    ):
        ignored.append(budget_flag)
    if run_parallel and not any(
        _accepts(registry[name].runner, "run_parallel") for name in names
    ):
        ignored.append("--parallel")
    if scenario_names is not None and not any(
        _accepts(registry[name].runner, "scenario_names") for name in names
    ):
        ignored.append("--scenarios")
    return ignored


def _dependency_artifacts(
    spec: ExperimentSpec,
    report: RunReport,
    instructions: int,
    scenario_names: Optional[Sequence[str]],
    use_store: bool,
) -> Optional[Dict[str, Dict[str, Any]]]:
    """Artifacts of a spec's dependencies, or ``None`` if any is missing.

    Dependencies computed earlier in the same run are used directly;
    otherwise the store is consulted under the dependency's own key for
    the same run configuration.
    """
    artifacts: Dict[str, Dict[str, Any]] = {}
    for dependency in spec.dependencies:
        artifact = None
        for outcome in report.outcomes:
            if outcome.name == dependency:
                artifact = outcome.artifact
                break
        if artifact is None and use_store:
            dependency_spec = get_spec(dependency)
            key = experiment_key(dependency_spec, instructions, scenario_names)
            artifact = load_result(key, dependency)
        if artifact is None:
            return None
        artifacts[dependency] = artifact
    return artifacts


def _runner_kwargs(
    spec: ExperimentSpec,
    config: Mapping[str, Any],
    run_parallel: bool,
    processes: Optional[int],
) -> Dict[str, Any]:
    """Call kwargs for a runner: semantic config minus baked-in constants,
    plus the execution details the runner supports."""
    constants = set(spec.constants())
    kwargs = {
        parameter: value
        for parameter, value in config.items()
        if parameter not in constants
    }
    if run_parallel and _accepts(spec.runner, "run_parallel"):
        kwargs["run_parallel"] = True
        kwargs["processes"] = processes
    return kwargs


def write_manifest(report: RunReport, directory: str) -> str:
    """Emit every outcome of a run as CSV+JSON plus a manifest index.

    Returns the manifest path.  The per-experiment files are rendered
    from the artifacts alone, so runs served entirely from the result
    store emit bytes identical to the cold run that populated it.
    """
    ensure_directory(directory)
    entries: Dict[str, Dict[str, Any]] = {}
    for outcome in report.outcomes:
        csv_name = f"{outcome.name}.csv"
        json_name = f"{outcome.name}.json"
        write_artifact_csv(outcome.artifact, os.path.join(directory, csv_name))
        write_artifact_json(outcome.artifact, os.path.join(directory, json_name))
        entries[outcome.name] = {
            "title": outcome.title,
            "key": outcome.key,
            "status": outcome.status,
            "csv": csv_name,
            "json": json_name,
        }
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "instructions": report.instructions,
        "experiments": entries,
    }
    path = os.path.join(directory, "manifest.json")
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(manifest, stream, indent=2)
        stream.write("\n")
    return path
