"""Content-addressed experiment result store (memory + optional disk).

Every experiment result is keyed by a SHA-256 digest of its *complete*
provenance: the experiment name, the full semantic configuration
(instruction budget, geometries, scenario names, CMP names, ...), the
workload set it ran over, the RNG seed, and the code-relevant engine
versions (the trace-cache version plus this store's own version and the
artifact schema).  Two processes that would compute the same numbers
therefore derive the same key, and any change that could alter the
numbers derives a different one.

The store mirrors :mod:`repro.workloads.trace_cache`: an in-process
dictionary layer is always on, and an optional XDG-style disk layer is
controlled by the ``REPRO_RESULT_CACHE_DIR`` environment variable
(unset means "no disk layer" for library use; the CLI enables the
per-user default via :func:`enable_shared_result_store`; ``none``/
``off``/``0``/empty disables it everywhere).  Disk entries are written
atomically (write-then-rename); corrupt or truncated entries are
quarantined as ``*.corrupt`` evidence and treated as misses, so a
damaged cache can only cost a recompute, never a wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.api import runtime_config
from repro.api.frame import FRAME_SCHEMA_VERSION
from repro.results.artifacts import ARTIFACT_SCHEMA_VERSION, valid_artifact
from repro.workloads.trace_cache import TRACE_CACHE_VERSION, register_stats_provider

#: Environment variable selecting the on-disk result-store directory.
#: Owned by :mod:`repro.api.runtime_config`; re-exported here.
RESULT_CACHE_DIR_VARIABLE = runtime_config.RESULT_CACHE_DIR_VARIABLE

#: Version salt folded into every result key.  Bump when experiment
#: semantics change in a way the configuration cannot see.
RESULT_STORE_VERSION = 1

#: Memoized digest of the package source (see :func:`code_fingerprint`).
_CODE_FINGERPRINT: Optional[str] = None

#: In-process layer: key digest -> artifact.
_MEMORY: Dict[str, Dict[str, Any]] = {}
_LOCK = threading.Lock()
_STATS = {
    "hits": 0,
    "misses": 0,
    "stores": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "disk_stores": 0,
    "quarantined": 0,
    "cas_stores": 0,
    "cas_identical": 0,
    "cas_conflicts": 0,
    # Read-path accounting (the results service reads these): every
    # load_result call, how many resolved to an artifact from either
    # layer, and the cumulative wall time spent loading -- so a serving
    # layer can report store-read latency without wrapping every call.
    "loads": 0,
    "load_hits": 0,
    "load_ns": 0,
}


def default_result_store_dir() -> str:
    """Per-user shared result-store directory (platformdirs-style)."""
    return runtime_config.default_result_cache_dir()


def resolved_result_dir() -> Optional[str]:
    """The active disk-store directory, or ``None`` when disabled.

    Resolution goes through :mod:`repro.api.runtime_config`: an
    activated session config wins over the environment variable.
    """
    return runtime_config.current_result_cache_dir()


def enable_shared_result_store() -> Optional[str]:
    """Turn the disk layer on, defaulting to the per-user directory.

    Called by the CLI before orchestrated runs: when the directory
    variable is unset it is exported (so ``--parallel`` workers and
    later processes inherit it); an explicit path or disable value is
    left untouched.  Returns the active directory, or ``None`` when
    explicitly disabled.
    """
    runtime_config.export_environment_default(
        RESULT_CACHE_DIR_VARIABLE, default_result_store_dir()
    )
    return resolved_result_dir()


def code_fingerprint() -> str:
    """Digest of the installed ``repro`` package source (memoized).

    Folded into every result key so *any* code change invalidates
    stored results instead of silently serving pre-change numbers --
    the store never has to trust a manual version bump.  Conservative
    on purpose: a docstring edit costs a recompute, a semantics edit
    can never reuse a stale entry.
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for root, directories, files in sorted(os.walk(package_dir)):
            directories.sort()
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode("utf-8"))
                with open(path, "rb") as stream:
                    digest.update(stream.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def result_key(
    experiment: str,
    config: Mapping[str, Any],
    workloads: Sequence[str],
    seed: int = 0,
    runtime: Optional[Mapping[str, Any]] = None,
) -> str:
    """Content-address of one experiment result.

    The key material is serialized as canonical JSON (sorted keys, no
    whitespace), so the digest is stable across processes, platforms,
    and dictionary insertion orders.  The package source fingerprint is
    part of the material, so results computed by different code never
    share a key.

    ``runtime`` is the semantic slice of the governing
    :class:`~repro.api.runtime_config.RuntimeConfig` (see its
    ``semantic()`` method); when omitted it is taken from the currently
    active config -- the session the orchestrator runs under -- so
    content addressing keys off :class:`RuntimeConfig` rather than raw
    environment reads.
    """
    material = {
        "experiment": experiment,
        "config": config,
        "workloads": list(workloads),
        "seed": int(seed),
        "runtime": runtime_config.runtime_material(runtime),
        "versions": {
            "artifact_schema": ARTIFACT_SCHEMA_VERSION,
            "code": code_fingerprint(),
            "frame_schema": FRAME_SCHEMA_VERSION,
            "result_store": RESULT_STORE_VERSION,
            "trace_cache": TRACE_CACHE_VERSION,
        },
    }
    canonical = json.dumps(
        material, sort_keys=True, separators=(",", ":"), default=_canonical_default
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _canonical_default(value: Any) -> Any:
    """JSON fallback for key material (enums by name, sets sorted)."""
    if hasattr(value, "name") and hasattr(value, "value"):
        return value.name  # Enum members.
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"unhashable result-key component: {value!r}")


def load_result(key: str, experiment: Optional[str] = None) -> Optional[Dict[str, Any]]:
    """Fetch a stored artifact by key, memory layer first, then disk.

    A disk hit is promoted into the memory layer.  Returns ``None`` on
    a miss (including corrupt, truncated, or mismatched disk entries).
    """
    started = time.perf_counter_ns()
    with _LOCK:
        _STATS["loads"] += 1
        cached = _MEMORY.get(key)
        if cached is not None:
            _STATS["hits"] += 1
            _STATS["load_hits"] += 1
            _STATS["load_ns"] += time.perf_counter_ns() - started
            return cached
        _STATS["misses"] += 1

    if resolved_result_dir() is None:
        with _LOCK:
            _STATS["load_ns"] += time.perf_counter_ns() - started
        return None
    artifact = _load_from_disk(key, experiment)
    with _LOCK:
        _STATS["load_ns"] += time.perf_counter_ns() - started
        if artifact is None:
            _STATS["disk_misses"] += 1
            return None
        _STATS["disk_hits"] += 1
        _STATS["load_hits"] += 1
        _MEMORY[key] = artifact
    return artifact


def store_result(key: str, artifact: Dict[str, Any]) -> None:
    """Insert an artifact under its key (memory, then best-effort disk)."""
    with _LOCK:
        _MEMORY[key] = artifact
        _STATS["stores"] += 1
    if _store_to_disk(key, artifact):
        with _LOCK:
            _STATS["disk_stores"] += 1


def artifact_etag(artifact: Dict[str, Any]) -> str:
    """Content tag of an artifact: digest of its canonical JSON.

    The generation check of the CAS path: two writes are "the same
    result" exactly when their etags match, independent of dict
    insertion order or which process produced them.
    """
    canonical = json.dumps(
        artifact, sort_keys=True, separators=(",", ":"), default=_canonical_default
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def store_result_cas(
    key: str, artifact: Dict[str, Any], experiment: Optional[str] = None
) -> Tuple[str, Dict[str, Any]]:
    """First-writer-wins insert: the store's compare-and-swap path.

    :func:`store_result` is last-writer-wins, which is fine for a
    single-writer pipeline but ambiguous when two workers publish the
    same key concurrently (a reclaimed-but-alive queue worker racing
    its replacement).  This path resolves the race deterministically:

    * ``("stored", artifact)`` -- this writer created the entry.
    * ``("identical", winner)`` -- an entry with the same etag already
      exists; the benign double-completion, counted as such.
    * ``("conflict", winner)`` -- an entry with a *different* etag
      exists.  The first writer's artifact stands everywhere (and is
      returned so callers converge on it); the loser's bytes are
      preserved as ``*.conflict`` evidence next to the entry and the
      conflict is counted, never silently clobbered.

    Disk-layer atomicity is hardlink-based: the entry is fully written
    to a temporary file and then ``os.link``-ed into place, which both
    fails on an existing entry (the compare) and can never expose a
    torn half-written file to a concurrent reader.
    """
    path = _entry_path(key)
    if path is not None:
        status, winner = _cas_to_disk(path, key, artifact, experiment)
    else:
        status, winner = None, artifact  # Memory-only CAS below.
    with _LOCK:
        if status is None:
            existing = _MEMORY.get(key)
            if existing is None:
                status, winner = "stored", artifact
            elif artifact_etag(existing) == artifact_etag(artifact):
                status, winner = "identical", existing
            else:
                status, winner = "conflict", existing
        _MEMORY[key] = winner
        if status == "stored":
            _STATS["stores"] += 1
            _STATS["cas_stores"] += 1
            if path is not None:
                _STATS["disk_stores"] += 1
        elif status == "identical":
            _STATS["cas_identical"] += 1
        else:
            _STATS["cas_conflicts"] += 1
    return status, winner


def _cas_to_disk(
    path: str, key: str, artifact: Dict[str, Any], experiment: Optional[str]
) -> Tuple[str, Dict[str, Any]]:
    """The disk leg of :func:`store_result_cas` (see its docstring)."""
    etag = artifact_etag(artifact)
    # Insertion order is preserved (like the plain store): only the
    # etag comparison is canonical, the entry round-trips verbatim.
    data = json.dumps({"key": key, "artifact": artifact, "etag": etag}).encode("utf-8")
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, temporary = tempfile.mkstemp(suffix=".json.tmp", dir=directory)
    except OSError:
        return "stored", artifact  # No disk layer reachable: memory wins.
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        for _ in range(5):
            try:
                os.link(temporary, path)
                return "stored", artifact
            except FileExistsError:
                existing = _load_from_disk(key, experiment)
                if existing is not None:
                    if artifact_etag(existing) == etag:
                        return "identical", existing
                    _preserve_conflict(path, data)
                    return "conflict", existing
                if os.path.exists(path):
                    # A valid entry of *different* provenance (key
                    # prefix collision) occupies the slot; replace it
                    # exactly as the plain store would.
                    os.replace(temporary, path)
                    temporary = None
                    return "stored", artifact
                # Corrupt entry was quarantined away: retry the link.
            except OSError:
                return "stored", artifact  # Disk is best-effort.
        os.replace(temporary, path)
        temporary = None
        return "stored", artifact
    except OSError:
        return "stored", artifact
    finally:
        if temporary is not None:
            try:
                os.unlink(temporary)
            except OSError:
                pass


def _preserve_conflict(path: str, data: bytes) -> None:
    """Keep a CAS loser's bytes as ``*.conflict`` evidence (best effort)."""
    evidence = path + ".conflict"
    attempt = 0
    while os.path.exists(evidence):
        attempt += 1
        evidence = f"{path}.conflict.{attempt}"
    try:
        with open(evidence, "wb") as stream:
            stream.write(data)
    except OSError:
        pass


def clear_result_store() -> None:
    """Drop the in-process layer and reset the counters (tests).

    The disk layer is left untouched -- it is the cross-process layer a
    resumed run replays from.
    """
    with _LOCK:
        _MEMORY.clear()
        for counter in _STATS:
            _STATS[counter] = 0


def result_store_info() -> Dict[str, int]:
    """Hit/miss/store counters of the result store (both layers)."""
    with _LOCK:
        info = dict(_STATS)
        info["entries"] = len(_MEMORY)
        return info


def _entry_path(key: str) -> Optional[str]:
    directory = resolved_result_dir()
    if directory is None:
        return None
    return os.path.join(directory, f"{key[:32]}.json")


def _load_from_disk(key: str, experiment: Optional[str]) -> Optional[Dict[str, Any]]:
    path = _entry_path(key)
    if path is None or not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as stream:
            entry = json.load(stream)
    except OSError:
        return None  # Unreadable (permissions, transient IO): a plain miss.
    except ValueError:
        # Damaged bytes (torn write, truncation): quarantine the entry
        # as ``*.corrupt`` evidence and recompute.  Entries below that
        # merely mismatch (key prefix collision, schema change) are
        # valid files from other provenance and stay untouched.
        from repro.exec.journal import quarantine_entry

        if quarantine_entry(path) is not None:
            with _LOCK:
                _STATS["quarantined"] += 1
        return None
    if not isinstance(entry, dict) or entry.get("key") != key:
        return None
    artifact = entry.get("artifact")
    if not valid_artifact(artifact, experiment):
        return None
    return artifact


def _store_to_disk(key: str, artifact: Dict[str, Any]) -> bool:
    path = _entry_path(key)
    if path is None:
        return False
    # Write-then-rename keeps the store atomic: concurrent writers (the
    # orchestrator's --parallel workers, overlapping CLI invocations)
    # may race on the same key, and a reader must never observe a
    # half-written entry.  Last writer wins with identical content.
    temporary = None
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, temporary = tempfile.mkstemp(suffix=".json.tmp", dir=directory)
        with os.fdopen(handle, "w", encoding="utf-8") as stream:
            json.dump({"key": key, "artifact": artifact}, stream)
        os.replace(temporary, path)
    except OSError:
        if temporary is not None:
            try:
                os.unlink(temporary)
            except OSError:
                pass
        return False  # Disk store is best-effort.
    return True


register_stats_provider("results", result_store_info)
