"""Experiment artifacts: the stored/emitted form of a result.

An *artifact* is the JSON-serializable distillation of one experiment
result: the rendered table blocks (exactly what the CLI prints) plus a
structured payload (the raw numbers, for plotting).  Artifacts are what
the content-addressed result store persists and what the manifest
directory emits as CSV+JSON, so a store hit reproduces the original
outputs bit for bit without re-running any simulation.

This module is dependency-free on purpose: the experiment drivers, the
store, and the orchestrator all import it without creating a layering
cycle.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Version of the *stored* artifact schema, folded into the result-store
#: key so a schema change invalidates stored entries instead of
#: corrupting readers.  Since v2 the payload is a set of named columnar
#: frames plus a declarative payload spec; the nested-dict payload of
#: v1 is *rendered* from the frames at emission time.
ARTIFACT_SCHEMA_VERSION = 2

#: Version of the *emitted* manifest JSON layout.  Emission renders the
#: stored frames back into the historical v1 layout so manifest files
#: stay byte-identical across the frame-native refactor.
RENDERED_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TableBlock:
    """One rendered table of an experiment artifact.

    ``title`` is the human-readable block header (may span lines, shown
    by the CLI); ``name`` is a short machine-readable block label used
    as the leading CSV column of multi-table artifacts (e.g. the
    scenario name of a ``cmpsweep`` block).
    """

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[str, ...], ...]
    title: Optional[str] = None
    name: Optional[str] = None


def block(
    headers: Sequence[object],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    name: Optional[str] = None,
) -> TableBlock:
    """Build a :class:`TableBlock`, coercing every cell to a string."""
    return TableBlock(
        headers=tuple(str(header) for header in headers),
        rows=tuple(tuple(str(cell) for cell in row) for row in rows),
        title=title,
        name=name,
    )


def _key_string(key: object) -> str:
    """Deterministic string form of a mapping key for the payload."""
    if isinstance(key, str):
        return key
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, tuple):
        return ",".join(_key_string(part) for part in key)
    return str(key)


def to_jsonable(value: Any) -> Any:
    """Convert a result object into plain JSON-serializable data.

    Handles dataclasses (field by field), enums (by ``name``), mappings
    (keys stringified via :func:`_key_string`), sequences, and NumPy
    scalars/arrays (via ``item``/``tolist``); everything else must
    already be a JSON scalar.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {_key_string(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # NumPy scalar.
    if hasattr(value, "tolist"):
        return value.tolist()  # NumPy array.
    return str(value)


def nest_rows(
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    levels: Sequence[Sequence[str]],
    value: Optional[str] = None,
    value_columns: Optional[Sequence[str]] = None,
    key: Optional[Callable[[Any], Any]] = None,
) -> Dict[Any, Any]:
    """Pivot columnar rows into the historical nested-dict payload.

    ``levels`` names the key columns, outermost first; a single-column
    level keys on the cell itself, a multi-column level on the cell
    tuple, optionally passed through ``key`` (the payload renderer uses
    :func:`_key_string` here so serialized keys match the v1 layout).
    Leaves are the ``value`` column's cell, or -- when ``value`` is
    None -- a dict of the ``value_columns`` cells (default: every
    column not used as a level), in column order.
    """
    index = {name: position for position, name in enumerate(columns)}
    level_positions = [[index[name] for name in level] for level in levels]
    if value is not None:
        value_position = index[value]
        leaf_columns: List[Tuple[str, int]] = []
    else:
        value_position = -1
        used = {name for level in levels for name in level}
        if value_columns is None:
            value_columns = [name for name in columns if name not in used]
        leaf_columns = [(name, index[name]) for name in value_columns]
    root: Dict[Any, Any] = {}
    last = len(level_positions) - 1
    for row in rows:
        node = root
        for depth, positions in enumerate(level_positions):
            if len(positions) == 1:
                cell = row[positions[0]]
            else:
                cell = tuple(row[position] for position in positions)
            if key is not None:
                cell = key(cell)
            if depth == last:
                if value is not None:
                    node[cell] = row[value_position]
                else:
                    node[cell] = {
                        name: row[position] for name, position in leaf_columns
                    }
            else:
                node = node.setdefault(cell, {})
    return root


def _table_entries(blocks: Sequence[TableBlock]) -> List[Dict[str, Any]]:
    return [
        {
            "title": item.title,
            "name": item.name,
            "headers": list(item.headers),
            "rows": [list(row) for row in item.rows],
        }
        for item in blocks
    ]


def build_artifact(
    experiment: str,
    title: str,
    blocks: Sequence[TableBlock],
    payload: Any,
) -> Dict[str, Any]:
    """Assemble a legacy (v1) artifact from rendered blocks + payload.

    Kept for direct callers and tests; the orchestrator stores
    frame-native artifacts via :func:`build_frame_artifact`.
    """
    return {
        "schema": RENDERED_SCHEMA_VERSION,
        "experiment": experiment,
        "title": title,
        "tables": _table_entries(blocks),
        "payload": to_jsonable(payload),
    }


def build_frame_artifact(
    experiment: str,
    title: str,
    blocks: Sequence[TableBlock],
    result: Any,
) -> Dict[str, Any]:
    """Assemble the frame-native (v2) artifact of one experiment result.

    ``result`` is a :class:`repro.experiments.common.FrameResult`: its
    named frames are stored in their versioned columnar form, and the
    declarative payload spec (scalars carry their value; pivot entries
    describe how to rebuild the historical nested dict from a frame) is
    stored alongside so emission needs no driver code.
    """
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "experiment": experiment,
        "title": title,
        "tables": _table_entries(blocks),
        "primary": result.PRIMARY,
        "frames": result.serialized_frames(),
        "payload": result.payload_entries(),
    }


def rendered_payload(artifact: Mapping[str, Any]) -> Dict[str, Any]:
    """Render a v2 artifact's payload spec into the v1 nested dict."""
    payload: Dict[str, Any] = {}
    for entry in artifact["payload"]:
        if entry.get("frame") is None:
            payload[entry["name"]] = entry["value"]
        else:
            frame = artifact["frames"][entry["frame"]]
            payload[entry["name"]] = nest_rows(
                frame["columns"],
                frame["rows"],
                entry["levels"],
                entry.get("value"),
                entry.get("columns"),
                key=_key_string,
            )
    return payload


def rendered_artifact(artifact: Mapping[str, Any]) -> Dict[str, Any]:
    """The emitted (v1-layout) form of an artifact.

    v2 artifacts are lowered to the historical layout -- tables as
    stored, payload rendered from the frames -- so manifest JSON stays
    byte-identical across the frame-native refactor; v1 artifacts pass
    through unchanged.
    """
    if artifact.get("schema") != ARTIFACT_SCHEMA_VERSION:
        return dict(artifact)
    return {
        "schema": RENDERED_SCHEMA_VERSION,
        "experiment": artifact["experiment"],
        "title": artifact["title"],
        "tables": artifact["tables"],
        "payload": rendered_payload(artifact),
    }


def artifact_blocks(artifact: Dict[str, Any]) -> List[TableBlock]:
    """Reconstruct the table blocks of a (possibly disk-loaded) artifact."""
    return [
        TableBlock(
            headers=tuple(table["headers"]),
            rows=tuple(tuple(row) for row in table["rows"]),
            title=table.get("title"),
            name=table.get("name"),
        )
        for table in artifact["tables"]
    ]


def valid_artifact(artifact: Any, experiment: Optional[str] = None) -> bool:
    """Whether a value (e.g. loaded from disk) is a usable artifact.

    Accepts the stored frame-native schema (v2, validated down to each
    frame's columnar payload) and the rendered legacy layout (v1), so
    artifacts re-read from an emitted manifest still validate.
    """
    if not isinstance(artifact, dict):
        return False
    schema = artifact.get("schema")
    if schema not in (RENDERED_SCHEMA_VERSION, ARTIFACT_SCHEMA_VERSION):
        return False
    if experiment is not None and artifact.get("experiment") != experiment:
        return False
    tables = artifact.get("tables")
    if not isinstance(tables, list):
        return False
    for table in tables:
        if not isinstance(table, dict):
            return False
        if not isinstance(table.get("headers"), list):
            return False
        if not isinstance(table.get("rows"), list):
            return False
    if schema == ARTIFACT_SCHEMA_VERSION:
        from repro.api.frame import ResultFrame

        frames = artifact.get("frames")
        if not isinstance(frames, dict) or not isinstance(
            artifact.get("payload"), list
        ):
            return False
        for payload in frames.values():
            try:
                ResultFrame.from_payload(payload)
            except ValueError:
                return False
        return True
    return "payload" in artifact


def write_artifact_json(artifact: Dict[str, Any], path: str) -> None:
    """Emit an artifact as a pretty-printed JSON file.

    The serialization is deterministic for a given artifact (insertion
    order is preserved by both ``json.dump`` and a disk-store round
    trip), so cold and store-served runs emit identical bytes.  v2
    (frame-native) artifacts are lowered to the historical v1 layout
    first via :func:`rendered_artifact`.
    """
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(rendered_artifact(artifact), stream, indent=2)
        stream.write("\n")


def write_artifact_csv(artifact: Dict[str, Any], path: str) -> None:
    """Emit an artifact's tables as one CSV file.

    The artifact is lowered to columnar result frames
    (:func:`repro.api.frame.artifact_frames`) and emitted through the
    frame writer: single-table artifacts become a plain header+rows
    CSV; multi-table artifacts (``cmpsweep``) gain a leading ``table``
    column carrying each block's short name, with the shared header row
    emitted once when every block agrees on it and per block otherwise.
    The bytes are identical to the pre-frame writer (asserted in the
    test suite).
    """
    from repro.api.frame import artifact_frames, write_frames_csv

    write_frames_csv(artifact_frames(artifact), path)


def ensure_directory(path: str) -> None:
    """Create a manifest/output directory if it does not exist."""
    os.makedirs(path, exist_ok=True)
