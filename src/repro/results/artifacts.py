"""Experiment artifacts: the stored/emitted form of a result.

An *artifact* is the JSON-serializable distillation of one experiment
result: the rendered table blocks (exactly what the CLI prints) plus a
structured payload (the raw numbers, for plotting).  Artifacts are what
the content-addressed result store persists and what the manifest
directory emits as CSV+JSON, so a store hit reproduces the original
outputs bit for bit without re-running any simulation.

This module is dependency-free on purpose: the experiment drivers, the
store, and the orchestrator all import it without creating a layering
cycle.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Version of the artifact schema, folded into the result-store key so
#: a schema change invalidates stored entries instead of corrupting
#: readers.
ARTIFACT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TableBlock:
    """One rendered table of an experiment artifact.

    ``title`` is the human-readable block header (may span lines, shown
    by the CLI); ``name`` is a short machine-readable block label used
    as the leading CSV column of multi-table artifacts (e.g. the
    scenario name of a ``cmpsweep`` block).
    """

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[str, ...], ...]
    title: Optional[str] = None
    name: Optional[str] = None


def block(
    headers: Sequence[object],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    name: Optional[str] = None,
) -> TableBlock:
    """Build a :class:`TableBlock`, coercing every cell to a string."""
    return TableBlock(
        headers=tuple(str(header) for header in headers),
        rows=tuple(tuple(str(cell) for cell in row) for row in rows),
        title=title,
        name=name,
    )


def _key_string(key: object) -> str:
    """Deterministic string form of a mapping key for the payload."""
    if isinstance(key, str):
        return key
    if isinstance(key, enum.Enum):
        return key.name
    if isinstance(key, tuple):
        return ",".join(_key_string(part) for part in key)
    return str(key)


def to_jsonable(value: Any) -> Any:
    """Convert a result object into plain JSON-serializable data.

    Handles dataclasses (field by field), enums (by ``name``), mappings
    (keys stringified via :func:`_key_string`), sequences, and NumPy
    scalars/arrays (via ``item``/``tolist``); everything else must
    already be a JSON scalar.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        return {_key_string(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()  # NumPy scalar.
    if hasattr(value, "tolist"):
        return value.tolist()  # NumPy array.
    return str(value)


def build_artifact(
    experiment: str,
    title: str,
    blocks: Sequence[TableBlock],
    payload: Any,
) -> Dict[str, Any]:
    """Assemble the stored/emitted artifact of one experiment result."""
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "experiment": experiment,
        "title": title,
        "tables": [
            {
                "title": item.title,
                "name": item.name,
                "headers": list(item.headers),
                "rows": [list(row) for row in item.rows],
            }
            for item in blocks
        ],
        "payload": to_jsonable(payload),
    }


def artifact_blocks(artifact: Dict[str, Any]) -> List[TableBlock]:
    """Reconstruct the table blocks of a (possibly disk-loaded) artifact."""
    return [
        TableBlock(
            headers=tuple(table["headers"]),
            rows=tuple(tuple(row) for row in table["rows"]),
            title=table.get("title"),
            name=table.get("name"),
        )
        for table in artifact["tables"]
    ]


def valid_artifact(artifact: Any, experiment: Optional[str] = None) -> bool:
    """Whether a value (e.g. loaded from disk) is a usable artifact."""
    if not isinstance(artifact, dict):
        return False
    if artifact.get("schema") != ARTIFACT_SCHEMA_VERSION:
        return False
    if experiment is not None and artifact.get("experiment") != experiment:
        return False
    tables = artifact.get("tables")
    if not isinstance(tables, list):
        return False
    for table in tables:
        if not isinstance(table, dict):
            return False
        if not isinstance(table.get("headers"), list):
            return False
        if not isinstance(table.get("rows"), list):
            return False
    return "payload" in artifact


def write_artifact_json(artifact: Dict[str, Any], path: str) -> None:
    """Emit an artifact as a pretty-printed JSON file.

    The serialization is deterministic for a given artifact (insertion
    order is preserved by both ``json.dump`` and a disk-store round
    trip), so cold and store-served runs emit identical bytes.
    """
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(artifact, stream, indent=2)
        stream.write("\n")


def write_artifact_csv(artifact: Dict[str, Any], path: str) -> None:
    """Emit an artifact's tables as one CSV file.

    The artifact is lowered to columnar result frames
    (:func:`repro.api.frame.artifact_frames`) and emitted through the
    frame writer: single-table artifacts become a plain header+rows
    CSV; multi-table artifacts (``cmpsweep``) gain a leading ``table``
    column carrying each block's short name, with the shared header row
    emitted once when every block agrees on it and per block otherwise.
    The bytes are identical to the pre-frame writer (asserted in the
    test suite).
    """
    from repro.api.frame import artifact_frames, write_frames_csv

    write_frames_csv(artifact_frames(artifact), path)


def ensure_directory(path: str) -> None:
    """Create a manifest/output directory if it does not exist."""
    os.makedirs(path, exist_ok=True)
