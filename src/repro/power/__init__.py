"""Area, power, energy, and energy-delay models (McPAT/CACTI substitute).

The paper projects area and power with McPAT + CACTI at 40nm for a
Cortex-A9-class core (Table III) and evaluates chip-level power, energy
and energy-delay for the four CMP configurations (Figure 10).  This
subpackage provides:

* :mod:`repro.power.sram` -- a CACTI-like SRAM array model (area,
  leakage, per-access energy) calibrated against the Table III values,
* :mod:`repro.power.core_power` -- core-level area and power built from
  the front-end structures plus the (unchanged) rest of the core,
* :mod:`repro.power.cmp_power` -- CMP-level power, energy, and
  energy-delay for a workload run.
"""

from repro.power.sram import SramArray, sram_for_btb, sram_for_icache, sram_for_predictor
from repro.power.core_power import (
    CoreAreaPower,
    FrontEndAreaPower,
    core_area_power,
    frontend_area_power,
)
from repro.power.cmp_power import CmpEnergyResult, evaluate_cmp_energy

__all__ = [
    "SramArray",
    "sram_for_icache",
    "sram_for_predictor",
    "sram_for_btb",
    "FrontEndAreaPower",
    "CoreAreaPower",
    "frontend_area_power",
    "core_area_power",
    "CmpEnergyResult",
    "evaluate_cmp_energy",
]
