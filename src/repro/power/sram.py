"""CACTI-like SRAM array area and power model (40nm).

The model is deliberately simple -- area grows linearly with storage
bits plus a peripheral term, leakage grows with bits, and per-access
energy grows with the square root of the array size -- and its
coefficients are calibrated so the baseline and tailored front-end
structures land close to the absolute values the paper reports in
Table III (Cortex-A9 class, 40nm, McPAT + CACTI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Area per storage bit (mm^2) including cell and local wiring, 40nm.
AREA_PER_BIT_MM2 = 1.02e-6

#: Peripheral (decoder/sense-amp) area coefficient.
AREA_PERIPHERY_MM2 = 0.025

#: Reference array size used to normalise the periphery term.
_REFERENCE_BITS = 256 * 1024 * 8

#: Leakage power per storage bit (W), 40nm, high-performance cells.
LEAKAGE_PER_BIT_W = 1.6e-7

#: Per-access dynamic energy (nJ) of a reference 1KB array.
ENERGY_PER_ACCESS_BASE_NJ = 0.01

#: Reference size for the per-access energy scaling.
_ENERGY_REFERENCE_BITS = 8192


@dataclass(frozen=True)
class SramArray:
    """One SRAM structure (data plus tags/metadata)."""

    name: str
    storage_bits: int
    accesses_per_instruction: float

    @property
    def storage_kb(self) -> float:
        """Storage capacity in KB."""
        return self.storage_bits / 8192.0

    @property
    def area_mm2(self) -> float:
        """Array area in mm^2 at 40nm."""
        periphery = AREA_PERIPHERY_MM2 * math.sqrt(
            self.storage_bits / _REFERENCE_BITS
        )
        return AREA_PER_BIT_MM2 * self.storage_bits + periphery

    @property
    def leakage_w(self) -> float:
        """Static (leakage) power in watts."""
        return LEAKAGE_PER_BIT_W * self.storage_bits

    @property
    def energy_per_access_nj(self) -> float:
        """Dynamic energy of one access in nanojoules."""
        return ENERGY_PER_ACCESS_BASE_NJ * math.sqrt(
            self.storage_bits / _ENERGY_REFERENCE_BITS
        )

    def dynamic_power_w(self, instructions_per_second: float) -> float:
        """Dynamic power at a given instruction throughput."""
        accesses_per_second = self.accesses_per_instruction * instructions_per_second
        return accesses_per_second * self.energy_per_access_nj * 1e-9

    def power_w(self, instructions_per_second: float) -> float:
        """Total (leakage plus dynamic) power."""
        return self.leakage_w + self.dynamic_power_w(instructions_per_second)


def sram_for_icache(
    size_bytes: int, line_bytes: int, accesses_per_instruction: Optional[float] = None
) -> SramArray:
    """Model an instruction cache (data plus tag array).

    Wider lines halve the number of accesses per instruction because a
    fetched line feeds more sequential instructions before the next
    cache access (Section IV-C).
    """
    lines = size_bytes // line_bytes
    tag_bits_per_line = 24
    bits = size_bytes * 8 + lines * tag_bits_per_line
    if accesses_per_instruction is None:
        # Roughly one access per (line_bytes / 16) instructions of
        # sequential fetch for 4-byte instructions at ~75% usefulness.
        accesses_per_instruction = min(1.0, 16.0 / line_bytes * 4.0 * 0.33)
    return SramArray(
        name=f"icache-{size_bytes // 1024}KB-{line_bytes}B",
        storage_bits=bits,
        accesses_per_instruction=accesses_per_instruction,
    )


def sram_for_predictor(storage_bits: int, branch_fraction: float = 0.12) -> SramArray:
    """Model a branch predictor array (accessed once per branch)."""
    return SramArray(
        name=f"predictor-{storage_bits // 8192}KB",
        storage_bits=storage_bits,
        accesses_per_instruction=branch_fraction,
    )


def sram_for_btb(
    entries: int, entry_bits: int = 52, branch_fraction: float = 0.12
) -> SramArray:
    """Model a branch target buffer (accessed once per branch)."""
    return SramArray(
        name=f"btb-{entries}e",
        storage_bits=entries * entry_bits,
        accesses_per_instruction=branch_fraction,
    )
