"""Core-level area and power (the McPAT substitute, Table III).

A Cortex-A9-class core is modelled as its three front-end structures
(I-cache, branch predictor, BTB) plus a fixed "rest of the core" whose
area and power are calibrated so the baseline core reproduces the
paper's 2.49 mm^2 and 0.85 W totals at 40nm.  Only the front-end
changes between the baseline and tailored flavours, exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.frontend.configs import FrontEndConfig
from repro.power.sram import (
    SramArray,
    sram_for_btb,
    sram_for_icache,
    sram_for_predictor,
)
from repro.uarch.core import CoreModel

#: Area of everything outside the modelled front-end structures
#: (execution units, L1D, register files, TLBs, ...), 40nm.
REST_OF_CORE_AREA_MM2 = 1.92

#: Power of everything outside the modelled front-end structures when
#: the core is active.
REST_OF_CORE_POWER_W = 0.73

#: Nominal instruction throughput used to evaluate dynamic power (a
#: lean core at ~2 GHz and IPC close to 1).
NOMINAL_INSTRUCTIONS_PER_SECOND = 1.6e9

#: Fraction of active power a core still burns when idle (leakage plus
#: clock distribution).
IDLE_POWER_FRACTION = 0.35

#: Private L2 cache per core (area/power included in the CMP budget the
#: paper analyses: "cores and L2 caches").  The constants are the
#: paper's 256KB slice; other slice sizes scale through
#: :func:`l2_area_mm2` / :func:`l2_power_w`.
L2_REFERENCE_KB = 256
L2_AREA_MM2 = 1.10
L2_POWER_W = 0.12

#: Share of the reference L2 power that scales with capacity (leakage
#: and the data array); the rest (tags, control, bus) is treated as
#: size-independent.
_L2_CAPACITY_POWER_SHARE = 0.6


def l2_area_mm2(l2_kb: int = L2_REFERENCE_KB) -> float:
    """Area of one private L2 slice; SRAM area scales with capacity."""
    return L2_AREA_MM2 * (l2_kb / L2_REFERENCE_KB)


def l2_power_w(l2_kb: int = L2_REFERENCE_KB) -> float:
    """Power of one private L2 slice.

    The capacity-proportional share (leakage, data array) scales with
    the slice size; the fixed share does not.  At the reference 256KB
    this returns exactly :data:`L2_POWER_W`, keeping every existing
    Figure 10 result bit-identical.
    """
    ratio = l2_kb / L2_REFERENCE_KB
    return L2_POWER_W * (
        (1.0 - _L2_CAPACITY_POWER_SHARE) + _L2_CAPACITY_POWER_SHARE * ratio
    )


@dataclass(frozen=True)
class FrontEndAreaPower:
    """Area and power of the three front-end structures."""

    icache: SramArray
    predictor_bits: int
    btb_entries: int
    icache_area_mm2: float
    icache_power_w: float
    predictor_area_mm2: float
    predictor_power_w: float
    btb_area_mm2: float
    btb_power_w: float

    @property
    def total_area_mm2(self) -> float:
        """Combined front-end area."""
        return self.icache_area_mm2 + self.predictor_area_mm2 + self.btb_area_mm2

    @property
    def total_power_w(self) -> float:
        """Combined front-end power at nominal throughput."""
        return self.icache_power_w + self.predictor_power_w + self.btb_power_w

    def as_rows(self) -> Dict[str, Dict[str, float]]:
        """Per-structure area/power rows (for the Table III report)."""
        return {
            "I-cache": {"area_mm2": self.icache_area_mm2, "power_w": self.icache_power_w},
            "BP": {"area_mm2": self.predictor_area_mm2, "power_w": self.predictor_power_w},
            "BTB": {"area_mm2": self.btb_area_mm2, "power_w": self.btb_power_w},
        }


@dataclass(frozen=True)
class CoreAreaPower:
    """Total core area and power for one core flavour."""

    core_name: str
    frontend: FrontEndAreaPower
    rest_area_mm2: float = REST_OF_CORE_AREA_MM2
    rest_power_w: float = REST_OF_CORE_POWER_W

    @property
    def total_area_mm2(self) -> float:
        """Core area including the front-end."""
        return self.rest_area_mm2 + self.frontend.total_area_mm2

    @property
    def active_power_w(self) -> float:
        """Power while executing instructions."""
        return self.rest_power_w + self.frontend.total_power_w

    @property
    def idle_power_w(self) -> float:
        """Power while idle (leakage and clocking)."""
        return self.active_power_w * IDLE_POWER_FRACTION

    def area_with_l2_mm2(self) -> float:
        """Core plus its private L2 slice."""
        return self.total_area_mm2 + L2_AREA_MM2


def frontend_area_power(
    config: FrontEndConfig,
    instructions_per_second: float = NOMINAL_INSTRUCTIONS_PER_SECOND,
) -> FrontEndAreaPower:
    """Evaluate the area and power of one front-end configuration."""
    icache = sram_for_icache(config.icache.size_bytes, config.icache.line_bytes)
    predictor = config.predictor.build()
    predictor_array = sram_for_predictor(predictor.storage_bits())
    btb_array = sram_for_btb(config.btb.entries)
    return FrontEndAreaPower(
        icache=icache,
        predictor_bits=predictor.storage_bits(),
        btb_entries=config.btb.entries,
        icache_area_mm2=icache.area_mm2,
        icache_power_w=icache.power_w(instructions_per_second),
        predictor_area_mm2=predictor_array.area_mm2,
        predictor_power_w=predictor_array.power_w(instructions_per_second),
        btb_area_mm2=btb_array.area_mm2,
        btb_power_w=btb_array.power_w(instructions_per_second),
    )


def core_area_power(core: CoreModel) -> CoreAreaPower:
    """Evaluate total area and power of a core flavour."""
    return CoreAreaPower(
        core_name=core.name,
        frontend=frontend_area_power(core.frontend),
    )
