"""CMP-level power, energy, and energy-delay evaluation (Figure 10).

Following the paper, only the private resources (cores and their L2
slices) are accounted because the shared last-level cache and
interconnect are identical across configurations.  Power combines each
core's active power weighted by its busy time with its idle power for
the remainder of the run, plus the L2 slices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.core_power import (
    CoreAreaPower,
    core_area_power,
    l2_area_mm2,
    l2_power_w,
)
from repro.uarch.cmp import CmpConfig
from repro.uarch.simulator import CmpRunResult


@dataclass(frozen=True)
class CmpEnergyResult:
    """Execution time, power, energy, and ED product of one CMP run."""

    workload_name: str
    cmp_name: str
    execution_seconds: float
    average_power_w: float
    area_mm2: float

    @property
    def energy_j(self) -> float:
        """Total energy of the run."""
        return self.average_power_w * self.execution_seconds

    @property
    def energy_delay(self) -> float:
        """Energy-delay product."""
        return self.energy_j * self.execution_seconds


def cmp_area_mm2(cmp: CmpConfig, include_l2: bool = True) -> float:
    """Total private area of a CMP configuration.

    ``include_l2`` adds the per-core private L2 slices (the budget the
    power analysis accounts); the paper's "same area budget" argument
    for Asymmetric++ is made on core area alone, which is what
    ``include_l2=False`` returns.
    """
    area = 0.0
    l2_area = l2_area_mm2(cmp.l2_kb_per_core) if include_l2 else 0.0
    for core, count in cmp.worker_cores:
        core_budget = core_area_power(core)
        area += count * (core_budget.total_area_mm2 + l2_area)
    return area


def evaluate_cmp_energy(run: CmpRunResult) -> CmpEnergyResult:
    """Compute average power, energy, and ED product for one CMP run."""
    execution = run.execution_seconds
    if execution <= 0:
        raise ValueError("execution time must be positive")

    total_energy = 0.0
    l2_slice_power = l2_power_w(run.cmp.l2_kb_per_core)
    for activity in run.activities:
        budget: CoreAreaPower = core_area_power(activity.core)
        busy = min(activity.busy_seconds_per_core, execution)
        idle = execution - busy
        per_core_energy = budget.active_power_w * busy + budget.idle_power_w * idle
        l2_energy = l2_slice_power * execution
        total_energy += activity.count * (per_core_energy + l2_energy)

    return CmpEnergyResult(
        workload_name=run.workload_name,
        cmp_name=run.cmp.name,
        execution_seconds=execution,
        average_power_w=total_energy / execution,
        area_mm2=cmp_area_mm2(run.cmp),
    )
