"""Reproduction of "Rebalancing the Core Front-End through HPC Code Analysis".

(U. Milic, P. Carpenter, A. Rico, A. Ramirez -- IISWC 2016.)

The package is organised as a pipeline:

``repro.workloads``
    Synthetic models of the 29 HPC and 12 desktop applications the
    paper characterizes (substituting for the unavailable native
    binaries + Pin instrumentation).
``repro.trace``
    The program/trace substrate those models are built on.
``repro.analysis``
    Architecture-independent characterization (branch mix, bias,
    footprints, basic blocks -- Section III).
``repro.frontend``
    Branch predictors, BTB, and I-cache simulators plus the baseline
    and tailored front-end configurations (Section IV).
``repro.uarch``
    Core CPI and CMP execution-time models (the Sniper substitute,
    Section V).
``repro.power``
    Area/power/energy models (the McPAT + CACTI substitute).
``repro.experiments``
    One driver per paper table and figure.
``repro.api``
    The unified typed entry point: a :class:`~repro.api.Session` owns
    the runtime configuration (every ``REPRO_*`` knob, resolved once)
    and turns declarative plans into columnar result frames.

Quickstart::

    from repro.api import Session

    session = Session(instructions=200_000)
    frame = session.sweep(workloads=["FT"]).execute()
    print(frame.to_csv())
"""

__version__ = "1.0.0"

from repro import analysis, api, experiments, frontend, power, trace, uarch, workloads

__all__ = [
    "__version__",
    "api",
    "trace",
    "workloads",
    "analysis",
    "frontend",
    "uarch",
    "power",
    "experiments",
]
