"""Table I: backward versus forward taken branches per suite and section."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_bias import analyze_taken_directions
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Table1Result:
    """Per-suite, per-section backward-taken share."""

    instructions: int
    #: suite -> section -> fraction of taken branches that jump backward
    backward: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)

    def forward(self, suite: Suite, section: CodeSection) -> float:
        """Forward-taken share (complement of the backward share)."""
        return 1.0 - self.backward[suite][section]


def _workload_directions(args) -> Dict[CodeSection, float]:
    """Per-workload worker: backward-taken share of every section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_taken_directions(trace, section).backward_fraction
        for section in sections_for(spec)
    }


def run_table1(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Table1Result:
    """Regenerate the Table I data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    result = Table1Result(instructions=instructions)
    sweep = current_session().suite_sweep(
        _workload_directions, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section: Dict[CodeSection, List[float]] = {}
        for spec, fractions in zip(specs, rows):
            for section, backward in fractions.items():
                per_section.setdefault(section, []).append(backward)
        result.backward[suite] = {
            section: mean(values) for section, values in per_section.items()
        }
    return result


def tables_table1(result: Table1Result) -> List[TableBlock]:
    """Table I as table blocks (percent backward / forward per section)."""
    headers = ["suite", "serial backward", "serial forward", "parallel backward", "parallel forward"]
    rows = []
    for suite, sections in result.backward.items():
        if CodeSection.SERIAL in sections and CodeSection.PARALLEL in sections:
            serial = sections[CodeSection.SERIAL]
            parallel = sections[CodeSection.PARALLEL]
            rows.append([
                suite.label,
                f"{100 * serial:.0f}%", f"{100 * (1 - serial):.0f}%",
                f"{100 * parallel:.0f}%", f"{100 * (1 - parallel):.0f}%",
            ])
        else:
            total = sections[CodeSection.TOTAL]
            rows.append([
                suite.label,
                f"{100 * total:.0f}%", f"{100 * (1 - total):.0f}%", "-", "-",
            ])
    return [block(headers, rows)]


def format_table1(result: Table1Result) -> str:
    """Render Table I (percent backward / forward per code section)."""
    return render_blocks(tables_table1(result))


SPEC = ExperimentSpec(
    name="table1",
    title="Table I: backward versus forward taken branches per suite and section",
    runner=run_table1,
    tables=tables_table1,
    workloads=default_workload_names,
)
