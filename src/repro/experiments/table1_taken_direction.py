"""Table I: backward versus forward taken branches per suite and section."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_bias import analyze_taken_directions
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    mean,
    sections_for,
    suite_workloads,
    workload_trace,
)
from repro.trace.instruction import CodeSection
from repro.workloads.suites import SUITE_ORDER, Suite


@dataclass
class Table1Result:
    """Per-suite, per-section backward-taken share."""

    instructions: int
    #: suite -> section -> fraction of taken branches that jump backward
    backward: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)

    def forward(self, suite: Suite, section: CodeSection) -> float:
        """Forward-taken share (complement of the backward share)."""
        return 1.0 - self.backward[suite][section]


def run_table1(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    suites: Optional[Sequence[Suite]] = None,
) -> Table1Result:
    """Regenerate the Table I data."""
    result = Table1Result(instructions=instructions)
    for suite in suites or SUITE_ORDER:
        specs = suite_workloads(suites=[suite])
        per_section: Dict[CodeSection, List[float]] = {}
        for spec in specs:
            trace = workload_trace(spec, instructions)
            for section in sections_for(spec):
                split = analyze_taken_directions(trace, section)
                per_section.setdefault(section, []).append(split.backward_fraction)
        result.backward[suite] = {
            section: mean(values) for section, values in per_section.items()
        }
    return result


def format_table1(result: Table1Result) -> str:
    """Render Table I (percent backward / forward per code section)."""
    headers = ["suite", "serial backward", "serial forward", "parallel backward", "parallel forward"]
    rows = []
    for suite, sections in result.backward.items():
        if CodeSection.SERIAL in sections and CodeSection.PARALLEL in sections:
            serial = sections[CodeSection.SERIAL]
            parallel = sections[CodeSection.PARALLEL]
            rows.append([
                suite.label,
                f"{100 * serial:.0f}%", f"{100 * (1 - serial):.0f}%",
                f"{100 * parallel:.0f}%", f"{100 * (1 - parallel):.0f}%",
            ])
        else:
            total = sections[CodeSection.TOTAL]
            rows.append([
                suite.label,
                f"{100 * total:.0f}%", f"{100 * (1 - total):.0f}%", "-", "-",
            ])
    return format_table(headers, rows)
