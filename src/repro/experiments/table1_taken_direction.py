"""Table I: backward versus forward taken branches per suite and section."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_bias import analyze_taken_directions
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
    suite_cell,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _share_cell(value: Optional[float]) -> str:
    """Percent cell; desktop codes have no serial/parallel split."""
    return "-" if value is None else f"{100 * value:.0f}%"


@dataclass
class Table1Result(FrameResult):
    """Per-suite, per-section backward-taken share.

    Frames:

    ``sections`` (primary)
        One row per (suite, section): backward-taken share.
    ``table``
        One row per suite in Table I layout: serial/parallel backward
        shares (``None`` where a desktop code has no section split).
    """

    instructions: int
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "sections"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.pivot(
            "backward", "sections", [["suite"], ["section"]], value="backward"
        ),
    )
    VIEWS = (
        RowView(
            "table",
            (
                ("suite", "suite", suite_cell),
                ("serial_backward", "serial backward", _share_cell),
                ("serial_forward", "serial forward", _share_cell),
                ("parallel_backward", "parallel backward", _share_cell),
                ("parallel_forward", "parallel forward", _share_cell),
            ),
        ),
    )

    def forward(self, suite: Suite, section: CodeSection) -> float:
        """Forward-taken share (complement of the backward share)."""
        return 1.0 - self.backward[suite][section]


def _workload_directions(args) -> Dict[CodeSection, float]:
    """Per-workload worker: backward-taken share of every section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_taken_directions(trace, section).backward_fraction
        for section in sections_for(spec)
    }


def run_table1(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Table1Result:
    """Regenerate the Table I data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    section_rows: List[tuple] = []
    table_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_directions, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section: Dict[CodeSection, List[float]] = {}
        for spec, fractions in zip(specs, rows):
            for section, backward in fractions.items():
                per_section.setdefault(section, []).append(backward)
        averages = {
            section: mean(values) for section, values in per_section.items()
        }
        for section, backward in averages.items():
            section_rows.append((suite, section, backward))
        if CodeSection.SERIAL in averages and CodeSection.PARALLEL in averages:
            serial = averages[CodeSection.SERIAL]
            parallel = averages[CodeSection.PARALLEL]
            table_rows.append((suite, serial, 1 - serial, parallel, 1 - parallel))
        else:
            total = averages[CodeSection.TOTAL]
            table_rows.append((suite, total, 1 - total, None, None))
    return Table1Result(
        instructions=instructions,
        frames={
            "sections": ResultFrame.from_rows(
                ["suite", "section", "backward"], section_rows
            ),
            "table": ResultFrame.from_rows(
                [
                    "suite",
                    "serial_backward",
                    "serial_forward",
                    "parallel_backward",
                    "parallel_forward",
                ],
                table_rows,
            ),
        },
    )


def tables_table1(result: Table1Result) -> List[TableBlock]:
    """Table I as table blocks (percent backward / forward per section)."""
    return result.tables()


def format_table1(result: Table1Result) -> str:
    """Render Table I (percent backward / forward per code section)."""
    return render_blocks(result.tables())


SPEC = ExperimentSpec(
    name="table1",
    title="Table I: backward versus forward taken branches per suite and section",
    runner=run_table1,
    tables=tables_table1,
    workloads=default_workload_names,
)
