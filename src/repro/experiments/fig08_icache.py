"""Figure 8: I-cache MPKI for different sizes and associativities (64B lines)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    PivotView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    render_blocks,
    suite_cell,
)
from repro.frontend.simulation import simulate_icache
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _workload_mpki(args) -> Dict[Tuple[int, int], float]:
    """Per-workload worker: every I-cache geometry on one trace."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    return {
        (size_kb, associativity): simulate_icache(
            trace,
            size_bytes=size_kb * 1024,
            line_bytes=LINE_BYTES,
            associativity=associativity,
        ).mpki
        for size_kb, associativity in geometries
    }

#: The nine I-cache geometries of Figure 8: size (KB) x associativity,
#: with the paper's fixed 64-byte lines.
ICACHE_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (size_kb, associativity)
    for size_kb in (8, 16, 32)
    for associativity in (2, 4, 8)
)

LINE_BYTES = 64


@dataclass
class Fig08Result(FrameResult):
    """I-cache MPKI per (suite, geometry).

    Frames:

    ``suites`` (primary)
        One row per (suite, size KB, ways): suite-average MPKI.
    ``workloads``
        One row per (workload, size KB, ways): MPKI.
    """

    instructions: int
    geometries: List[Tuple[int, int]] = field(
        default_factory=lambda: list(ICACHE_GEOMETRIES)
    )
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "suites"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("geometries"),
        PayloadField.pivot(
            "mpki", "suites", [["suite"], ["size_kb", "ways"]], value="mpki"
        ),
        PayloadField.pivot(
            "per_workload",
            "workloads",
            [["workload"], ["size_kb", "ways"]],
            value="mpki",
        ),
    )
    VIEWS = (
        PivotView(
            frame="suites",
            index=(("suite", "suite", suite_cell),),
            key=("size_kb", "ways"),
            value="mpki",
            header=lambda key: f"{key[0]}KB/{key[1]}w",
            cell=fixed(2),
        ),
    )


def run_fig08(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig08Result:
    """Regenerate the Figure 8 data."""
    instructions = experiment_instructions(instructions)
    geometries = list(geometries or ICACHE_GEOMETRIES)
    suite_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, geometries), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_geometry: Dict[Tuple[int, int], List[float]] = {g: [] for g in geometries}
        for spec, row in zip(specs, rows):
            for geometry, mpki in row.items():
                workload_rows.append((spec.name, *geometry, mpki))
                per_geometry[geometry].append(mpki)
        for geometry in geometries:
            suite_rows.append((suite, *geometry, mean(per_geometry[geometry])))
    return Fig08Result(
        instructions=instructions,
        geometries=geometries,
        frames={
            "suites": ResultFrame.from_rows(
                ["suite", "size_kb", "ways", "mpki"], suite_rows
            ),
            "workloads": ResultFrame.from_rows(
                ["workload", "size_kb", "ways", "mpki"], workload_rows
            ),
        },
    )


def tables_fig08(result: Fig08Result) -> List[TableBlock]:
    """Figure 8 bars as table blocks (MPKI)."""
    return result.tables()


def format_fig08(result: Fig08Result) -> str:
    """Render the Figure 8 bars as a table (MPKI)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the I-cache geometry grid Figure 8 sweeps."""
    return {
        "geometries": [list(geometry) for geometry in ICACHE_GEOMETRIES],
        "line_bytes": LINE_BYTES,
    }


SPEC = ExperimentSpec(
    name="fig8",
    title="Figure 8: I-cache MPKI for different sizes and associativities",
    runner=run_fig08,
    tables=tables_fig08,
    workloads=default_workload_names,
    constants=_constants,
)
