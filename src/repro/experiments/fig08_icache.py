"""Figure 8: I-cache MPKI for different sizes and associativities (64B lines)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
)
from repro.frontend.simulation import simulate_icache
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _workload_mpki(args) -> Dict[Tuple[int, int], float]:
    """Per-workload worker: every I-cache geometry on one trace."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    return {
        (size_kb, associativity): simulate_icache(
            trace,
            size_bytes=size_kb * 1024,
            line_bytes=LINE_BYTES,
            associativity=associativity,
        ).mpki
        for size_kb, associativity in geometries
    }

#: The nine I-cache geometries of Figure 8: size (KB) x associativity,
#: with the paper's fixed 64-byte lines.
ICACHE_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (size_kb, associativity)
    for size_kb in (8, 16, 32)
    for associativity in (2, 4, 8)
)

LINE_BYTES = 64


@dataclass
class Fig08Result:
    """I-cache MPKI per (suite, geometry)."""

    instructions: int
    geometries: List[Tuple[int, int]] = field(default_factory=lambda: list(ICACHE_GEOMETRIES))
    #: suite -> (size KB, associativity) -> MPKI
    mpki: Dict[Suite, Dict[Tuple[int, int], float]] = field(default_factory=dict)
    #: benchmark -> (size KB, associativity) -> MPKI
    per_workload: Dict[str, Dict[Tuple[int, int], float]] = field(default_factory=dict)


def run_fig08(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig08Result:
    """Regenerate the Figure 8 data."""
    instructions = experiment_instructions(instructions)
    geometries = list(geometries or ICACHE_GEOMETRIES)
    result = Fig08Result(instructions=instructions, geometries=geometries)
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, geometries), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_geometry: Dict[Tuple[int, int], List[float]] = {g: [] for g in geometries}
        for spec, row in zip(specs, rows):
            result.per_workload[spec.name] = row
            for geometry, mpki in row.items():
                per_geometry[geometry].append(mpki)
        result.mpki[suite] = {g: mean(v) for g, v in per_geometry.items()}
    return result


def tables_fig08(result: Fig08Result) -> List[TableBlock]:
    """Figure 8 bars as table blocks (MPKI)."""
    headers = ["suite"] + [f"{kb}KB/{a}w" for kb, a in result.geometries]
    rows = []
    for suite, values in result.mpki.items():
        rows.append(
            [suite.label] + [f"{values[g]:.2f}" for g in result.geometries]
        )
    return [block(headers, rows)]


def format_fig08(result: Fig08Result) -> str:
    """Render the Figure 8 bars as a table (MPKI)."""
    return render_blocks(tables_fig08(result))


def _constants() -> Dict[str, object]:
    """Key material: the I-cache geometry grid Figure 8 sweeps."""
    return {
        "geometries": [list(geometry) for geometry in ICACHE_GEOMETRIES],
        "line_bytes": LINE_BYTES,
    }


SPEC = ExperimentSpec(
    name="fig8",
    title="Figure 8: I-cache MPKI for different sizes and associativities",
    runner=run_fig08,
    tables=tables_fig08,
    workloads=default_workload_names,
    constants=_constants,
)
