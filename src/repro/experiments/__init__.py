"""Experiment drivers: one module per table and figure of the paper.

Every module exposes a ``run_*`` function that regenerates the data of
the corresponding table or figure (per-suite or per-benchmark rows and
series), a ``tables_*`` helper that distils the result into the table
blocks the CLI prints and the manifest emits as CSV/JSON, a ``format_*``
helper rendering those blocks as text, and a module-level ``SPEC`` --
the :class:`~repro.results.spec.ExperimentSpec` the orchestrator
(:mod:`repro.results.orchestrator`) registers the driver behind.  The
benchmark harness under ``benchmarks/`` simply calls these functions,
so the mapping from paper artefact to code is one-to-one.
"""

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    clear_trace_cache,
    default_workload_names,
    normalize_to_reference,
    parallel_map,
    render_blocks,
    suite_workloads,
    trace_cache_info,
)
from repro.experiments.fig01_branch_mix import run_fig01, tables_fig01, format_fig01
from repro.experiments.fig02_branch_bias import run_fig02, tables_fig02, format_fig02
from repro.experiments.table1_taken_direction import (
    run_table1,
    tables_table1,
    format_table1,
)
from repro.experiments.fig03_footprint import run_fig03, tables_fig03, format_fig03
from repro.experiments.fig04_basic_blocks import run_fig04, tables_fig04, format_fig04
from repro.experiments.table2_predictor_budgets import (
    run_table2,
    tables_table2,
    format_table2,
)
from repro.experiments.fig05_branch_mpki import run_fig05, tables_fig05, format_fig05
from repro.experiments.fig06_mpki_breakdown import run_fig06, tables_fig06, format_fig06
from repro.experiments.fig07_btb import run_fig07, tables_fig07, format_fig07
from repro.experiments.fig08_icache import run_fig08, tables_fig08, format_fig08
from repro.experiments.fig09_icache_lines import run_fig09, tables_fig09, format_fig09
from repro.experiments.table3_area_power import run_table3, tables_table3, format_table3
from repro.experiments.fig10_cmp_configs import run_fig10, tables_fig10, format_fig10
from repro.experiments.fig11_per_benchmark_time import (
    run_fig11,
    tables_fig11,
    format_fig11,
)
from repro.experiments.cmp_sweep import run_cmpsweep, tables_cmpsweep, format_cmpsweep
from repro.experiments.explore_presets import (
    run_explore_preset,
    run_explore_frontend,
    run_explore_smoke,
    run_explore_cmp,
    tables_explore,
    format_explore,
)

__all__ = [
    "DEFAULT_EXPERIMENT_INSTRUCTIONS",
    "default_workload_names",
    "suite_workloads",
    "clear_trace_cache",
    "trace_cache_info",
    "normalize_to_reference",
    "parallel_map",
    "render_blocks",
    "run_fig01",
    "tables_fig01",
    "format_fig01",
    "run_fig02",
    "tables_fig02",
    "format_fig02",
    "run_table1",
    "tables_table1",
    "format_table1",
    "run_fig03",
    "tables_fig03",
    "format_fig03",
    "run_fig04",
    "tables_fig04",
    "format_fig04",
    "run_table2",
    "tables_table2",
    "format_table2",
    "run_fig05",
    "tables_fig05",
    "format_fig05",
    "run_fig06",
    "tables_fig06",
    "format_fig06",
    "run_fig07",
    "tables_fig07",
    "format_fig07",
    "run_fig08",
    "tables_fig08",
    "format_fig08",
    "run_fig09",
    "tables_fig09",
    "format_fig09",
    "run_table3",
    "tables_table3",
    "format_table3",
    "run_fig10",
    "tables_fig10",
    "format_fig10",
    "run_fig11",
    "tables_fig11",
    "format_fig11",
    "run_cmpsweep",
    "tables_cmpsweep",
    "format_cmpsweep",
    "run_explore_preset",
    "run_explore_frontend",
    "run_explore_smoke",
    "run_explore_cmp",
    "tables_explore",
    "format_explore",
]
