"""Experiment drivers: one module per table and figure of the paper.

Every module exposes a ``run_*`` function that regenerates the data of
the corresponding table or figure (per-suite or per-benchmark rows and
series), plus a ``format_*`` helper that renders the result as the same
kind of rows the paper reports.  The benchmark harness under
``benchmarks/`` simply calls these functions, so the mapping from paper
artefact to code is one-to-one (see DESIGN.md's experiment index).
"""

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    clear_trace_cache,
    normalize_to_reference,
    parallel_map,
    run_sweep,
    suite_workloads,
    trace_cache_info,
    workload_trace,
)
from repro.experiments.fig01_branch_mix import run_fig01, format_fig01
from repro.experiments.fig02_branch_bias import run_fig02, format_fig02
from repro.experiments.table1_taken_direction import run_table1, format_table1
from repro.experiments.fig03_footprint import run_fig03, format_fig03
from repro.experiments.fig04_basic_blocks import run_fig04, format_fig04
from repro.experiments.table2_predictor_budgets import run_table2, format_table2
from repro.experiments.fig05_branch_mpki import run_fig05, format_fig05
from repro.experiments.fig06_mpki_breakdown import run_fig06, format_fig06
from repro.experiments.fig07_btb import run_fig07, format_fig07
from repro.experiments.fig08_icache import run_fig08, format_fig08
from repro.experiments.fig09_icache_lines import run_fig09, format_fig09
from repro.experiments.table3_area_power import run_table3, format_table3
from repro.experiments.fig10_cmp_configs import run_fig10, format_fig10
from repro.experiments.fig11_per_benchmark_time import run_fig11, format_fig11
from repro.experiments.cmp_sweep import run_cmpsweep, format_cmpsweep

__all__ = [
    "DEFAULT_EXPERIMENT_INSTRUCTIONS",
    "suite_workloads",
    "workload_trace",
    "clear_trace_cache",
    "trace_cache_info",
    "normalize_to_reference",
    "parallel_map",
    "run_sweep",
    "run_fig01", "format_fig01",
    "run_fig02", "format_fig02",
    "run_table1", "format_table1",
    "run_fig03", "format_fig03",
    "run_fig04", "format_fig04",
    "run_table2", "format_table2",
    "run_fig05", "format_fig05",
    "run_fig06", "format_fig06",
    "run_fig07", "format_fig07",
    "run_fig08", "format_fig08",
    "run_fig09", "format_fig09",
    "run_table3", "format_table3",
    "run_fig10", "format_fig10",
    "run_fig11", "format_fig11",
    "run_cmpsweep", "format_cmpsweep",
]
