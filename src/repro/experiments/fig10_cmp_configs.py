"""Figure 10: normalized execution time, power, energy, and ED per CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    mean,
    suite_workloads,
)
from repro.power.cmp_power import evaluate_cmp_energy
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.synthesis import build_workload

#: Metrics reported by Figure 10, in subplot order.
FIG10_METRICS = ("execution time", "power", "energy", "energy-delay")


@dataclass
class Fig10Result:
    """Normalized metrics per (suite, CMP configuration)."""

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    #: suite -> metric -> cmp name -> value normalized to the Baseline CMP
    normalized: Dict[Suite, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    #: benchmark -> metric -> cmp name -> normalized value
    per_workload: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)


def _evaluate_workload(
    spec, instructions: int, cmps: Sequence[CmpConfig]
) -> Dict[str, Dict[str, float]]:
    """Normalized metrics of one workload on every CMP configuration."""
    workload = build_workload(spec)
    profile = profile_workload_frontend(workload, instructions)
    absolute: Dict[str, Dict[str, float]] = {metric: {} for metric in FIG10_METRICS}
    for cmp in cmps:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        absolute["execution time"][cmp.name] = run.execution_seconds
        absolute["power"][cmp.name] = energy.average_power_w
        absolute["energy"][cmp.name] = energy.energy_j
        absolute["energy-delay"][cmp.name] = energy.energy_delay
    baseline_name = cmps[0].name
    normalized: Dict[str, Dict[str, float]] = {}
    for metric, values in absolute.items():
        reference = values[baseline_name]
        normalized[metric] = {
            name: (value / reference if reference else 0.0)
            for name, value in values.items()
        }
    return normalized


def run_fig10(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    suites: Optional[Sequence[Suite]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
) -> Fig10Result:
    """Regenerate the Figure 10 data."""
    result = Fig10Result(
        instructions=instructions, cmp_names=[cmp.name for cmp in cmps]
    )
    for suite in suites or SUITE_ORDER:
        specs = suite_workloads(suites=[suite])
        per_metric: Dict[str, Dict[str, List[float]]] = {
            metric: {cmp.name: [] for cmp in cmps} for metric in FIG10_METRICS
        }
        for spec in specs:
            normalized = _evaluate_workload(spec, instructions, cmps)
            result.per_workload[spec.name] = normalized
            for metric in FIG10_METRICS:
                for cmp in cmps:
                    per_metric[metric][cmp.name].append(normalized[metric][cmp.name])
        result.normalized[suite] = {
            metric: {name: mean(values) for name, values in by_cmp.items()}
            for metric, by_cmp in per_metric.items()
        }
    return result


def format_fig10(result: Fig10Result) -> str:
    """Render the Figure 10 bars as a table (normalized to Baseline CMP)."""
    headers = ["suite", "metric"] + result.cmp_names
    rows = []
    for suite, metrics in result.normalized.items():
        for metric in FIG10_METRICS:
            rows.append(
                [suite.label, metric]
                + [f"{metrics[metric][name]:.3f}" for name in result.cmp_names]
            )
    return format_table(headers, rows)
