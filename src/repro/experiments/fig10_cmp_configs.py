"""Figure 10: normalized execution time, power, energy, and ED per CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    normalize_to_reference,
    render_blocks,
    suite_cell,
)
from repro.power.cmp_power import evaluate_cmp_energy
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp
from repro.workloads.suites import Suite

#: Metrics reported by Figure 10, in subplot order.
FIG10_METRICS = ("execution time", "power", "energy", "energy-delay")


@dataclass
class Fig10Result(FrameResult):
    """Normalized metrics per (suite, CMP configuration).

    Frames:

    ``suites`` (primary)
        One row per (suite, metric): per-CMP values normalized to the
        Baseline CMP (suite average).
    ``workloads``
        One row per (workload, metric): per-CMP normalized values.
    """

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "suites"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("cmp_names"),
        PayloadField.pivot("normalized", "suites", [["suite"], ["metric"]]),
        PayloadField.pivot("per_workload", "workloads", [["workload"], ["metric"]]),
    )

    def views(self) -> Sequence[RowView]:
        return (
            RowView(
                "suites",
                (("suite", "suite", suite_cell), ("metric", "metric", str))
                + tuple((name, name, fixed(3)) for name in self.cmp_names),
            ),
        )


def _evaluate_workload(args) -> Dict[str, Dict[str, float]]:
    """Per-workload worker: normalized metrics on every CMP configuration.

    The front-end profile comes from the shared trace/profile caches
    (see :func:`repro.uarch.simulator.profile_workload_frontend`), so a
    warm in-process run re-simulates nothing.
    """
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    absolute: Dict[str, Dict[str, float]] = {metric: {} for metric in FIG10_METRICS}
    for cmp in cmps:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        absolute["execution time"][cmp.name] = run.execution_seconds
        absolute["power"][cmp.name] = energy.average_power_w
        absolute["energy"][cmp.name] = energy.energy_j
        absolute["energy-delay"][cmp.name] = energy.energy_delay
    baseline_name = cmps[0].name
    return {
        metric: normalize_to_reference(values, baseline_name)
        for metric, values in absolute.items()
    }


def run_fig10(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig10Result:
    """Regenerate the Figure 10 data.

    The per-workload evaluation (trace, front-end profile, all CMP
    runs) goes through the current session's sweep engine;
    ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    cmps = tuple(cmps)
    names = [cmp.name for cmp in cmps]
    suite_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _evaluate_workload, (instructions, cmps), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_metric: Dict[str, Dict[str, List[float]]] = {
            metric: {name: [] for name in names} for metric in FIG10_METRICS
        }
        for spec, normalized in zip(specs, rows):
            for metric in FIG10_METRICS:
                workload_rows.append(
                    (spec.name, metric)
                    + tuple(normalized[metric][name] for name in names)
                )
                for name in names:
                    per_metric[metric][name].append(normalized[metric][name])
        for metric in FIG10_METRICS:
            suite_rows.append(
                (suite, metric)
                + tuple(mean(per_metric[metric][name]) for name in names)
            )
    return Fig10Result(
        instructions=instructions,
        cmp_names=names,
        frames={
            "suites": ResultFrame.from_rows(["suite", "metric", *names], suite_rows),
            "workloads": ResultFrame.from_rows(
                ["workload", "metric", *names], workload_rows
            ),
        },
    )


def tables_fig10(result: Fig10Result) -> List[TableBlock]:
    """Figure 10 bars as table blocks (normalized to Baseline CMP)."""
    return result.tables()


def format_fig10(result: Fig10Result) -> str:
    """Render the Figure 10 bars as a table (normalized to Baseline CMP)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the four Section V chips and reported metrics."""
    return {
        "cmp_names": [cmp.name for cmp in STANDARD_CMP_CONFIGS],
        "metrics": list(FIG10_METRICS),
    }


SPEC = ExperimentSpec(
    name="fig10",
    title="Figure 10: normalized execution time, power, energy, and ED per CMP",
    runner=run_fig10,
    tables=tables_fig10,
    workloads=default_workload_names,
    constants=_constants,
)
