"""Figure 3: static and 99%-dynamic instruction footprints per suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.footprint import FootprintResult, analyze_footprint
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    render_blocks,
    section_cell,
    sections_for,
    suite_cell,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig03Result(FrameResult):
    """Per-suite, per-section footprints in KB.

    Frames:

    ``sections`` (primary)
        One row per (suite, section): static and 99%-dynamic KB.
    ``workloads``
        One row per workload: its total-section footprints.
    """

    instructions: int
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "sections"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.pivot(
            "static_kb", "sections", [["suite"], ["section"]], value="static_kb"
        ),
        PayloadField.pivot(
            "dynamic99_kb", "sections", [["suite"], ["section"]], value="dynamic99_kb"
        ),
        PayloadField.pivot(
            "per_workload_static_kb", "workloads", [["workload"]], value="static_kb"
        ),
        PayloadField.pivot(
            "per_workload_dynamic99_kb",
            "workloads",
            [["workload"]],
            value="dynamic99_kb",
        ),
    )
    VIEWS = (
        RowView(
            "sections",
            (
                ("suite", "suite", suite_cell),
                ("section", "section", section_cell),
                ("static_kb", "static [KB]", fixed(0)),
                ("dynamic99_kb", "99% dynamic [KB]", fixed(1)),
            ),
        ),
    )


def _workload_footprints(args) -> Dict[CodeSection, FootprintResult]:
    """Per-workload worker: footprint of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_footprint(trace, section) for section in sections_for(spec)
    }


def run_fig03(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig03Result:
    """Regenerate the Figure 3 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    section_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_footprints, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        static: Dict[CodeSection, List[float]] = {}
        dynamic: Dict[CodeSection, List[float]] = {}
        for spec, footprints in zip(specs, rows):
            for section, footprint in footprints.items():
                static.setdefault(section, []).append(footprint.static_kb)
                dynamic.setdefault(section, []).append(footprint.dynamic_footprint_kb)
                if section is CodeSection.TOTAL:
                    workload_rows.append(
                        (spec.name, footprint.static_kb, footprint.dynamic_footprint_kb)
                    )
        for section in static:
            section_rows.append(
                (suite, section, mean(static[section]), mean(dynamic[section]))
            )
    return Fig03Result(
        instructions=instructions,
        frames={
            "sections": ResultFrame.from_rows(
                ["suite", "section", "static_kb", "dynamic99_kb"], section_rows
            ),
            "workloads": ResultFrame.from_rows(
                ["workload", "static_kb", "dynamic99_kb"], workload_rows
            ),
        },
    )


def tables_fig03(result: Fig03Result) -> List[TableBlock]:
    """Figure 3 bars as table blocks (KB)."""
    return result.tables()


def format_fig03(result: Fig03Result) -> str:
    """Render the Figure 3 bars as a table (KB)."""
    return render_blocks(result.tables())


SPEC = ExperimentSpec(
    name="fig3",
    title="Figure 3: static and 99%-dynamic instruction footprints per suite",
    runner=run_fig03,
    tables=tables_fig03,
    workloads=default_workload_names,
)
