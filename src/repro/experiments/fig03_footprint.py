"""Figure 3: static and 99%-dynamic instruction footprints per suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.footprint import analyze_footprint
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    mean,
    sections_for,
    suite_workloads,
    workload_trace,
)
from repro.trace.instruction import CodeSection
from repro.workloads.suites import SUITE_ORDER, Suite


@dataclass
class Fig03Result:
    """Per-suite, per-section footprints in KB."""

    instructions: int
    static_kb: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    dynamic99_kb: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    per_workload_static_kb: Dict[str, float] = field(default_factory=dict)
    per_workload_dynamic99_kb: Dict[str, float] = field(default_factory=dict)


def run_fig03(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    suites: Optional[Sequence[Suite]] = None,
) -> Fig03Result:
    """Regenerate the Figure 3 data."""
    result = Fig03Result(instructions=instructions)
    for suite in suites or SUITE_ORDER:
        specs = suite_workloads(suites=[suite])
        static: Dict[CodeSection, List[float]] = {}
        dynamic: Dict[CodeSection, List[float]] = {}
        for spec in specs:
            trace = workload_trace(spec, instructions)
            for section in sections_for(spec):
                footprint = analyze_footprint(trace, section)
                static.setdefault(section, []).append(footprint.static_kb)
                dynamic.setdefault(section, []).append(footprint.dynamic_footprint_kb)
                if section is CodeSection.TOTAL:
                    result.per_workload_static_kb[spec.name] = footprint.static_kb
                    result.per_workload_dynamic99_kb[spec.name] = (
                        footprint.dynamic_footprint_kb
                    )
        result.static_kb[suite] = {s: mean(v) for s, v in static.items()}
        result.dynamic99_kb[suite] = {s: mean(v) for s, v in dynamic.items()}
    return result


def format_fig03(result: Fig03Result) -> str:
    """Render the Figure 3 bars as a table (KB)."""
    headers = ["suite", "section", "static [KB]", "99% dynamic [KB]"]
    rows = []
    for suite, sections in result.static_kb.items():
        for section, static_kb in sections.items():
            rows.append([
                suite.label,
                section.label,
                f"{static_kb:.0f}",
                f"{result.dynamic99_kb[suite][section]:.1f}",
            ])
    return format_table(headers, rows)
