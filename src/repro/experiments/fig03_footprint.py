"""Figure 3: static and 99%-dynamic instruction footprints per suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.footprint import FootprintResult, analyze_footprint
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig03Result:
    """Per-suite, per-section footprints in KB."""

    instructions: int
    static_kb: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    dynamic99_kb: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    per_workload_static_kb: Dict[str, float] = field(default_factory=dict)
    per_workload_dynamic99_kb: Dict[str, float] = field(default_factory=dict)


def _workload_footprints(args) -> Dict[CodeSection, FootprintResult]:
    """Per-workload worker: footprint of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_footprint(trace, section) for section in sections_for(spec)
    }


def run_fig03(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig03Result:
    """Regenerate the Figure 3 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    result = Fig03Result(instructions=instructions)
    sweep = current_session().suite_sweep(
        _workload_footprints, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        static: Dict[CodeSection, List[float]] = {}
        dynamic: Dict[CodeSection, List[float]] = {}
        for spec, footprints in zip(specs, rows):
            for section, footprint in footprints.items():
                static.setdefault(section, []).append(footprint.static_kb)
                dynamic.setdefault(section, []).append(footprint.dynamic_footprint_kb)
                if section is CodeSection.TOTAL:
                    result.per_workload_static_kb[spec.name] = footprint.static_kb
                    result.per_workload_dynamic99_kb[spec.name] = (
                        footprint.dynamic_footprint_kb
                    )
        result.static_kb[suite] = {s: mean(v) for s, v in static.items()}
        result.dynamic99_kb[suite] = {s: mean(v) for s, v in dynamic.items()}
    return result


def tables_fig03(result: Fig03Result) -> List[TableBlock]:
    """Figure 3 bars as table blocks (KB)."""
    headers = ["suite", "section", "static [KB]", "99% dynamic [KB]"]
    rows = []
    for suite, sections in result.static_kb.items():
        for section, static_kb in sections.items():
            rows.append([
                suite.label,
                section.label,
                f"{static_kb:.0f}",
                f"{result.dynamic99_kb[suite][section]:.1f}",
            ])
    return [block(headers, rows)]


def format_fig03(result: Fig03Result) -> str:
    """Render the Figure 3 bars as a table (KB)."""
    return render_blocks(tables_fig03(result))


SPEC = ExperimentSpec(
    name="fig3",
    title="Figure 3: static and 99%-dynamic instruction footprints per suite",
    runner=run_fig03,
    tables=tables_fig03,
    workloads=default_workload_names,
)
