"""The preset exploration grids as registered experiments.

Surfaces the three :data:`~repro.explore.grid.GRID_PRESETS`
(``frontend``, ``smoke``, ``cmp``) behind the uniform
:class:`~repro.results.spec.ExperimentSpec` interface, so
``repro-frontend all`` regenerates them alongside the paper tables and
the results service can address a warm exploration by registry name
(``explore-frontend``/``explore-smoke``/``explore-cmp``).

The runner is a thin shim over :meth:`repro.api.session.Session.explore`
-- the same chunked, content-addressed execution path interactive
``Session.explore`` calls use -- so an exploration computed through
either entry point warms the other: the per-chunk store entries are
shared, and the registered experiment merely adds the assembled
grid/pareto/sensitivity artifact under its own orchestrator key.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional

from repro.api.session import Session, current_session
from repro.experiments.common import experiment_instructions, render_blocks
from repro.explore.grid import GRID_PRESETS, get_grid
from repro.explore.plan import (
    DEFAULT_EXPLORE_WORKLOADS,
    DEFAULT_OBJECTIVES,
    ExploreResult,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection

#: Registry names are the preset names under this prefix.
EXPLORE_EXPERIMENT_PREFIX = "explore-"


def preset_experiment_name(preset: str) -> str:
    """Registry name of one preset exploration (``explore-<preset>``)."""
    if preset not in GRID_PRESETS:
        known = ", ".join(sorted(GRID_PRESETS))
        raise KeyError(f"unknown grid preset {preset!r}; expected one of {known}")
    return EXPLORE_EXPERIMENT_PREFIX + preset


def run_explore_preset(
    preset: str,
    instructions: Optional[int] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> ExploreResult:
    """Run one preset exploration over the default workload mix.

    Executes through the current session's :meth:`~repro.api.session.
    Session.explore` plan (chunked, store-backed, journaled), deriving
    a parallel session when the orchestrator asks for ``run_parallel``.
    """
    instructions = experiment_instructions(instructions)
    session = current_session()
    if run_parallel is not None:
        session = Session(
            session.config, parallel=bool(run_parallel), processes=processes
        )
    plan = session.explore(preset, instructions=instructions)
    return plan.result()


def run_explore_frontend(
    instructions: Optional[int] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> ExploreResult:
    """The 96-point front-end preset grid (Pareto + sensitivity)."""
    return run_explore_preset("frontend", instructions, run_parallel, processes)


def run_explore_smoke(
    instructions: Optional[int] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> ExploreResult:
    """The 8-point smoke preset grid (CI-sized exploration)."""
    return run_explore_preset("smoke", instructions, run_parallel, processes)


def run_explore_cmp(
    instructions: Optional[int] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> ExploreResult:
    """The chip-level preset grid (cores x mixes x L2 slices)."""
    return run_explore_preset("cmp", instructions, run_parallel, processes)


def tables_explore(result: ExploreResult) -> List[TableBlock]:
    """An exploration's pareto/sensitivity views as table blocks."""
    return result.tables()


def format_explore(result: ExploreResult) -> str:
    """Render an exploration's views as text tables."""
    return render_blocks(result.tables())


def _constants(preset: str) -> Dict[str, object]:
    """Key material: the compiled grid, sections, seed, and objectives.

    The grid description folds in every axis value, so editing a preset
    (or the point-compilation defaults behind it) re-keys the
    experiment.  Chunking granularity is deliberately absent -- it is
    an execution detail that cannot change the assembled frames.
    """
    grid = get_grid(preset)
    return {
        "grid": grid.describe(),
        "sections": [CodeSection.TOTAL.name],
        "seed": 0,
        "objectives": list(DEFAULT_OBJECTIVES[grid.kind]),
    }


def _explore_workloads() -> List[str]:
    """The default exploration workload mix (the Figure 11 six)."""
    return list(DEFAULT_EXPLORE_WORKLOADS)


def _spec(preset: str, title: str) -> ExperimentSpec:
    runners = {
        "frontend": run_explore_frontend,
        "smoke": run_explore_smoke,
        "cmp": run_explore_cmp,
    }
    return ExperimentSpec(
        name=preset_experiment_name(preset),
        title=title,
        runner=runners[preset],
        tables=tables_explore,
        workloads=_explore_workloads,
        constants=functools.partial(_constants, preset),
    )


FRONTEND_SPEC = _spec(
    "frontend",
    "Exploration: front-end preset grid (96 points, Pareto + sensitivity)",
)
SMOKE_SPEC = _spec(
    "smoke",
    "Exploration: smoke preset grid (8 points, CI-sized)",
)
CMP_SPEC = _spec(
    "cmp",
    "Exploration: chip-level preset grid (cores x mixes x L2)",
)

#: All preset-exploration specs, in preset order (orchestrator append).
SPECS = (FRONTEND_SPEC, SMOKE_SPEC, CMP_SPEC)
