"""Figure 5: branch MPKI per predictor configuration and suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
)
from repro.frontend.predictors import make_predictor
from repro.frontend.predictors.factory import predictor_configurations
from repro.frontend.simulation import simulate_branch_predictors
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _workload_mpki(args) -> Dict[str, float]:
    """Per-workload worker: all predictor configurations on one trace.

    The nine predictors run through the batched
    :func:`simulate_branch_predictors`, which decodes the conditional
    stream once and reuses it for every configuration.
    """
    spec, instructions, section = args
    trace = workload_trace(spec, instructions)
    configurations = predictor_configurations()
    predictors = [
        make_predictor(kind, budget, with_loop)
        for _, kind, budget, with_loop in configurations
    ]
    results = simulate_branch_predictors(trace, predictors, section)
    return {
        label: result.mpki
        for (label, _, _, _), result in zip(configurations, results)
    }


@dataclass
class Fig05Result:
    """Branch MPKI per (suite, predictor configuration)."""

    instructions: int
    configurations: List[str] = field(default_factory=list)
    #: suite -> configuration label -> MPKI (suite average)
    mpki: Dict[Suite, Dict[str, float]] = field(default_factory=dict)
    #: benchmark -> configuration label -> MPKI
    per_workload: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_fig05(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    section: CodeSection = CodeSection.TOTAL,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig05Result:
    """Regenerate the Figure 5 data (all nine predictor configurations).

    The per-workload sweep (trace generation plus all predictor
    simulations) runs through the current session's sweep engine;
    ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    configurations = predictor_configurations()
    result = Fig05Result(
        instructions=instructions,
        configurations=[label for label, _, _, _ in configurations],
    )
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, section), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_config: Dict[str, List[float]] = {label: [] for label, _, _, _ in configurations}
        for spec, row in zip(specs, rows):
            result.per_workload[spec.name] = row
            for label, mpki in row.items():
                per_config[label].append(mpki)
        result.mpki[suite] = {label: mean(values) for label, values in per_config.items()}
    return result


def tables_fig05(result: Fig05Result) -> List[TableBlock]:
    """Figure 5 bars as table blocks (MPKI)."""
    headers = ["suite"] + result.configurations
    rows = []
    for suite, values in result.mpki.items():
        rows.append(
            [suite.label] + [f"{values[label]:.2f}" for label in result.configurations]
        )
    return [block(headers, rows)]


def format_fig05(result: Fig05Result) -> str:
    """Render the Figure 5 bars as a table (MPKI)."""
    return render_blocks(tables_fig05(result))


def _constants() -> Dict[str, object]:
    """Key material: the nine predictor configurations Figure 5 sweeps."""
    return {
        "configurations": [label for label, _, _, _ in predictor_configurations()],
        "section": CodeSection.TOTAL.name,
    }


SPEC = ExperimentSpec(
    name="fig5",
    title="Figure 5: branch MPKI per predictor configuration and suite",
    runner=run_fig05,
    tables=tables_fig05,
    workloads=default_workload_names,
    constants=_constants,
)
