"""Figure 5: branch MPKI per predictor configuration and suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    render_blocks,
    suite_cell,
)
from repro.frontend.predictors import make_predictor
from repro.frontend.predictors.factory import predictor_configurations
from repro.frontend.simulation import simulate_branch_predictors
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace

#: The nine configuration labels Figure 5 sweeps, in bar order.
FIGURE5_LABELS = tuple(label for label, _, _, _ in predictor_configurations())


def _workload_mpki(args) -> Dict[str, float]:
    """Per-workload worker: all predictor configurations on one trace.

    The nine predictors run through the batched
    :func:`simulate_branch_predictors`, which decodes the conditional
    stream once and reuses it for every configuration.
    """
    spec, instructions, section = args
    trace = workload_trace(spec, instructions)
    configurations = predictor_configurations()
    predictors = [
        make_predictor(kind, budget, with_loop)
        for _, kind, budget, with_loop in configurations
    ]
    results = simulate_branch_predictors(trace, predictors, section)
    return {
        label: result.mpki
        for (label, _, _, _), result in zip(configurations, results)
    }


@dataclass
class Fig05Result(FrameResult):
    """Branch MPKI per (suite, predictor configuration).

    Frames:

    ``suites`` (primary)
        One row per suite: MPKI per configuration label (suite average).
    ``workloads``
        One row per workload: MPKI per configuration label.
    """

    instructions: int
    configurations: List[str] = field(default_factory=list)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "suites"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("configurations"),
        PayloadField.pivot("mpki", "suites", [["suite"]]),
        PayloadField.pivot("per_workload", "workloads", [["workload"]]),
    )
    VIEWS = (
        RowView(
            "suites",
            (("suite", "suite", suite_cell),)
            + tuple((label, label, fixed(2)) for label in FIGURE5_LABELS),
        ),
    )


def run_fig05(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    section: CodeSection = CodeSection.TOTAL,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig05Result:
    """Regenerate the Figure 5 data (all nine predictor configurations).

    The per-workload sweep (trace generation plus all predictor
    simulations) runs through the current session's sweep engine;
    ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    labels = list(FIGURE5_LABELS)
    suite_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, section), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_config: Dict[str, List[float]] = {label: [] for label in labels}
        for spec, row in zip(specs, rows):
            workload_rows.append((spec.name,) + tuple(row[label] for label in labels))
            for label, mpki in row.items():
                per_config[label].append(mpki)
        suite_rows.append(
            (suite,) + tuple(mean(per_config[label]) for label in labels)
        )
    return Fig05Result(
        instructions=instructions,
        configurations=labels,
        frames={
            "suites": ResultFrame.from_rows(["suite", *labels], suite_rows),
            "workloads": ResultFrame.from_rows(["workload", *labels], workload_rows),
        },
    )


def tables_fig05(result: Fig05Result) -> List[TableBlock]:
    """Figure 5 bars as table blocks (MPKI)."""
    return result.tables()


def format_fig05(result: Fig05Result) -> str:
    """Render the Figure 5 bars as a table (MPKI)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the nine predictor configurations Figure 5 sweeps."""
    return {
        "configurations": list(FIGURE5_LABELS),
        "section": CodeSection.TOTAL.name,
    }


SPEC = ExperimentSpec(
    name="fig5",
    title="Figure 5: branch MPKI per predictor configuration and suite",
    runner=run_fig05,
    tables=tables_fig05,
    workloads=default_workload_names,
    constants=_constants,
)
