"""Figure 2: distribution of conditional branch directions per suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_bias import (
    BIAS_BUCKET_LABELS,
    BiasDistribution,
    analyze_branch_bias,
)
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    mean,
    percent,
    render_blocks,
    section_cell,
    sections_for,
    suite_cell,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig02Result(FrameResult):
    """Per-suite, per-section taken-percentage bucket shares.

    Frames:

    ``sections`` (primary)
        One row per (suite, section): one column per bias bucket plus
        the derived ``strongly biased`` share (0-10% or >90% buckets).
    """

    instructions: int
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "sections"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.pivot(
            "buckets",
            "sections",
            [["suite"], ["section"]],
            columns=BIAS_BUCKET_LABELS,
        ),
    )
    VIEWS = (
        RowView(
            "sections",
            (
                ("suite", "suite", suite_cell),
                ("section", "section", section_cell),
            )
            + tuple((label, label, percent(1)) for label in BIAS_BUCKET_LABELS)
            + (("strongly biased", "strongly biased", percent(1)),),
        ),
    )

    def strongly_biased(self, suite: Suite, section: CodeSection) -> float:
        """Share of dynamic conditionals in the 0-10% or >90% buckets."""
        data = self.buckets[suite][section]
        return data["0-10%"] + data[">90%"]


def _workload_bias(args) -> Dict[CodeSection, BiasDistribution]:
    """Per-workload worker: bias distribution of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_branch_bias(trace, section) for section in sections_for(spec)
    }


def run_fig02(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig02Result:
    """Regenerate the Figure 2 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    section_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_bias, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section: Dict[CodeSection, List[BiasDistribution]] = {}
        for spec, distributions in zip(specs, rows):
            for section, distribution in distributions.items():
                per_section.setdefault(section, []).append(distribution)
        for section, distributions in per_section.items():
            buckets = {
                label: mean(d.bucket_fractions[label] for d in distributions)
                for label in BIAS_BUCKET_LABELS
            }
            section_rows.append(
                (suite, section)
                + tuple(buckets[label] for label in BIAS_BUCKET_LABELS)
                + (buckets["0-10%"] + buckets[">90%"],)
            )
    return Fig02Result(
        instructions=instructions,
        frames={
            "sections": ResultFrame.from_rows(
                ["suite", "section", *BIAS_BUCKET_LABELS, "strongly biased"],
                section_rows,
            ),
        },
    )


def tables_fig02(result: Fig02Result) -> List[TableBlock]:
    """Figure 2 stacked-bar data as table blocks (values in %)."""
    return result.tables()


def format_fig02(result: Fig02Result) -> str:
    """Render the Figure 2 stacked-bar data as a table (values in %)."""
    return render_blocks(result.tables())


SPEC = ExperimentSpec(
    name="fig2",
    title="Figure 2: distribution of conditional branch directions per suite",
    runner=run_fig02,
    tables=tables_fig02,
    workloads=default_workload_names,
)
