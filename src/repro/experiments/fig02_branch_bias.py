"""Figure 2: distribution of conditional branch directions per suite."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_bias import (
    BIAS_BUCKET_LABELS,
    BiasDistribution,
    analyze_branch_bias,
)
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig02Result:
    """Per-suite, per-section taken-percentage bucket shares."""

    instructions: int
    #: suite -> section -> bucket label -> fraction of dynamic conditionals
    buckets: Dict[Suite, Dict[CodeSection, Dict[str, float]]] = field(default_factory=dict)

    def strongly_biased(self, suite: Suite, section: CodeSection) -> float:
        """Share of dynamic conditionals in the 0-10% or >90% buckets."""
        data = self.buckets[suite][section]
        return data["0-10%"] + data[">90%"]


def _workload_bias(args) -> Dict[CodeSection, BiasDistribution]:
    """Per-workload worker: bias distribution of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_branch_bias(trace, section) for section in sections_for(spec)
    }


def run_fig02(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig02Result:
    """Regenerate the Figure 2 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    result = Fig02Result(instructions=instructions)
    sweep = current_session().suite_sweep(
        _workload_bias, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section: Dict[CodeSection, List] = {}
        for spec, distributions in zip(specs, rows):
            for section, distribution in distributions.items():
                per_section.setdefault(section, []).append(distribution)
        result.buckets[suite] = {}
        for section, distributions in per_section.items():
            result.buckets[suite][section] = {
                label: mean(d.bucket_fractions[label] for d in distributions)
                for label in BIAS_BUCKET_LABELS
            }
    return result


def tables_fig02(result: Fig02Result) -> List[TableBlock]:
    """Figure 2 stacked-bar data as table blocks (values in %)."""
    headers = ["suite", "section"] + list(BIAS_BUCKET_LABELS) + ["strongly biased"]
    rows = []
    for suite, sections in result.buckets.items():
        for section, buckets in sections.items():
            rows.append(
                [suite.label, section.label]
                + [f"{100 * buckets[label]:.1f}" for label in BIAS_BUCKET_LABELS]
                + [f"{100 * result.strongly_biased(suite, section):.1f}"]
            )
    return [block(headers, rows)]


def format_fig02(result: Fig02Result) -> str:
    """Render the Figure 2 stacked-bar data as a table (values in %)."""
    return render_blocks(tables_fig02(result))


SPEC = ExperimentSpec(
    name="fig2",
    title="Figure 2: distribution of conditional branch directions per suite",
    runner=run_fig02,
    tables=tables_fig02,
    workloads=default_workload_names,
)
