"""Table III: front-end area and power share at the core level."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    render_blocks,
)
from repro.power.core_power import CoreAreaPower, core_area_power
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.uarch.core import BASELINE_CORE, TAILORED_CORE, CoreModel

#: The paper's Table III values (40nm, McPAT + CACTI) for comparison.
PAPER_TABLE3 = {
    "baseline": {
        "Total core": {"area_mm2": 2.49, "power_w": 0.85},
        "I-cache": {"area_mm2": 0.31, "power_w": 0.075},
        "BP": {"area_mm2": 0.14, "power_w": 0.032},
        "BTB": {"area_mm2": 0.125, "power_w": 0.017},
    },
    "tailored": {
        "Total core": {"area_mm2": 2.11, "power_w": 0.79},
        "I-cache": {"area_mm2": 0.14, "power_w": 0.049},
        "BP": {"area_mm2": 0.04, "power_w": 0.011},
        "BTB": {"area_mm2": 0.022, "power_w": 0.002},
    },
}

#: The front-end structures Table III itemizes, in row order.
TABLE3_STRUCTURES = ("I-cache", "BP", "BTB")


@dataclass
class Table3Result(FrameResult):
    """Modelled core-level area and power for both core flavours.

    Frames:

    ``structures`` (primary)
        One numeric row per (core, structure): modelled and paper
        area/power (the total-core row included).
    ``table``
        The rendered Table III rows (modelled next to paper values,
        plus the tailored/baseline ratio rows), preformatted.
    """

    cores: Dict[str, CoreAreaPower] = field(default_factory=dict)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "structures"
    PAYLOAD = (PayloadField.scalar("cores"),)
    VIEWS = (
        RowView(
            "table",
            (
                ("core", "core", str),
                ("structure", "structure", str),
                ("area", "area [mm2]", str),
                ("paper_area", "paper area", str),
                ("power", "power [W]", str),
                ("paper_power", "paper power", str),
            ),
        ),
    )

    def area_ratio(self) -> float:
        """Tailored core area relative to the baseline core."""
        return (
            self.cores["tailored"].total_area_mm2
            / self.cores["baseline"].total_area_mm2
        )

    def power_ratio(self) -> float:
        """Tailored core power relative to the baseline core."""
        return (
            self.cores["tailored"].active_power_w
            / self.cores["baseline"].active_power_w
        )


def _core_budget(core: CoreModel) -> Tuple[str, CoreAreaPower]:
    """Per-core worker: evaluate one flavour's area/power budget."""
    return core.name, core_area_power(core)


def _result_frames(result: Table3Result) -> Dict[str, ResultFrame]:
    """The numeric structure rows and the rendered Table III rows."""
    structure_rows: List[tuple] = []
    table_rows: List[tuple] = []
    for core_name, budget in result.cores.items():
        paper = PAPER_TABLE3[core_name]
        structure_rows.append(
            (
                core_name,
                "Total core",
                budget.total_area_mm2,
                paper["Total core"]["area_mm2"],
                budget.active_power_w,
                paper["Total core"]["power_w"],
            )
        )
        table_rows.append(
            (
                core_name,
                "Total core",
                f"{budget.total_area_mm2:.2f}",
                f"{paper['Total core']['area_mm2']:.2f}",
                f"{budget.active_power_w:.2f}",
                f"{paper['Total core']['power_w']:.2f}",
            )
        )
        modelled = budget.frontend.as_rows()
        for structure in TABLE3_STRUCTURES:
            structure_rows.append(
                (
                    core_name,
                    structure,
                    modelled[structure]["area_mm2"],
                    paper[structure]["area_mm2"],
                    modelled[structure]["power_w"],
                    paper[structure]["power_w"],
                )
            )
            table_rows.append(
                (
                    core_name,
                    structure,
                    f"{modelled[structure]['area_mm2']:.3f}",
                    f"{paper[structure]['area_mm2']:.3f}",
                    f"{modelled[structure]['power_w']:.3f}",
                    f"{paper[structure]['power_w']:.3f}",
                )
            )
    table_rows.append(
        (
            "tailored/baseline",
            "area ratio",
            f"{result.area_ratio():.2f}",
            "0.84",
            "",
            "",
        )
    )
    table_rows.append(
        (
            "tailored/baseline",
            "power ratio",
            f"{result.power_ratio():.2f}",
            "0.93",
            "",
            "",
        )
    )
    columns = ["core", "structure", "area", "paper_area", "power", "paper_power"]
    return {
        "structures": ResultFrame.from_rows(
            [
                "core",
                "structure",
                "area_mm2",
                "paper_area_mm2",
                "power_w",
                "paper_power_w",
            ],
            structure_rows,
        ),
        "table": ResultFrame.from_rows(columns, table_rows),
    }


def run_table3(
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Table3Result:
    """Regenerate Table III from the area/power models.

    The per-core evaluation runs through the current session's sweep
    engine (cheap, but it keeps the ``--parallel`` contract uniform
    across every experiment).
    """
    result = Table3Result()
    for name, budget in current_session().map(
        _core_budget, (BASELINE_CORE, TAILORED_CORE), run_parallel, processes
    ):
        result.cores[name] = budget
    result.frames.update(_result_frames(result))
    return result


def tables_table3(result: Table3Result) -> List[TableBlock]:
    """Table III as table blocks, with the paper's values side by side."""
    return result.tables()


def format_table3(result: Table3Result) -> str:
    """Render Table III with the paper's values side by side."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the two core flavours Table III budgets."""
    return {"cores": [BASELINE_CORE.name, TAILORED_CORE.name]}


SPEC = ExperimentSpec(
    name="table3",
    title="Table III: front-end area and power share at the core level",
    runner=run_table3,
    tables=tables_table3,
    constants=_constants,
)
