"""Shared plumbing for the experiment drivers.

The workload-trace cache itself lives in
:mod:`repro.workloads.trace_cache` (so the uarch layer can share it
without a layering cycle); this module re-exports it together with the
sweep helpers (:func:`run_sweep`, :func:`parallel_map`), the workload
selection helpers, and small formatting utilities.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.results.artifacts import TableBlock
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import (
    WORKLOADS,
    get_workload,
    select_workloads,
    workloads_in_suite,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.trace_cache import (
    DEFAULT_PROFILE_INSTRUCTIONS,
    TRACE_CACHE_DIR_VARIABLE,
    TRACE_CACHE_VERSION,
    all_cache_stats,
    clear_trace_cache,
    default_shared_cache_dir,
    enable_shared_cache,
    register_stats_provider,
    resolved_cache_dir,
    trace_cache_info,
    trace_on_disk,
)
from repro.workloads.trace_cache import workload_trace as _workload_trace

__all__ = [
    # Sweep and selection helpers owned by this module.
    "DEFAULT_EXPERIMENT_INSTRUCTIONS",
    "SECTION_ORDER",
    "default_workload_names",
    "experiment_instructions",
    "format_table",
    "mean",
    "normalize_to_reference",
    "parallel_map",
    "render_blocks",
    "run_sweep",
    "sections_for",
    "suite_label_map",
    "suite_workloads",
    # Re-exported workload/trace-cache API (backward compatibility --
    # the cache itself lives in repro.workloads.trace_cache).
    "CodeSection",
    "Suite",
    "SUITE_ORDER",
    "WORKLOADS",
    "WorkloadSpec",
    "get_workload",
    "workloads_in_suite",
    "DEFAULT_PROFILE_INSTRUCTIONS",
    "TRACE_CACHE_DIR_VARIABLE",
    "TRACE_CACHE_VERSION",
    "all_cache_stats",
    "clear_trace_cache",
    "default_shared_cache_dir",
    "enable_shared_cache",
    "register_stats_provider",
    "resolved_cache_dir",
    "trace_cache_info",
    "trace_on_disk",
    "workload_trace",
]

#: Default dynamic trace length used by the experiment drivers (alias
#: of the trace-cache default so both layers agree on what a cached
#: "experiment length" trace is).
DEFAULT_EXPERIMENT_INSTRUCTIONS = DEFAULT_PROFILE_INSTRUCTIONS


def experiment_instructions(instructions: Optional[int]) -> int:
    """Resolve a driver's instruction budget.

    ``None`` means "the current session decides" -- matching how the
    drivers' ``run_parallel=None`` defers to the session -- so
    ``run_fig01()`` under ``Session(instructions=N).activate()`` uses
    ``N`` exactly like ``session.experiment("fig1")`` does.  With no
    session active this resolves from ``REPRO_INSTRUCTIONS`` or the
    default (:data:`DEFAULT_EXPERIMENT_INSTRUCTIONS`).
    """
    if instructions is not None:
        return int(instructions)
    from repro.api.session import current_session

    return current_session().config.instructions

#: The sections reported by the per-suite figures, in bar order.
SECTION_ORDER = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)


def _warn_deprecated(name: str, replacement: str) -> None:
    """Emit the scheduled removal warning for a legacy entry point.

    ``stacklevel=3`` points the warning at the *caller* of the shim
    (two frames up from here: this helper, then the shim itself).
    """
    warnings.warn(
        f"repro.experiments.common.{name} is deprecated and will be removed; "
        f"use {replacement} instead (bit-identical results).",
        DeprecationWarning,
        stacklevel=3,
    )


def workload_trace(
    spec: WorkloadSpec,
    instructions: Optional[int] = None,
    seed: int = 0,
):
    """Build (or reuse) a workload's trace (deprecation shim).

    The cache itself has lived in :mod:`repro.workloads.trace_cache`
    since the layering split; import it from there (or call
    :meth:`repro.api.Session.trace`) -- this historical re-export now
    warns and will be removed on the deprecation schedule.
    """
    _warn_deprecated(
        "workload_trace",
        "Session.trace(...) or repro.workloads.trace_cache.workload_trace",
    )
    return _workload_trace(spec, instructions, seed=seed)


def parallel_map(
    function: Callable,
    items: Sequence,
    processes: Optional[int] = None,
) -> List:
    """Map ``function`` over worker processes (deprecation shim).

    The pool now lives in :mod:`repro.api.session`
    (:func:`repro.api.session.parallel_map`); this wrapper is kept for
    the historical import path.
    """
    from repro.api.session import parallel_map as session_parallel_map

    return session_parallel_map(function, items, processes)


def run_sweep(
    worker: Callable,
    arguments: Sequence,
    run_parallel: bool = False,
    processes: Optional[int] = None,
) -> List:
    """Run a per-workload sweep worker (deprecation shim).

    Delegates to the default :class:`repro.api.session.Session`'s
    ``map`` engine, which preserves the historical behaviour bit for
    bit: serial by default (sharing the in-process trace cache); with
    ``run_parallel`` the disk trace cache is enabled first --
    defaulting :data:`TRACE_CACHE_DIR_VARIABLE` to the per-user shared
    directory when unset (set the variable to ``none`` to opt out) --
    the sweep's traces are primed into it, and the work then fans out
    across worker processes via :func:`parallel_map`.  New code should
    call ``Session.map`` (or build a plan) instead; this shim now warns
    and will be removed on the deprecation schedule.
    """
    _warn_deprecated("run_sweep", "Session.map(...)")
    from repro.api.session import default_session

    return default_session().map(
        worker, arguments, parallel=run_parallel, processes=processes
    )


def suite_workloads(
    suites: Optional[Sequence[Suite]] = None,
    names: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Select the workloads an experiment runs over.

    With no arguments all 41 catalogued workloads are returned, in
    suite order.  ``names`` restricts to specific benchmarks, ``suites``
    to whole suites.  Thin wrapper over
    :func:`repro.workloads.catalog.select_workloads`, the one selection
    helper shared with :meth:`repro.api.Session.workloads`.
    """
    return select_workloads(
        suites=list(suites) if suites is not None else None,
        names=list(names) if names is not None else None,
    )


def sections_for(spec: WorkloadSpec) -> List[CodeSection]:
    """Sections reported for a workload (desktop codes have no split)."""
    if spec.suite.is_desktop:
        return [CodeSection.TOTAL]
    return list(SECTION_ORDER)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def normalize_to_reference(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a name->value mapping to one reference entry.

    Used by every CMP comparison (Figures 10/11 and the ``cmpsweep``
    scenarios) so they share one zero-guard: a zero (or missing-as-zero)
    reference yields all-zero ratios instead of a division error.
    """
    scale = values[reference]
    return {
        name: (value / scale if scale else 0.0) for name, value in values.items()
    }


def default_workload_names() -> tuple:
    """Names of the full 41-workload catalog, in suite order.

    The default workload set of every whole-catalog experiment; the
    orchestrator folds it into the content-addressed result key.
    """
    return tuple(spec.name for spec in suite_workloads())


def render_blocks(blocks: Sequence[TableBlock]) -> str:
    """Render experiment table blocks the way the CLI prints them.

    Every ``format_*`` helper routes through this, so the text output
    and the CSV/JSON manifest emission share one source of truth (the
    blocks produced by the experiment's ``tables_*`` function).
    """
    parts = []
    for item in blocks:
        table = format_table(item.headers, item.rows)
        parts.append(f"{item.title}\n{table}" if item.title else table)
    return "\n\n".join(parts)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def suite_label_map() -> Dict[Suite, str]:
    """Suite display labels in figure order."""
    return {suite: suite.label for suite in SUITE_ORDER}
