"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.trace.events import Trace
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import WORKLOADS, get_workload, workloads_in_suite
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.synthesis import SyntheticWorkload, build_workload

#: Default dynamic trace length used by the experiment drivers.  Scaled
#: down from the paper's multi-billion-instruction runs so the full
#: 41-workload sweeps finish in minutes on a laptop; every ``run_*``
#: function accepts an ``instructions`` override.
DEFAULT_EXPERIMENT_INSTRUCTIONS = 150_000

#: The sections reported by the per-suite figures, in bar order.
SECTION_ORDER = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)


def suite_workloads(
    suites: Optional[Sequence[Suite]] = None,
    names: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Select the workloads an experiment runs over.

    With no arguments all 41 catalogued workloads are returned, in
    suite order.  ``names`` restricts to specific benchmarks, ``suites``
    to whole suites.
    """
    if names is not None:
        return [get_workload(name) for name in names]
    if suites is None:
        suites = SUITE_ORDER
    selected: List[WorkloadSpec] = []
    for suite in suites:
        selected.extend(workloads_in_suite(suite))
    return selected


def workload_trace(spec: WorkloadSpec, instructions: Optional[int] = None) -> Trace:
    """Build (or reuse) the synthetic workload and return its trace."""
    if instructions is None:
        instructions = DEFAULT_EXPERIMENT_INSTRUCTIONS
    workload: SyntheticWorkload = build_workload(spec)
    return workload.trace(instructions)


def sections_for(spec: WorkloadSpec) -> List[CodeSection]:
    """Sections reported for a workload (desktop codes have no split)."""
    if spec.suite.is_desktop:
        return [CodeSection.TOTAL]
    return list(SECTION_ORDER)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def suite_label_map() -> Dict[Suite, str]:
    """Suite display labels in figure order."""
    return {suite: suite.label for suite in SUITE_ORDER}
