"""Shared plumbing for the experiment drivers.

The workload-trace cache itself lives in
:mod:`repro.workloads.trace_cache` (so the uarch layer can share it
without a layering cycle); this module re-exports it together with the
sweep helpers (:func:`run_sweep`, :func:`parallel_map`), the workload
selection helpers, and small formatting utilities.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.results.artifacts import TableBlock
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import WORKLOADS, get_workload, workloads_in_suite
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.trace_cache import (
    DEFAULT_PROFILE_INSTRUCTIONS,
    TRACE_CACHE_DIR_VARIABLE,
    TRACE_CACHE_VERSION,
    all_cache_stats,
    clear_trace_cache,
    default_shared_cache_dir,
    enable_shared_cache,
    register_stats_provider,
    resolved_cache_dir,
    trace_cache_info,
    trace_on_disk,
    workload_trace,
)

__all__ = [
    # Sweep and selection helpers owned by this module.
    "DEFAULT_EXPERIMENT_INSTRUCTIONS",
    "SECTION_ORDER",
    "default_workload_names",
    "format_table",
    "mean",
    "normalize_to_reference",
    "parallel_map",
    "render_blocks",
    "run_sweep",
    "sections_for",
    "suite_label_map",
    "suite_workloads",
    # Re-exported workload/trace-cache API (backward compatibility --
    # the cache itself lives in repro.workloads.trace_cache).
    "CodeSection",
    "Suite",
    "SUITE_ORDER",
    "WORKLOADS",
    "WorkloadSpec",
    "get_workload",
    "workloads_in_suite",
    "DEFAULT_PROFILE_INSTRUCTIONS",
    "TRACE_CACHE_DIR_VARIABLE",
    "TRACE_CACHE_VERSION",
    "all_cache_stats",
    "clear_trace_cache",
    "default_shared_cache_dir",
    "enable_shared_cache",
    "register_stats_provider",
    "resolved_cache_dir",
    "trace_cache_info",
    "trace_on_disk",
    "workload_trace",
]

#: Default dynamic trace length used by the experiment drivers (alias
#: of the trace-cache default so both layers agree on what a cached
#: "experiment length" trace is).
DEFAULT_EXPERIMENT_INSTRUCTIONS = DEFAULT_PROFILE_INSTRUCTIONS

#: The sections reported by the per-suite figures, in bar order.
SECTION_ORDER = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)


def parallel_map(
    function: Callable,
    items: Sequence,
    processes: Optional[int] = None,
) -> List:
    """Map ``function`` over ``items`` across worker processes, in order.

    ``function`` must be picklable (a module-level function).  With one
    item, one worker, or no multiprocessing support, falls back to a
    plain in-process map.  This is what the drivers' ``run_parallel``
    option fans the per-workload sweep out with.
    """
    items = list(items)
    if processes is None:
        processes = min(len(items), os.cpu_count() or 1)
    if processes <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(function, items)


def _prime_worker(args) -> None:
    """Generate one trace into the shared disk cache (worker side)."""
    spec, instructions = args
    workload_trace(spec, instructions)


def _prime_shared_traces(arguments: Sequence, processes: Optional[int]) -> None:
    """Populate the shared trace cache for a sweep before forking.

    Traces the disk layer is missing are generated *in parallel* (each
    priming worker stores its ``.npz`` atomically), then the parent
    loads everything into its in-memory cache, so sweep workers find
    every trace present -- inherited on fork platforms, disk-loaded
    otherwise -- instead of each regenerating its own.  Only argument
    tuples of the conventional ``(spec, instructions, ...)`` driver
    shape are primed; anything else is left to the worker.
    """
    pairs = []
    seen = set()
    for args in arguments:
        if (
            isinstance(args, tuple)
            and len(args) >= 2
            and isinstance(args[0], WorkloadSpec)
            and isinstance(args[1], int)
            and (args[0].name, args[1]) not in seen
        ):
            seen.add((args[0].name, args[1]))
            pairs.append((args[0], args[1]))
    missing = [pair for pair in pairs if not trace_on_disk(*pair)]
    if len(missing) > 1:
        parallel_map(_prime_worker, missing, processes)
    for pair in pairs:
        workload_trace(*pair)


def run_sweep(
    worker: Callable,
    arguments: Sequence,
    run_parallel: bool = False,
    processes: Optional[int] = None,
) -> List:
    """Run a per-workload sweep worker over its argument tuples.

    Serial by default (sharing the in-process trace cache).  With
    ``run_parallel`` the disk trace cache is enabled first -- defaulting
    :data:`TRACE_CACHE_DIR_VARIABLE` to the per-user shared directory
    when unset (see :func:`default_shared_cache_dir`; set the variable
    to ``none`` to opt out) -- the sweep's traces are primed into it,
    and the work then fans out across worker processes via
    :func:`parallel_map`.
    """
    if run_parallel:
        if enable_shared_cache() is not None:
            _prime_shared_traces(arguments, processes)
        return parallel_map(worker, arguments, processes)
    return [worker(args) for args in arguments]


def suite_workloads(
    suites: Optional[Sequence[Suite]] = None,
    names: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Select the workloads an experiment runs over.

    With no arguments all 41 catalogued workloads are returned, in
    suite order.  ``names`` restricts to specific benchmarks, ``suites``
    to whole suites.
    """
    if names is not None:
        return [get_workload(name) for name in names]
    if suites is None:
        suites = SUITE_ORDER
    selected: List[WorkloadSpec] = []
    for suite in suites:
        selected.extend(workloads_in_suite(suite))
    return selected


def sections_for(spec: WorkloadSpec) -> List[CodeSection]:
    """Sections reported for a workload (desktop codes have no split)."""
    if spec.suite.is_desktop:
        return [CodeSection.TOTAL]
    return list(SECTION_ORDER)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def normalize_to_reference(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a name->value mapping to one reference entry.

    Used by every CMP comparison (Figures 10/11 and the ``cmpsweep``
    scenarios) so they share one zero-guard: a zero (or missing-as-zero)
    reference yields all-zero ratios instead of a division error.
    """
    scale = values[reference]
    return {
        name: (value / scale if scale else 0.0) for name, value in values.items()
    }


def default_workload_names() -> tuple:
    """Names of the full 41-workload catalog, in suite order.

    The default workload set of every whole-catalog experiment; the
    orchestrator folds it into the content-addressed result key.
    """
    return tuple(spec.name for spec in suite_workloads())


def render_blocks(blocks: Sequence[TableBlock]) -> str:
    """Render experiment table blocks the way the CLI prints them.

    Every ``format_*`` helper routes through this, so the text output
    and the CSV/JSON manifest emission share one source of truth (the
    blocks produced by the experiment's ``tables_*`` function).
    """
    parts = []
    for item in blocks:
        table = format_table(item.headers, item.rows)
        parts.append(f"{item.title}\n{table}" if item.title else table)
    return "\n\n".join(parts)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def suite_label_map() -> Dict[Suite, str]:
    """Suite display labels in figure order."""
    return {suite: suite.label for suite in SUITE_ORDER}
