"""Shared plumbing for the experiment drivers."""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import WORKLOADS, get_workload, workloads_in_suite
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.synthesis import SyntheticWorkload, build_workload

#: Default dynamic trace length used by the experiment drivers.  Scaled
#: down from the paper's multi-billion-instruction runs so the full
#: 41-workload sweeps finish in minutes on a laptop; every ``run_*``
#: function accepts an ``instructions`` override.
DEFAULT_EXPERIMENT_INSTRUCTIONS = 150_000

#: The sections reported by the per-suite figures, in bar order.
SECTION_ORDER = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)

#: Directory for the optional on-disk trace cache.  When set, generated
#: trace columns are persisted as ``.npz`` files so separate driver
#: *processes* (each CLI invocation is one) share traces too.
TRACE_CACHE_DIR_VARIABLE = "REPRO_TRACE_CACHE_DIR"

#: Version salt folded into the disk-cache fingerprint.  Bump when the
#: trace *generation* semantics change in a way the static-layout
#: fingerprint cannot see (e.g. executor or schedule behaviour).
TRACE_CACHE_VERSION = 1

#: Process-wide trace cache: (workload name, instructions, seed) -> Trace.
_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}
_TRACE_CACHE_LOCK = threading.Lock()
_TRACE_CACHE_STATS = {"hits": 0, "misses": 0}


def workload_trace(
    spec: WorkloadSpec,
    instructions: Optional[int] = None,
    seed: int = 0,
) -> Trace:
    """Build (or reuse) the synthetic workload and return its trace.

    Traces are cached process-wide, keyed by ``(spec.name,
    instructions, seed)``, so the experiment drivers share one trace
    per workload instead of each regenerating all of them.  Repeated
    calls with the same key return the *same* object.  Set the
    ``REPRO_TRACE_CACHE_DIR`` environment variable to also persist
    trace columns on disk and share them across driver processes.
    """
    if instructions is None:
        instructions = DEFAULT_EXPERIMENT_INSTRUCTIONS
    key = (spec.name, int(instructions), int(seed))
    with _TRACE_CACHE_LOCK:
        cached = _TRACE_CACHE.get(key)
        if cached is not None:
            _TRACE_CACHE_STATS["hits"] += 1
            return cached
        _TRACE_CACHE_STATS["misses"] += 1

    trace = _load_trace_from_disk(spec, key)
    if trace is None:
        workload: SyntheticWorkload = build_workload(spec)
        trace = workload.trace(int(instructions), seed=seed)
        _store_trace_to_disk(trace, key)
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (mainly for tests and memory pressure).

    Also clears the workload-builder cache underneath, which holds the
    built programs and their per-workload trace dictionaries; without
    that, the traces would stay strongly referenced and the next
    "miss" would silently return the same objects.
    """
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()
        _TRACE_CACHE_STATS["hits"] = 0
        _TRACE_CACHE_STATS["misses"] = 0
    build_workload.cache_clear()


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide trace cache."""
    with _TRACE_CACHE_LOCK:
        return {
            "hits": _TRACE_CACHE_STATS["hits"],
            "misses": _TRACE_CACHE_STATS["misses"],
            "entries": len(_TRACE_CACHE),
        }


def _disk_cache_path(key: Tuple[str, int, int]) -> Optional[str]:
    directory = os.environ.get(TRACE_CACHE_DIR_VARIABLE, "")
    if not directory:
        return None
    name, instructions, seed = key
    return os.path.join(directory, f"{name}-{instructions}-{seed}.npz")


def _program_fingerprint(program) -> str:
    """Digest of the laid-out static program a cached trace refers to.

    Guards the disk cache against synthesis or layout changes: any
    difference in block addresses, sizes, instruction counts,
    terminators, or static targets invalidates the entry.  Generation
    changes invisible to the static layout (branch probabilities,
    executor behaviour) are covered by bumping
    :data:`TRACE_CACHE_VERSION`.
    """
    columns = program_columns(program)
    digest = hashlib.sha1(f"v{TRACE_CACHE_VERSION}:".encode())
    for array in (
        columns.addresses,
        columns.size_bytes,
        columns.num_instructions,
        columns.terminators,
        columns.taken_targets,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _load_trace_from_disk(
    spec: WorkloadSpec, key: Tuple[str, int, int]
) -> Optional[Trace]:
    path = _disk_cache_path(key)
    if path is None or not os.path.exists(path):
        return None
    try:
        with np.load(path) as archive:
            columns = (
                archive["block_ids"],
                archive["taken"],
                archive["targets"],
                archive["sections"],
            )
            fingerprint = str(archive["fingerprint"])
    except Exception:
        return None  # Corrupt or stale entry: fall back to regeneration.
    program = build_workload(spec).program
    if fingerprint != _program_fingerprint(program):
        return None  # Synthesis/layout changed; the cached columns are stale.
    return Trace.from_columns(program, *columns, name=spec.name)


def _store_trace_to_disk(trace: Trace, key: Tuple[str, int, int]) -> None:
    path = _disk_cache_path(key)
    if path is None:
        return
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        np.savez_compressed(
            path,
            block_ids=trace.block_ids,
            taken=trace.taken_column,
            targets=trace.target_column,
            sections=trace.section_column,
            fingerprint=np.str_(_program_fingerprint(trace.program)),
        )
    except OSError:
        pass  # Disk cache is best-effort.


def parallel_map(
    function: Callable,
    items: Sequence,
    processes: Optional[int] = None,
) -> List:
    """Map ``function`` over ``items`` across worker processes, in order.

    ``function`` must be picklable (a module-level function).  With one
    item, one worker, or no multiprocessing support, falls back to a
    plain in-process map.  This is what the drivers' ``run_parallel``
    option fans the per-workload sweep out with.
    """
    items = list(items)
    if processes is None:
        processes = min(len(items), os.cpu_count() or 1)
    if processes <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(function, items)


def run_sweep(
    worker: Callable,
    arguments: Sequence,
    run_parallel: bool = False,
    processes: Optional[int] = None,
) -> List:
    """Run a per-workload sweep worker over its argument tuples.

    Serial by default (sharing the in-process trace cache); with
    ``run_parallel`` the work fans out across processes via
    :func:`parallel_map`.  Note that worker processes keep their traces
    to themselves -- set :data:`TRACE_CACHE_DIR_VARIABLE` so parallel
    runs persist traces on disk and later drivers can reuse them.
    """
    if run_parallel:
        return parallel_map(worker, arguments, processes)
    return [worker(args) for args in arguments]


def suite_workloads(
    suites: Optional[Sequence[Suite]] = None,
    names: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Select the workloads an experiment runs over.

    With no arguments all 41 catalogued workloads are returned, in
    suite order.  ``names`` restricts to specific benchmarks, ``suites``
    to whole suites.
    """
    if names is not None:
        return [get_workload(name) for name in names]
    if suites is None:
        suites = SUITE_ORDER
    selected: List[WorkloadSpec] = []
    for suite in suites:
        selected.extend(workloads_in_suite(suite))
    return selected


def sections_for(spec: WorkloadSpec) -> List[CodeSection]:
    """Sections reported for a workload (desktop codes have no split)."""
    if spec.suite.is_desktop:
        return [CodeSection.TOTAL]
    return list(SECTION_ORDER)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def suite_label_map() -> Dict[Suite, str]:
    """Suite display labels in figure order."""
    return {suite: suite.label for suite in SUITE_ORDER}
