"""Shared plumbing for the experiment drivers.

The workload-trace cache itself lives in
:mod:`repro.workloads.trace_cache` (so the uarch layer can share it
without a layering cycle); this module re-exports it together with the
workload selection helpers and small formatting utilities.

It also owns the frame-native result layer shared by all 15 drivers:
:class:`FrameResult` (a result base class whose payload is a set of
named :class:`~repro.api.frame.ResultFrame` columns), the declarative
:class:`PayloadField` spec that maps frames back onto the historical
nested-dict payload layout, and the :class:`RowView` /
:class:`PivotView` table renderers that replace the per-driver
``tables_*`` block-building code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.frame import ResultFrame
from repro.results.artifacts import TableBlock, block, nest_rows
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import (
    WORKLOADS,
    get_workload,
    select_workloads,
    workloads_in_suite,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite
from repro.workloads.trace_cache import (
    DEFAULT_PROFILE_INSTRUCTIONS,
    TRACE_CACHE_DIR_VARIABLE,
    TRACE_CACHE_VERSION,
    all_cache_stats,
    clear_trace_cache,
    default_shared_cache_dir,
    enable_shared_cache,
    register_stats_provider,
    resolved_cache_dir,
    trace_cache_info,
    trace_on_disk,
)
__all__ = [
    # Sweep and selection helpers owned by this module.
    "DEFAULT_EXPERIMENT_INSTRUCTIONS",
    "SECTION_ORDER",
    "default_workload_names",
    "experiment_instructions",
    "format_table",
    "mean",
    "normalize_to_reference",
    "parallel_map",
    "render_blocks",
    "sections_for",
    "suite_label_map",
    "suite_workloads",
    # Frame-native result layer shared by the drivers.
    "FrameResult",
    "PayloadField",
    "PivotView",
    "RowView",
    "fixed",
    "nest",
    "percent",
    "suite_cell",
    "section_cell",
    # Re-exported workload/trace-cache API (backward compatibility --
    # the cache itself lives in repro.workloads.trace_cache).
    "CodeSection",
    "Suite",
    "SUITE_ORDER",
    "WORKLOADS",
    "WorkloadSpec",
    "get_workload",
    "workloads_in_suite",
    "DEFAULT_PROFILE_INSTRUCTIONS",
    "TRACE_CACHE_DIR_VARIABLE",
    "TRACE_CACHE_VERSION",
    "all_cache_stats",
    "clear_trace_cache",
    "default_shared_cache_dir",
    "enable_shared_cache",
    "register_stats_provider",
    "resolved_cache_dir",
    "trace_cache_info",
    "trace_on_disk",
]

#: Default dynamic trace length used by the experiment drivers (alias
#: of the trace-cache default so both layers agree on what a cached
#: "experiment length" trace is).
DEFAULT_EXPERIMENT_INSTRUCTIONS = DEFAULT_PROFILE_INSTRUCTIONS


def experiment_instructions(instructions: Optional[int]) -> int:
    """Resolve a driver's instruction budget.

    ``None`` means "the current session decides" -- matching how the
    drivers' ``run_parallel=None`` defers to the session -- so
    ``run_fig01()`` under ``Session(instructions=N).activate()`` uses
    ``N`` exactly like ``session.experiment("fig1")`` does.  With no
    session active this resolves from ``REPRO_INSTRUCTIONS`` or the
    default (:data:`DEFAULT_EXPERIMENT_INSTRUCTIONS`).
    """
    if instructions is not None:
        return int(instructions)
    from repro.api.session import current_session

    return current_session().config.instructions

#: The sections reported by the per-suite figures, in bar order.
SECTION_ORDER = (CodeSection.TOTAL, CodeSection.SERIAL, CodeSection.PARALLEL)


def parallel_map(
    function: Callable,
    items: Sequence,
    processes: Optional[int] = None,
) -> List:
    """Map ``function`` over worker processes.

    The pool lives in :mod:`repro.api.session`
    (:func:`repro.api.session.parallel_map`); this thin wrapper keeps
    the import path the experiment drivers share.
    """
    from repro.api.session import parallel_map as session_parallel_map

    return session_parallel_map(function, items, processes)


def suite_workloads(
    suites: Optional[Sequence[Suite]] = None,
    names: Optional[Sequence[str]] = None,
) -> List[WorkloadSpec]:
    """Select the workloads an experiment runs over.

    With no arguments all 41 catalogued workloads are returned, in
    suite order.  ``names`` restricts to specific benchmarks, ``suites``
    to whole suites.  Thin wrapper over
    :func:`repro.workloads.catalog.select_workloads`, the one selection
    helper shared with :meth:`repro.api.Session.workloads`.
    """
    return select_workloads(
        suites=list(suites) if suites is not None else None,
        names=list(names) if names is not None else None,
    )


def sections_for(spec: WorkloadSpec) -> List[CodeSection]:
    """Sections reported for a workload (desktop codes have no split)."""
    if spec.suite.is_desktop:
        return [CodeSection.TOTAL]
    return list(SECTION_ORDER)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean with an empty-sequence guard."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def normalize_to_reference(
    values: Mapping[str, float], reference: str
) -> Dict[str, float]:
    """Normalize a name->value mapping to one reference entry.

    Used by every CMP comparison (Figures 10/11 and the ``cmpsweep``
    scenarios) so they share one zero-guard: a zero (or missing-as-zero)
    reference yields all-zero ratios instead of a division error.
    """
    scale = values[reference]
    return {
        name: (value / scale if scale else 0.0) for name, value in values.items()
    }


def default_workload_names() -> tuple:
    """Names of the full 41-workload catalog, in suite order.

    The default workload set of every whole-catalog experiment; the
    orchestrator folds it into the content-addressed result key.
    """
    return tuple(spec.name for spec in suite_workloads())


def render_blocks(blocks: Sequence[TableBlock]) -> str:
    """Render experiment table blocks the way the CLI prints them.

    Every ``format_*`` helper routes through this, so the text output
    and the CSV/JSON manifest emission share one source of truth (the
    blocks produced by the experiment's ``tables_*`` function).
    """
    parts = []
    for item in blocks:
        table = format_table(item.headers, item.rows)
        parts.append(f"{item.title}\n{table}" if item.title else table)
    return "\n\n".join(parts)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a small fixed-width text table."""
    columns = len(headers)
    widths = [len(str(header)) for header in headers]
    for row in rows:
        for index in range(columns):
            widths[index] = max(widths[index], len(str(row[index])))
    lines = []
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def suite_label_map() -> Dict[Suite, str]:
    """Suite display labels in figure order."""
    return {suite: suite.label for suite in SUITE_ORDER}


# ---------------------------------------------------------------------------
# Frame-native result layer
# ---------------------------------------------------------------------------
#
# Every driver's result is a FrameResult: a thin typed wrapper over
# named ResultFrames (one frame per logical table) plus a declarative
# PAYLOAD spec that maps the frames back onto the historical
# nested-dict payload layout (both for the in-memory legacy attribute
# accessors and -- via repro.results.artifacts.nest_rows over the
# *serialized* frames -- for the byte-identical manifest JSON).


def fixed(digits: int) -> Callable[[Any], str]:
    """Cell formatter: fixed-point with ``digits`` decimals."""

    def render(value: Any) -> str:
        return f"{value:.{digits}f}"

    return render


def percent(digits: int, suffix: str = "") -> Callable[[Any], str]:
    """Cell formatter: fraction -> percent with ``digits`` decimals."""

    def render(value: Any) -> str:
        return f"{100 * value:.{digits}f}{suffix}"

    return render


def suite_cell(value: Suite) -> str:
    """Cell formatter: suite display label."""
    return value.label


def section_cell(value: CodeSection) -> str:
    """Cell formatter: code-section display label."""
    return value.label


def nest(
    frame: ResultFrame,
    levels: Sequence[Sequence[str]],
    value: Optional[str] = None,
    columns: Optional[Sequence[str]] = None,
) -> Dict[Any, Any]:
    """Pivot a frame into the historical nested-dict payload shape.

    ``levels`` names the key columns, outermost first; a single-column
    level keys on the cell itself (enum members stay enum members), a
    multi-column level keys on the cell tuple.  Leaves are the ``value``
    column's cell, or a dict of the ``columns`` cells (default: every
    column not used as a level), in frame column order.
    """
    return nest_rows(frame.columns, frame.data, levels, value, columns)


@dataclass(frozen=True)
class PayloadField:
    """One entry of a result's historical payload layout.

    A *scalar* field (``frame is None``) is a real attribute of the
    result dataclass, serialized verbatim.  A *pivot* field
    reconstructs a nested dict from one of the result's frames via
    :func:`nest`; the same spec is stored inside the artifact so the
    manifest writer can render the identical dict from the serialized
    frame without any driver code.
    """

    name: str
    frame: Optional[str] = None
    levels: Tuple[Tuple[str, ...], ...] = ()
    value: Optional[str] = None
    columns: Optional[Tuple[str, ...]] = None

    @classmethod
    def scalar(cls, name: str) -> "PayloadField":
        return cls(name=name)

    @classmethod
    def pivot(
        cls,
        name: str,
        frame: str,
        levels: Sequence[Sequence[str]],
        value: Optional[str] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> "PayloadField":
        return cls(
            name=name,
            frame=frame,
            levels=tuple(tuple(level) for level in levels),
            value=value,
            columns=tuple(columns) if columns is not None else None,
        )

    def spec(self) -> Dict[str, Any]:
        """The JSON form stored in the artifact (pivot fields only)."""
        entry: Dict[str, Any] = {
            "name": self.name,
            "frame": self.frame,
            "levels": [list(level) for level in self.levels],
        }
        if self.value is not None:
            entry["value"] = self.value
        if self.columns is not None:
            entry["columns"] = list(self.columns)
        return entry


@dataclass(frozen=True)
class RowView:
    """A table view that renders one frame row per table row.

    ``columns`` maps source columns to ``(source, header, formatter)``
    triples, in table order.
    """

    frame: str
    columns: Tuple[Tuple[str, str, Callable[[Any], str]], ...]
    title: Optional[str] = None
    name: Optional[str] = None

    def block(self, frames: Mapping[str, ResultFrame]) -> TableBlock:
        source = frames[self.frame]
        positions = [source._position(src) for src, _, _ in self.columns]
        headers = [header for _, header, _ in self.columns]
        rows = [
            [
                render(row[position])
                for position, (_, _, render) in zip(positions, self.columns)
            ]
            for row in source.data
        ]
        return block(headers, rows, title=self.title, name=self.name)


@dataclass(frozen=True)
class PivotView:
    """A table view that pivots key columns into table columns.

    Rows are grouped by the ``index`` columns (first-seen order); each
    distinct ``key`` column tuple becomes one table column (first-seen
    order, headed by ``header(key_tuple)``) holding the formatted
    ``value`` cell.  ``extra`` appends trailing columns joined from
    another frame on the shared index column names, and ``filter``
    restricts the source frame first (used by the per-scenario
    ``cmpsweep`` blocks).
    """

    frame: str
    index: Tuple[Tuple[str, str, Callable[[Any], str]], ...]
    key: Tuple[str, ...]
    value: str
    header: Callable[[Tuple[Any, ...]], str]
    cell: Callable[[Any], str]
    extra: Tuple[Tuple[str, str, str, Callable[[Any], str]], ...] = ()
    filter: Optional[Tuple[Tuple[str, Any], ...]] = None
    title: Optional[str] = None
    name: Optional[str] = None

    def block(self, frames: Mapping[str, ResultFrame]) -> TableBlock:
        source = frames[self.frame]
        if self.filter:
            source = source.select(**dict(self.filter))
        index_positions = [source._position(src) for src, _, _ in self.index]
        key_positions = [source._position(column) for column in self.key]
        value_position = source._position(self.value)
        index_order: List[Tuple[Any, ...]] = []
        key_order: List[Tuple[Any, ...]] = []
        cells: Dict[Tuple[Any, ...], Dict[Tuple[Any, ...], Any]] = {}
        for row in source.data:
            index_key = tuple(row[p] for p in index_positions)
            pivot_key = tuple(row[p] for p in key_positions)
            if index_key not in cells:
                cells[index_key] = {}
                index_order.append(index_key)
            if pivot_key not in cells[index_key]:
                cells[index_key][pivot_key] = row[value_position]
            if pivot_key not in key_order:
                key_order.append(pivot_key)
        joins = []
        for frame_name, column, header, render in self.extra:
            other = frames[frame_name]
            join_positions = [other._position(src) for src, _, _ in self.index]
            value_at = other._position(column)
            lookup = {
                tuple(row[p] for p in join_positions): row[value_at]
                for row in other.data
            }
            joins.append((lookup, header, render))
        headers = [header for _, header, _ in self.index]
        headers += [self.header(key) for key in key_order]
        headers += [header for _, header, _ in joins]
        rows = []
        for index_key in index_order:
            row = [
                render(part)
                for part, (_, _, render) in zip(index_key, self.index)
            ]
            row += [self.cell(cells[index_key][key]) for key in key_order]
            row += [render(lookup[index_key]) for lookup, _, render in joins]
            rows.append(row)
        return block(headers, rows, title=self.title, name=self.name)


class FrameResult:
    """Base class for frame-native experiment results.

    Subclasses are dataclasses holding their true scalar fields plus a
    ``frames`` dict of named :class:`ResultFrame` payloads, and declare:

    ``PRIMARY``
        The name of the canonical frame (what ``ExperimentPlan.frame()``
        and the CLI serve by default).
    ``PAYLOAD``
        :class:`PayloadField` entries reproducing the historical
        nested-dict payload, in its exact field order.  Pivot entries
        double as attribute accessors: ``result.mpki`` rebuilds the
        legacy ``Dict[Suite, ...]`` from the in-memory frame.
    ``VIEWS``
        :class:`RowView` / :class:`PivotView` entries rendering the
        experiment's table blocks (override :meth:`views` when the
        views depend on the data, as ``cmpsweep`` does).
    """

    PRIMARY: str = ""
    PAYLOAD: Tuple[PayloadField, ...] = ()
    VIEWS: Tuple[Any, ...] = ()

    def __getattr__(self, name: str) -> Any:
        if name.startswith("__") or name == "frames":
            raise AttributeError(name)
        for entry in type(self).PAYLOAD:
            if entry.name == name and entry.frame is not None:
                return nest(
                    self.frames[entry.frame], entry.levels, entry.value, entry.columns
                )
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}"
        )

    def views(self) -> Sequence[Any]:
        return type(self).VIEWS

    def tables(self) -> List[TableBlock]:
        """The experiment's table blocks, rendered from the frames."""
        return [view.block(self.frames) for view in self.views()]

    def payload_entries(self) -> List[Dict[str, Any]]:
        """The artifact's payload spec (scalars carry their value)."""
        from repro.results.artifacts import to_jsonable

        entries: List[Dict[str, Any]] = []
        for field_spec in type(self).PAYLOAD:
            if field_spec.frame is None:
                entries.append(
                    {
                        "name": field_spec.name,
                        "value": to_jsonable(getattr(self, field_spec.name)),
                    }
                )
            else:
                entries.append(field_spec.spec())
        return entries

    def serialized_frames(self) -> Dict[str, Dict[str, Any]]:
        """Every frame in its versioned columnar JSON form."""
        from repro.results.artifacts import to_jsonable

        return {
            name: to_jsonable(frame.to_payload())
            for name, frame in self.frames.items()
        }
