"""Figure 7: BTB MPKI for different entry counts and associativities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
)
from repro.frontend.simulation import simulate_btb
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _workload_mpki(args) -> Dict[Tuple[int, int], float]:
    """Per-workload worker: every BTB geometry on one trace."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    return {
        (entries, associativity): simulate_btb(
            trace, entries=entries, associativity=associativity
        ).mpki
        for entries, associativity in geometries
    }

#: The nine BTB geometries of Figure 7.
BTB_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (entries, associativity)
    for entries in (256, 512, 1024)
    for associativity in (2, 4, 8)
)


@dataclass
class Fig07Result:
    """BTB MPKI per (suite, geometry)."""

    instructions: int
    geometries: List[Tuple[int, int]] = field(default_factory=lambda: list(BTB_GEOMETRIES))
    #: suite -> (entries, associativity) -> MPKI
    mpki: Dict[Suite, Dict[Tuple[int, int], float]] = field(default_factory=dict)
    #: benchmark -> (entries, associativity) -> MPKI
    per_workload: Dict[str, Dict[Tuple[int, int], float]] = field(default_factory=dict)


def run_fig07(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig07Result:
    """Regenerate the Figure 7 data."""
    instructions = experiment_instructions(instructions)
    geometries = list(geometries or BTB_GEOMETRIES)
    result = Fig07Result(instructions=instructions, geometries=geometries)
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, geometries), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_geometry: Dict[Tuple[int, int], List[float]] = {g: [] for g in geometries}
        for spec, row in zip(specs, rows):
            result.per_workload[spec.name] = row
            for geometry, mpki in row.items():
                per_geometry[geometry].append(mpki)
        result.mpki[suite] = {g: mean(v) for g, v in per_geometry.items()}
    return result


def tables_fig07(result: Fig07Result) -> List[TableBlock]:
    """Figure 7 bars as table blocks (MPKI)."""
    headers = ["suite"] + [f"{e}e/{a}w" for e, a in result.geometries]
    rows = []
    for suite, values in result.mpki.items():
        rows.append(
            [suite.label] + [f"{values[g]:.2f}" for g in result.geometries]
        )
    return [block(headers, rows)]


def format_fig07(result: Fig07Result) -> str:
    """Render the Figure 7 bars as a table (MPKI)."""
    return render_blocks(tables_fig07(result))


def _constants() -> Dict[str, object]:
    """Key material: the BTB geometry grid Figure 7 sweeps."""
    return {"geometries": [list(geometry) for geometry in BTB_GEOMETRIES]}


SPEC = ExperimentSpec(
    name="fig7",
    title="Figure 7: BTB MPKI for different entry counts and associativities",
    runner=run_fig07,
    tables=tables_fig07,
    workloads=default_workload_names,
    constants=_constants,
)
