"""Figure 7: BTB MPKI for different entry counts and associativities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    PivotView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    render_blocks,
    suite_cell,
)
from repro.frontend.simulation import simulate_btb
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


def _workload_mpki(args) -> Dict[Tuple[int, int], float]:
    """Per-workload worker: every BTB geometry on one trace."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    return {
        (entries, associativity): simulate_btb(
            trace, entries=entries, associativity=associativity
        ).mpki
        for entries, associativity in geometries
    }

#: The nine BTB geometries of Figure 7.
BTB_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (entries, associativity)
    for entries in (256, 512, 1024)
    for associativity in (2, 4, 8)
)


@dataclass
class Fig07Result(FrameResult):
    """BTB MPKI per (suite, geometry).

    Frames:

    ``suites`` (primary)
        One row per (suite, entries, ways): suite-average MPKI.
    ``workloads``
        One row per (workload, entries, ways): MPKI.
    """

    instructions: int
    geometries: List[Tuple[int, int]] = field(
        default_factory=lambda: list(BTB_GEOMETRIES)
    )
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "suites"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("geometries"),
        PayloadField.pivot(
            "mpki", "suites", [["suite"], ["entries", "ways"]], value="mpki"
        ),
        PayloadField.pivot(
            "per_workload",
            "workloads",
            [["workload"], ["entries", "ways"]],
            value="mpki",
        ),
    )
    VIEWS = (
        PivotView(
            frame="suites",
            index=(("suite", "suite", suite_cell),),
            key=("entries", "ways"),
            value="mpki",
            header=lambda key: f"{key[0]}e/{key[1]}w",
            cell=fixed(2),
        ),
    )


def run_fig07(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig07Result:
    """Regenerate the Figure 7 data."""
    instructions = experiment_instructions(instructions)
    geometries = list(geometries or BTB_GEOMETRIES)
    suite_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_mpki, (instructions, geometries), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_geometry: Dict[Tuple[int, int], List[float]] = {g: [] for g in geometries}
        for spec, row in zip(specs, rows):
            for geometry, mpki in row.items():
                workload_rows.append((spec.name, *geometry, mpki))
                per_geometry[geometry].append(mpki)
        for geometry in geometries:
            suite_rows.append((suite, *geometry, mean(per_geometry[geometry])))
    return Fig07Result(
        instructions=instructions,
        geometries=geometries,
        frames={
            "suites": ResultFrame.from_rows(
                ["suite", "entries", "ways", "mpki"], suite_rows
            ),
            "workloads": ResultFrame.from_rows(
                ["workload", "entries", "ways", "mpki"], workload_rows
            ),
        },
    )


def tables_fig07(result: Fig07Result) -> List[TableBlock]:
    """Figure 7 bars as table blocks (MPKI)."""
    return result.tables()


def format_fig07(result: Fig07Result) -> str:
    """Render the Figure 7 bars as a table (MPKI)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the BTB geometry grid Figure 7 sweeps."""
    return {"geometries": [list(geometry) for geometry in BTB_GEOMETRIES]}


SPEC = ExperimentSpec(
    name="fig7",
    title="Figure 7: BTB MPKI for different entry counts and associativities",
    runner=run_fig07,
    tables=tables_fig07,
    workloads=default_workload_names,
    constants=_constants,
)
