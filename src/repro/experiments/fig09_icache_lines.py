"""Figure 9: I-cache MPKI versus line width for specific benchmarks (16KB)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.line_usefulness import analyze_line_usefulness
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    suite_workloads,
    workload_trace,
)
from repro.frontend.simulation import simulate_icache

#: The benchmarks shown in Figure 9 of the paper.
FIGURE9_WORKLOADS = ("CoEVP", "CoGL", "fma3d", "xalancbmk", "omnetpp")

#: Line width (bytes) x associativity combinations of Figure 9.
LINE_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (line_bytes, associativity)
    for line_bytes in (32, 64, 128)
    for associativity in (2, 4, 8)
)

CACHE_SIZE_BYTES = 16 * 1024


@dataclass
class Fig09Result:
    """I-cache MPKI per (workload, line geometry) plus line usefulness."""

    instructions: int
    workloads: List[str] = field(default_factory=list)
    geometries: List[Tuple[int, int]] = field(default_factory=lambda: list(LINE_GEOMETRIES))
    #: workload -> (line bytes, associativity) -> MPKI
    mpki: Dict[str, Dict[Tuple[int, int], float]] = field(default_factory=dict)
    #: workload -> 128B line usefulness (fraction)
    usefulness_128: Dict[str, float] = field(default_factory=dict)


def run_fig09(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    workloads: Optional[Sequence[str]] = None,
) -> Fig09Result:
    """Regenerate the Figure 9 data."""
    names = list(workloads or FIGURE9_WORKLOADS)
    result = Fig09Result(instructions=instructions, workloads=names)
    for spec in suite_workloads(names=names):
        trace = workload_trace(spec, instructions)
        result.mpki[spec.name] = {}
        for line_bytes, associativity in result.geometries:
            mpki = simulate_icache(
                trace,
                size_bytes=CACHE_SIZE_BYTES,
                line_bytes=line_bytes,
                associativity=associativity,
            ).mpki
            result.mpki[spec.name][(line_bytes, associativity)] = mpki
        result.usefulness_128[spec.name] = analyze_line_usefulness(
            trace, line_bytes=128
        ).average_usefulness
    return result


def format_fig09(result: Fig09Result) -> str:
    """Render the Figure 9 bars as a table (MPKI, plus 128B usefulness)."""
    headers = (
        ["workload"]
        + [f"{lb}B/{a}w" for lb, a in result.geometries]
        + ["128B usefulness"]
    )
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.mpki[workload][g]:.2f}" for g in result.geometries]
            + [f"{100 * result.usefulness_128[workload]:.0f}%"]
        )
    return format_table(headers, rows)
