"""Figure 9: I-cache MPKI versus line width for specific benchmarks (16KB)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.line_usefulness import analyze_line_usefulness
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    PivotView,
    experiment_instructions,
    fixed,
    percent,
    render_blocks,
)
from repro.frontend.simulation import simulate_icache
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.workloads.trace_cache import workload_trace

#: The benchmarks shown in Figure 9 of the paper.
FIGURE9_WORKLOADS = ("CoEVP", "CoGL", "fma3d", "xalancbmk", "omnetpp")

#: Line width (bytes) x associativity combinations of Figure 9.
LINE_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (line_bytes, associativity)
    for line_bytes in (32, 64, 128)
    for associativity in (2, 4, 8)
)

CACHE_SIZE_BYTES = 16 * 1024


@dataclass
class Fig09Result(FrameResult):
    """I-cache MPKI per (workload, line geometry) plus line usefulness.

    Frames:

    ``lines`` (primary)
        One row per (workload, line bytes, ways): MPKI.
    ``usefulness``
        One row per workload: 128B line usefulness (fraction).
    """

    instructions: int
    workloads: List[str] = field(default_factory=list)
    geometries: List[Tuple[int, int]] = field(
        default_factory=lambda: list(LINE_GEOMETRIES)
    )
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "lines"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("workloads"),
        PayloadField.scalar("geometries"),
        PayloadField.pivot(
            "mpki", "lines", [["workload"], ["line_bytes", "ways"]], value="mpki"
        ),
        PayloadField.pivot(
            "usefulness_128", "usefulness", [["workload"]], value="usefulness_128"
        ),
    )
    VIEWS = (
        PivotView(
            frame="lines",
            index=(("workload", "workload", str),),
            key=("line_bytes", "ways"),
            value="mpki",
            header=lambda key: f"{key[0]}B/{key[1]}w",
            cell=fixed(2),
            extra=(
                ("usefulness", "usefulness_128", "128B usefulness", percent(0, "%")),
            ),
        ),
    )


def _workload_lines(args) -> Tuple[Dict[Tuple[int, int], float], float]:
    """Per-workload worker: every line geometry plus 128B usefulness."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    mpki = {
        (line_bytes, associativity): simulate_icache(
            trace,
            size_bytes=CACHE_SIZE_BYTES,
            line_bytes=line_bytes,
            associativity=associativity,
        ).mpki
        for line_bytes, associativity in geometries
    }
    usefulness = analyze_line_usefulness(trace, line_bytes=128).average_usefulness
    return mpki, usefulness


def run_fig09(
    instructions: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig09Result:
    """Regenerate the Figure 9 data.

    The per-workload simulation runs through the current session's
    sweep engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    names = list(workloads or FIGURE9_WORKLOADS)
    geometries = list(LINE_GEOMETRIES)
    line_rows: List[tuple] = []
    usefulness_rows: List[tuple] = []
    specs, rows = current_session().workload_sweep(
        _workload_lines,
        (instructions, tuple(geometries)),
        names=names,
        parallel=run_parallel,
        processes=processes,
    )
    for spec, (mpki, usefulness) in zip(specs, rows):
        for geometry, value in mpki.items():
            line_rows.append((spec.name, *geometry, value))
        usefulness_rows.append((spec.name, usefulness))
    return Fig09Result(
        instructions=instructions,
        workloads=names,
        geometries=geometries,
        frames={
            "lines": ResultFrame.from_rows(
                ["workload", "line_bytes", "ways", "mpki"], line_rows
            ),
            "usefulness": ResultFrame.from_rows(
                ["workload", "usefulness_128"], usefulness_rows
            ),
        },
    )


def tables_fig09(result: Fig09Result) -> List[TableBlock]:
    """Figure 9 bars as table blocks (MPKI, plus 128B usefulness)."""
    return result.tables()


def format_fig09(result: Fig09Result) -> str:
    """Render the Figure 9 bars as a table (MPKI, plus 128B usefulness)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the line geometry grid and fixed cache size."""
    return {
        "geometries": [list(geometry) for geometry in LINE_GEOMETRIES],
        "cache_size_bytes": CACHE_SIZE_BYTES,
    }


SPEC = ExperimentSpec(
    name="fig9",
    title="Figure 9: I-cache MPKI versus line width for specific benchmarks",
    runner=run_fig09,
    tables=tables_fig09,
    workloads=lambda: tuple(FIGURE9_WORKLOADS),
    constants=_constants,
)
