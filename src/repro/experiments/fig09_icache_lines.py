"""Figure 9: I-cache MPKI versus line width for specific benchmarks (16KB)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.line_usefulness import analyze_line_usefulness
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    render_blocks,
)
from repro.frontend.simulation import simulate_icache
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.workloads.trace_cache import workload_trace

#: The benchmarks shown in Figure 9 of the paper.
FIGURE9_WORKLOADS = ("CoEVP", "CoGL", "fma3d", "xalancbmk", "omnetpp")

#: Line width (bytes) x associativity combinations of Figure 9.
LINE_GEOMETRIES: Tuple[Tuple[int, int], ...] = tuple(
    (line_bytes, associativity)
    for line_bytes in (32, 64, 128)
    for associativity in (2, 4, 8)
)

CACHE_SIZE_BYTES = 16 * 1024


@dataclass
class Fig09Result:
    """I-cache MPKI per (workload, line geometry) plus line usefulness."""

    instructions: int
    workloads: List[str] = field(default_factory=list)
    geometries: List[Tuple[int, int]] = field(default_factory=lambda: list(LINE_GEOMETRIES))
    #: workload -> (line bytes, associativity) -> MPKI
    mpki: Dict[str, Dict[Tuple[int, int], float]] = field(default_factory=dict)
    #: workload -> 128B line usefulness (fraction)
    usefulness_128: Dict[str, float] = field(default_factory=dict)


def _workload_lines(args) -> Tuple[Dict[Tuple[int, int], float], float]:
    """Per-workload worker: every line geometry plus 128B usefulness."""
    spec, instructions, geometries = args
    trace = workload_trace(spec, instructions)
    mpki = {
        (line_bytes, associativity): simulate_icache(
            trace,
            size_bytes=CACHE_SIZE_BYTES,
            line_bytes=line_bytes,
            associativity=associativity,
        ).mpki
        for line_bytes, associativity in geometries
    }
    usefulness = analyze_line_usefulness(trace, line_bytes=128).average_usefulness
    return mpki, usefulness


def run_fig09(
    instructions: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig09Result:
    """Regenerate the Figure 9 data.

    The per-workload simulation runs through the current session's
    sweep engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    names = list(workloads or FIGURE9_WORKLOADS)
    result = Fig09Result(instructions=instructions, workloads=names)
    specs, rows = current_session().workload_sweep(
        _workload_lines,
        (instructions, tuple(result.geometries)),
        names=names,
        parallel=run_parallel,
        processes=processes,
    )
    for spec, (mpki, usefulness) in zip(specs, rows):
        result.mpki[spec.name] = mpki
        result.usefulness_128[spec.name] = usefulness
    return result


def tables_fig09(result: Fig09Result) -> List[TableBlock]:
    """Figure 9 bars as table blocks (MPKI, plus 128B usefulness)."""
    headers = (
        ["workload"]
        + [f"{lb}B/{a}w" for lb, a in result.geometries]
        + ["128B usefulness"]
    )
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.mpki[workload][g]:.2f}" for g in result.geometries]
            + [f"{100 * result.usefulness_128[workload]:.0f}%"]
        )
    return [block(headers, rows)]


def format_fig09(result: Fig09Result) -> str:
    """Render the Figure 9 bars as a table (MPKI, plus 128B usefulness)."""
    return render_blocks(tables_fig09(result))


def _constants() -> Dict[str, object]:
    """Key material: the line geometry grid and fixed cache size."""
    return {
        "geometries": [list(geometry) for geometry in LINE_GEOMETRIES],
        "cache_size_bytes": CACHE_SIZE_BYTES,
    }


SPEC = ExperimentSpec(
    name="fig9",
    title="Figure 9: I-cache MPKI versus line width for specific benchmarks",
    runner=run_fig09,
    tables=tables_fig09,
    workloads=lambda: tuple(FIGURE9_WORKLOADS),
    constants=_constants,
)
