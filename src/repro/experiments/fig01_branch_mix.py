"""Figure 1: dynamic branch instruction breakdown per suite and section."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_mix import BranchMix, analyze_branch_mix
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import FIGURE1_CATEGORIES, CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig01Result:
    """Per-suite, per-section branch category shares (of all instructions)."""

    instructions: int
    #: suite -> section -> category -> fraction of dynamic instructions
    categories: Dict[Suite, Dict[CodeSection, Dict[str, float]]] = field(default_factory=dict)
    #: suite -> section -> total branch fraction
    branch_fraction: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    #: per-workload total branch fraction (for per-benchmark inspection)
    per_workload: Dict[str, float] = field(default_factory=dict)


def _workload_mix(args) -> Dict[CodeSection, BranchMix]:
    """Per-workload worker: branch mix of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_branch_mix(trace, section) for section in sections_for(spec)
    }


def run_fig01(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig01Result:
    """Regenerate the Figure 1 data.

    The per-workload analysis (trace generation plus the per-section
    branch mixes) runs through the current session's sweep engine;
    ``run_parallel`` overrides the session's parallelism setting.
    """
    instructions = experiment_instructions(instructions)
    result = Fig01Result(instructions=instructions)
    sweep = current_session().suite_sweep(
        _workload_mix, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section_mixes: Dict[CodeSection, List] = {}
        for spec, mixes in zip(specs, rows):
            for section, mix in mixes.items():
                per_section_mixes.setdefault(section, []).append(mix)
                if section is CodeSection.TOTAL:
                    result.per_workload[spec.name] = mix.branch_fraction
        result.categories[suite] = {}
        result.branch_fraction[suite] = {}
        for section, mixes in per_section_mixes.items():
            result.branch_fraction[suite][section] = mean(
                m.branch_fraction for m in mixes
            )
            result.categories[suite][section] = {
                category: mean(m.category_fractions[category] for m in mixes)
                for category in FIGURE1_CATEGORIES
            }
    return result


def tables_fig01(result: Fig01Result) -> List[TableBlock]:
    """Figure 1 stacked-bar data as table blocks (values in %)."""
    headers = ["suite", "section", "branches%"] + list(FIGURE1_CATEGORIES)
    rows = []
    for suite, sections in result.categories.items():
        for section, categories in sections.items():
            rows.append(
                [suite.label, section.label,
                 f"{100 * result.branch_fraction[suite][section]:.1f}"]
                + [f"{100 * categories[c]:.2f}" for c in FIGURE1_CATEGORIES]
            )
    return [block(headers, rows)]


def format_fig01(result: Fig01Result) -> str:
    """Render the Figure 1 stacked-bar data as a table (values in %)."""
    return render_blocks(tables_fig01(result))


SPEC = ExperimentSpec(
    name="fig1",
    title="Figure 1: dynamic branch instruction breakdown per suite and section",
    runner=run_fig01,
    tables=tables_fig01,
    workloads=default_workload_names,
)
