"""Figure 1: dynamic branch instruction breakdown per suite and section."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.branch_mix import BranchMix, analyze_branch_mix
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    mean,
    percent,
    render_blocks,
    section_cell,
    sections_for,
    suite_cell,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import FIGURE1_CATEGORIES, CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig01Result(FrameResult):
    """Per-suite, per-section branch category shares (of all instructions).

    Frames:

    ``sections`` (primary)
        One row per (suite, section): the total branch fraction plus
        one column per Figure 1 category.
    ``workloads``
        One row per workload: its total branch fraction.
    """

    instructions: int
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "sections"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.pivot(
            "categories",
            "sections",
            [["suite"], ["section"]],
            columns=FIGURE1_CATEGORIES,
        ),
        PayloadField.pivot(
            "branch_fraction",
            "sections",
            [["suite"], ["section"]],
            value="branch_fraction",
        ),
        PayloadField.pivot(
            "per_workload", "workloads", [["workload"]], value="branch_fraction"
        ),
    )
    VIEWS = (
        RowView(
            "sections",
            (
                ("suite", "suite", suite_cell),
                ("section", "section", section_cell),
                ("branch_fraction", "branches%", percent(1)),
            )
            + tuple(
                (category, category, percent(2)) for category in FIGURE1_CATEGORIES
            ),
        ),
    )


def _workload_mix(args) -> Dict[CodeSection, BranchMix]:
    """Per-workload worker: branch mix of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_branch_mix(trace, section) for section in sections_for(spec)
    }


def run_fig01(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig01Result:
    """Regenerate the Figure 1 data.

    The per-workload analysis (trace generation plus the per-section
    branch mixes) runs through the current session's sweep engine;
    ``run_parallel`` overrides the session's parallelism setting.
    """
    instructions = experiment_instructions(instructions)
    section_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_mix, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        per_section_mixes: Dict[CodeSection, List[BranchMix]] = {}
        for spec, mixes in zip(specs, rows):
            for section, mix in mixes.items():
                per_section_mixes.setdefault(section, []).append(mix)
                if section is CodeSection.TOTAL:
                    workload_rows.append((spec.name, mix.branch_fraction))
        for section, mixes in per_section_mixes.items():
            section_rows.append(
                (suite, section, mean(m.branch_fraction for m in mixes))
                + tuple(
                    mean(m.category_fractions[category] for m in mixes)
                    for category in FIGURE1_CATEGORIES
                )
            )
    return Fig01Result(
        instructions=instructions,
        frames={
            "sections": ResultFrame.from_rows(
                ["suite", "section", "branch_fraction", *FIGURE1_CATEGORIES],
                section_rows,
            ),
            "workloads": ResultFrame.from_rows(
                ["workload", "branch_fraction"], workload_rows
            ),
        },
    )


def tables_fig01(result: Fig01Result) -> List[TableBlock]:
    """Figure 1 stacked-bar data as table blocks (values in %)."""
    return result.tables()


def format_fig01(result: Fig01Result) -> str:
    """Render the Figure 1 stacked-bar data as a table (values in %)."""
    return render_blocks(result.tables())


SPEC = ExperimentSpec(
    name="fig1",
    title="Figure 1: dynamic branch instruction breakdown per suite and section",
    runner=run_fig01,
    tables=tables_fig01,
    workloads=default_workload_names,
)
