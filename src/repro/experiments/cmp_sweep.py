"""CMP scenario sweeps: arbitrary configuration grids over the workloads.

Generalizes the Section V comparison (Figures 10/11) into named
scenarios of :class:`~repro.uarch.sweep.SweepScenario` grids -- core
counts from 1 to 64, baseline/tailored/asymmetric mixes, private-L2
sizes -- evaluated with exactly the same profile -> schedule -> power
pipeline as the paper's four chips.  Exposed on the CLI as
``repro-frontend cmpsweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    mean,
    normalize_to_reference,
    render_blocks,
)
from repro.power.cmp_power import evaluate_cmp_energy
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp
from repro.uarch.sweep import SweepScenario, get_scenario, standard_scenarios
from repro.workloads.suites import Suite

#: Metrics reported per scenario grid point.
SWEEP_METRICS = ("time", "power", "energy")

#: Workloads the sweep evaluates by default: the Figure 11 selection (a
#: representative HPC/desktop mix) keeps full grids tractable; pass
#: ``workloads=`` or ``suites=`` for broader coverage.
DEFAULT_SWEEP_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class CmpSweepResult:
    """Normalized metrics for every scenario grid point and workload."""

    instructions: int
    scenarios: List[SweepScenario] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    #: scenario name -> workload -> metric -> cmp name -> normalized value
    per_workload: Dict[str, Dict[str, Dict[str, Dict[str, float]]]] = field(
        default_factory=dict
    )
    #: scenario name -> metric -> cmp name -> workload-mean normalized value
    summary: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)


def _sweep_workload(args) -> Dict[str, Dict[str, float]]:
    """Per-workload worker: normalized metrics on one scenario grid."""
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    absolute: Dict[str, Dict[str, float]] = {metric: {} for metric in SWEEP_METRICS}
    for cmp in cmps:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        absolute["time"][cmp.name] = run.execution_seconds
        absolute["power"][cmp.name] = energy.average_power_w
        absolute["energy"][cmp.name] = energy.energy_j
    reference = cmps[0].name
    return {
        metric: normalize_to_reference(values, reference)
        for metric, values in absolute.items()
    }


def run_cmpsweep(
    instructions: Optional[int] = None,
    scenarios: Optional[Sequence[SweepScenario]] = None,
    scenario_names: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> CmpSweepResult:
    """Evaluate CMP sweep scenarios over a workload selection.

    ``scenarios`` takes explicit :class:`SweepScenario` objects;
    ``scenario_names`` selects built-ins by name (both default to every
    built-in scenario).  Workload profiles are shared across scenarios
    through the process-wide trace/profile caches, so adding a scenario
    only adds the (cheap) scheduling and power arithmetic.  The
    per-workload evaluation runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    session = current_session()
    if scenarios is None:
        if scenario_names is None:
            scenarios = list(standard_scenarios().values())
        else:
            scenarios = [get_scenario(name) for name in scenario_names]
    else:
        scenarios = list(scenarios)
    if workloads is None and suites is None:
        workloads = DEFAULT_SWEEP_WORKLOADS
    specs = session.workloads(suites=suites, names=workloads)

    result = CmpSweepResult(
        instructions=instructions,
        scenarios=scenarios,
        workloads=[spec.name for spec in specs],
    )
    for scenario in scenarios:
        _, rows = session.workload_sweep(
            _sweep_workload,
            (instructions, scenario.cmps),
            specs=specs,
            parallel=run_parallel,
            processes=processes,
        )
        per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
        for spec, normalized in zip(specs, rows):
            per_workload[spec.name] = normalized
        result.per_workload[scenario.name] = per_workload
        result.summary[scenario.name] = {
            metric: {
                cmp.name: mean(
                    per_workload[spec.name][metric][cmp.name] for spec in specs
                )
                for cmp in scenario.cmps
            }
            for metric in SWEEP_METRICS
        }
    return result


def tables_cmpsweep(result: CmpSweepResult) -> List[TableBlock]:
    """One normalized time/power/energy table block per scenario."""
    blocks: List[TableBlock] = []
    for scenario in result.scenarios:
        headers = ["configuration"] + list(SWEEP_METRICS)
        rows: List[List[str]] = []
        summary = result.summary[scenario.name]
        for cmp in scenario.cmps:
            rows.append(
                [cmp.name]
                + [f"{summary[metric][cmp.name]:.3f}" for metric in SWEEP_METRICS]
            )
        blocks.append(
            block(
                headers,
                rows,
                title=(
                    f"scenario {scenario.name}: {scenario.description}\n"
                    f"(workload-mean, normalized to {scenario.reference.name})"
                ),
                name=scenario.name,
            )
        )
    return blocks


def format_cmpsweep(result: CmpSweepResult) -> str:
    """Render one normalized time/power/energy table per scenario."""
    return render_blocks(tables_cmpsweep(result))


def _constants() -> Dict[str, object]:
    """Key material: the default workload mix and reported metrics."""
    return {"metrics": list(SWEEP_METRICS)}


SPEC = ExperimentSpec(
    name="cmpsweep",
    title="CMP scenario sweeps: configuration grids over the workloads",
    runner=run_cmpsweep,
    tables=tables_cmpsweep,
    workloads=lambda: tuple(DEFAULT_SWEEP_WORKLOADS),
    constants=_constants,
)
