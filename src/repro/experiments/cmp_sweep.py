"""CMP scenario sweeps: arbitrary configuration grids over the workloads.

Generalizes the Section V comparison (Figures 10/11) into named
scenarios of :class:`~repro.uarch.sweep.SweepScenario` grids -- core
counts from 1 to 64, baseline/tailored/asymmetric mixes, private-L2
sizes -- evaluated with exactly the same profile -> schedule -> power
pipeline as the paper's four chips.  Exposed on the CLI as
``repro-frontend cmpsweep``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    PivotView,
    experiment_instructions,
    fixed,
    mean,
    normalize_to_reference,
    render_blocks,
)
from repro.power.cmp_power import evaluate_cmp_energy
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp
from repro.uarch.sweep import SweepScenario, get_scenario, standard_scenarios
from repro.workloads.suites import Suite

#: Metrics reported per scenario grid point.
SWEEP_METRICS = ("time", "power", "energy")

#: Workloads the sweep evaluates by default: the Figure 11 selection (a
#: representative HPC/desktop mix) keeps full grids tractable; pass
#: ``workloads=`` or ``suites=`` for broader coverage.
DEFAULT_SWEEP_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class CmpSweepResult(FrameResult):
    """Normalized metrics for every scenario grid point and workload.

    Frames:

    ``summary`` (primary)
        One row per (scenario, metric, cmp): workload-mean normalized
        value.
    ``workloads``
        One row per (scenario, workload, metric, cmp): normalized
        value.
    """

    instructions: int
    scenarios: List[SweepScenario] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "summary"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("scenarios"),
        PayloadField.scalar("workloads"),
        PayloadField.pivot(
            "per_workload",
            "workloads",
            [["scenario"], ["workload"], ["metric"], ["cmp"]],
            value="value",
        ),
        PayloadField.pivot(
            "summary",
            "summary",
            [["scenario"], ["metric"], ["cmp"]],
            value="value",
        ),
    )

    def views(self) -> Sequence[PivotView]:
        return tuple(
            PivotView(
                frame="summary",
                index=(("cmp", "configuration", str),),
                key=("metric",),
                value="value",
                header=lambda key: str(key[0]),
                cell=fixed(3),
                filter=(("scenario", scenario.name),),
                title=(
                    f"scenario {scenario.name}: {scenario.description}\n"
                    f"(workload-mean, normalized to {scenario.reference.name})"
                ),
                name=scenario.name,
            )
            for scenario in self.scenarios
        )


def _sweep_workload(args) -> Dict[str, Dict[str, float]]:
    """Per-workload worker: normalized metrics on one scenario grid."""
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    absolute: Dict[str, Dict[str, float]] = {metric: {} for metric in SWEEP_METRICS}
    for cmp in cmps:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        absolute["time"][cmp.name] = run.execution_seconds
        absolute["power"][cmp.name] = energy.average_power_w
        absolute["energy"][cmp.name] = energy.energy_j
    reference = cmps[0].name
    return {
        metric: normalize_to_reference(values, reference)
        for metric, values in absolute.items()
    }


def run_cmpsweep(
    instructions: Optional[int] = None,
    scenarios: Optional[Sequence[SweepScenario]] = None,
    scenario_names: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> CmpSweepResult:
    """Evaluate CMP sweep scenarios over a workload selection.

    ``scenarios`` takes explicit :class:`SweepScenario` objects;
    ``scenario_names`` selects built-ins by name (both default to every
    built-in scenario).  Workload profiles are shared across scenarios
    through the process-wide trace/profile caches, so adding a scenario
    only adds the (cheap) scheduling and power arithmetic.  The
    per-workload evaluation runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    session = current_session()
    if scenarios is None:
        if scenario_names is None:
            scenarios = list(standard_scenarios().values())
        else:
            scenarios = [get_scenario(name) for name in scenario_names]
    else:
        scenarios = list(scenarios)
    if workloads is None and suites is None:
        workloads = DEFAULT_SWEEP_WORKLOADS
    specs = session.workloads(suites=suites, names=workloads)

    summary_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    for scenario in scenarios:
        _, rows = session.workload_sweep(
            _sweep_workload,
            (instructions, scenario.cmps),
            specs=specs,
            parallel=run_parallel,
            processes=processes,
        )
        per_workload: Dict[str, Dict[str, Dict[str, float]]] = {}
        for spec, normalized in zip(specs, rows):
            per_workload[spec.name] = normalized
            for metric in SWEEP_METRICS:
                for cmp in scenario.cmps:
                    workload_rows.append(
                        (
                            scenario.name,
                            spec.name,
                            metric,
                            cmp.name,
                            normalized[metric][cmp.name],
                        )
                    )
        for metric in SWEEP_METRICS:
            for cmp in scenario.cmps:
                value = mean(
                    per_workload[spec.name][metric][cmp.name] for spec in specs
                )
                summary_rows.append((scenario.name, metric, cmp.name, value))
    return CmpSweepResult(
        instructions=instructions,
        scenarios=scenarios,
        workloads=[spec.name for spec in specs],
        frames={
            "summary": ResultFrame.from_rows(
                ["scenario", "metric", "cmp", "value"], summary_rows
            ),
            "workloads": ResultFrame.from_rows(
                ["scenario", "workload", "metric", "cmp", "value"], workload_rows
            ),
        },
    )


def tables_cmpsweep(result: CmpSweepResult) -> List[TableBlock]:
    """One normalized time/power/energy table block per scenario."""
    return result.tables()


def format_cmpsweep(result: CmpSweepResult) -> str:
    """Render one normalized time/power/energy table per scenario."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the default workload mix and reported metrics."""
    return {"metrics": list(SWEEP_METRICS)}


SPEC = ExperimentSpec(
    name="cmpsweep",
    title="CMP scenario sweeps: configuration grids over the workloads",
    runner=run_cmpsweep,
    tables=tables_cmpsweep,
    workloads=lambda: tuple(DEFAULT_SWEEP_WORKLOADS),
    constants=_constants,
)
