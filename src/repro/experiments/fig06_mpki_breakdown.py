"""Figure 6: branch MPKI breakdown for gshare on a workload subset.

Mispredictions are split by the outcome class of the mispredicted
branch: not taken, taken backward, or taken forward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    fixed,
    render_blocks,
)
from repro.frontend.predictors import make_predictor
from repro.frontend.simulation import simulate_branch_predictors
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.workloads.trace_cache import workload_trace

#: The benchmarks shown in Figure 6 of the paper.
FIGURE6_WORKLOADS = (
    "CoEVP", "CoMD", "botsspar", "imagick", "EP", "FT", "astar", "gobmk", "xalancbmk",
)

#: The three gshare configurations compared in Figure 6.
FIGURE6_CONFIGS = (
    ("gshare-big", "gshare", "big", False),
    ("gshare-small", "gshare", "small", False),
    ("L-gshare-small", "gshare", "small", True),
)

#: The misprediction outcome classes, in stacking order.
BREAKDOWN_CLASSES = ("not taken", "taken backward", "taken forward")


@dataclass
class Fig06Result(FrameResult):
    """MPKI breakdown per (workload, configuration).

    Frames:

    ``breakdown`` (primary)
        One row per (workload, configuration): MPKI per outcome class
        plus the total.
    """

    instructions: int
    workloads: List[str] = field(default_factory=list)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "breakdown"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("workloads"),
        PayloadField.pivot(
            "breakdown",
            "breakdown",
            [["workload"], ["config"]],
            columns=BREAKDOWN_CLASSES,
        ),
    )
    VIEWS = (
        RowView(
            "breakdown",
            (
                ("workload", "workload", str),
                ("config", "config", str),
            )
            + tuple((cls, cls, fixed(2)) for cls in BREAKDOWN_CLASSES)
            + (("total", "total", fixed(2)),),
        ),
    )

    def total_mpki(self, workload: str, config: str) -> float:
        """Total MPKI of one configuration on one workload."""
        return sum(self.breakdown[workload][config].values())


def _workload_breakdown(args) -> Dict[str, Dict[str, float]]:
    """Per-workload worker: MPKI breakdown of every Figure 6 config."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    predictors = [
        make_predictor(kind, budget, with_loop)
        for _, kind, budget, with_loop in FIGURE6_CONFIGS
    ]
    outcomes = simulate_branch_predictors(trace, predictors)
    return {
        label: outcome.breakdown_mpki()
        for (label, _, _, _), outcome in zip(FIGURE6_CONFIGS, outcomes)
    }


def run_fig06(
    instructions: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig06Result:
    """Regenerate the Figure 6 data.

    The per-workload simulation runs through the current session's
    sweep engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    names = list(workloads or FIGURE6_WORKLOADS)
    breakdown_rows: List[tuple] = []
    specs, rows = current_session().workload_sweep(
        _workload_breakdown,
        (instructions,),
        names=names,
        parallel=run_parallel,
        processes=processes,
    )
    for spec, breakdown in zip(specs, rows):
        for label, classes in breakdown.items():
            breakdown_rows.append(
                (spec.name, label)
                + tuple(classes[cls] for cls in BREAKDOWN_CLASSES)
                + (sum(classes.values()),)
            )
    return Fig06Result(
        instructions=instructions,
        workloads=names,
        frames={
            "breakdown": ResultFrame.from_rows(
                ["workload", "config", *BREAKDOWN_CLASSES, "total"], breakdown_rows
            ),
        },
    )


def tables_fig06(result: Fig06Result) -> List[TableBlock]:
    """Figure 6 stacked bars as table blocks (MPKI)."""
    return result.tables()


def format_fig06(result: Fig06Result) -> str:
    """Render the Figure 6 stacked bars as a table (MPKI)."""
    return render_blocks(result.tables())


def _constants() -> Dict[str, object]:
    """Key material: the gshare configurations Figure 6 compares."""
    return {"configurations": [label for label, _, _, _ in FIGURE6_CONFIGS]}


SPEC = ExperimentSpec(
    name="fig6",
    title="Figure 6: branch MPKI breakdown for gshare on a workload subset",
    runner=run_fig06,
    tables=tables_fig06,
    workloads=lambda: tuple(FIGURE6_WORKLOADS),
    constants=_constants,
)
