"""Figure 11: per-benchmark execution time normalized to the Baseline CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    normalize_to_reference,
    render_blocks,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp

#: The benchmarks shown in Figure 11 of the paper.
FIGURE11_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class Fig11Result:
    """Normalized execution time per (workload, CMP configuration)."""

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    #: workload -> cmp name -> execution time normalized to the Baseline CMP
    normalized_time: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _evaluate_workload_time(args) -> Dict[str, float]:
    """Per-workload worker: normalized execution time per CMP.

    Shares the trace/profile caches with Figure 10, so running fig11
    after fig10 (or twice) re-simulates nothing in-process.
    """
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    times = {cmp.name: run_on_cmp(profile, cmp).execution_seconds for cmp in cmps}
    return normalize_to_reference(times, cmps[0].name)


def run_fig11(
    instructions: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig11Result:
    """Regenerate the Figure 11 data.

    The per-workload evaluation runs through the current session's
    sweep engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    cmps = tuple(cmps)
    names = list(workloads or FIGURE11_WORKLOADS)
    result = Fig11Result(
        instructions=instructions,
        cmp_names=[cmp.name for cmp in cmps],
        workloads=names,
    )
    specs, rows = current_session().workload_sweep(
        _evaluate_workload_time,
        (instructions, cmps),
        names=names,
        parallel=run_parallel,
        processes=processes,
    )
    for spec, normalized in zip(specs, rows):
        result.normalized_time[spec.name] = normalized
    return result


def tables_fig11(result: Fig11Result) -> List[TableBlock]:
    """Figure 11 bars as table blocks."""
    headers = ["workload"] + result.cmp_names
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.normalized_time[workload][name]:.3f}" for name in result.cmp_names]
        )
    return [block(headers, rows)]


def format_fig11(result: Fig11Result) -> str:
    """Render the Figure 11 bars as a table."""
    return render_blocks(tables_fig11(result))


def _derive_from_fig10(dependencies, config) -> Optional[Fig11Result]:
    """Build the Figure 11 result from a Figure 10 artifact.

    Figure 11 is a per-benchmark slice of Figure 10's normalized
    execution-time metric, so when a compatible Figure 10 artifact is
    available (same instruction budget, the standard chips, and
    coverage of every Figure 11 benchmark) the result can be assembled
    without simulating anything.  The sliced values are the very floats
    Figure 10 computed, so the derived artifact is bit-identical to a
    directly computed one.
    """
    fig10 = dependencies.get("fig10")
    if fig10 is None:
        return None
    payload = fig10.get("payload") or {}
    if payload.get("instructions") != config.get("instructions"):
        return None
    cmp_names = list(payload.get("cmp_names") or [])
    if cmp_names != [cmp.name for cmp in STANDARD_CMP_CONFIGS]:
        return None
    per_workload = payload.get("per_workload") or {}
    names = list(FIGURE11_WORKLOADS)
    if any(name not in per_workload for name in names):
        return None
    result = Fig11Result(
        instructions=int(config["instructions"]),
        cmp_names=cmp_names,
        workloads=names,
    )
    for name in names:
        times = per_workload[name].get("execution time")
        if times is None or any(cmp not in times for cmp in cmp_names):
            return None
        result.normalized_time[name] = {cmp: float(times[cmp]) for cmp in cmp_names}
    return result


def _constants() -> Dict[str, object]:
    """Key material: the four Section V chips Figure 11 compares."""
    return {"cmp_names": [cmp.name for cmp in STANDARD_CMP_CONFIGS]}


SPEC = ExperimentSpec(
    name="fig11",
    title="Figure 11: per-benchmark execution time normalized to the Baseline CMP",
    runner=run_fig11,
    tables=tables_fig11,
    workloads=lambda: tuple(FIGURE11_WORKLOADS),
    constants=_constants,
    dependencies=("fig10",),
    derive=_derive_from_fig10,
)
