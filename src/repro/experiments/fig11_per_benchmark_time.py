"""Figure 11: per-benchmark execution time normalized to the Baseline CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    normalize_to_reference,
    run_sweep,
    suite_workloads,
)
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp

#: The benchmarks shown in Figure 11 of the paper.
FIGURE11_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class Fig11Result:
    """Normalized execution time per (workload, CMP configuration)."""

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    #: workload -> cmp name -> execution time normalized to the Baseline CMP
    normalized_time: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _evaluate_workload_time(args) -> Dict[str, float]:
    """Per-workload worker: normalized execution time per CMP.

    Shares the trace/profile caches with Figure 10, so running fig11
    after fig10 (or twice) re-simulates nothing in-process.
    """
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    times = {cmp.name: run_on_cmp(profile, cmp).execution_seconds for cmp in cmps}
    return normalize_to_reference(times, cmps[0].name)


def run_fig11(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    workloads: Optional[Sequence[str]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
    run_parallel: bool = False,
    processes: Optional[int] = None,
) -> Fig11Result:
    """Regenerate the Figure 11 data.

    With ``run_parallel`` the per-workload evaluation fans out across
    worker processes.
    """
    cmps = tuple(cmps)
    names = list(workloads or FIGURE11_WORKLOADS)
    result = Fig11Result(
        instructions=instructions,
        cmp_names=[cmp.name for cmp in cmps],
        workloads=names,
    )
    specs = suite_workloads(names=names)
    arguments = [(spec, instructions, cmps) for spec in specs]
    rows = run_sweep(_evaluate_workload_time, arguments, run_parallel, processes)
    for spec, normalized in zip(specs, rows):
        result.normalized_time[spec.name] = normalized
    return result


def format_fig11(result: Fig11Result) -> str:
    """Render the Figure 11 bars as a table."""
    headers = ["workload"] + result.cmp_names
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.normalized_time[workload][name]:.3f}" for name in result.cmp_names]
        )
    return format_table(headers, rows)
