"""Figure 11: per-benchmark execution time normalized to the Baseline CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    suite_workloads,
)
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp
from repro.workloads.synthesis import build_workload

#: The benchmarks shown in Figure 11 of the paper.
FIGURE11_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class Fig11Result:
    """Normalized execution time per (workload, CMP configuration)."""

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    #: workload -> cmp name -> execution time normalized to the Baseline CMP
    normalized_time: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_fig11(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    workloads: Optional[Sequence[str]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
) -> Fig11Result:
    """Regenerate the Figure 11 data."""
    names = list(workloads or FIGURE11_WORKLOADS)
    result = Fig11Result(
        instructions=instructions,
        cmp_names=[cmp.name for cmp in cmps],
        workloads=names,
    )
    for spec in suite_workloads(names=names):
        workload = build_workload(spec)
        profile = profile_workload_frontend(workload, instructions)
        times = {cmp.name: run_on_cmp(profile, cmp).execution_seconds for cmp in cmps}
        reference = times[cmps[0].name]
        result.normalized_time[spec.name] = {
            name: time / reference for name, time in times.items()
        }
    return result


def format_fig11(result: Fig11Result) -> str:
    """Render the Figure 11 bars as a table."""
    headers = ["workload"] + result.cmp_names
    rows = []
    for workload in result.workloads:
        rows.append(
            [workload]
            + [f"{result.normalized_time[workload][name]:.3f}" for name in result.cmp_names]
        )
    return format_table(headers, rows)
