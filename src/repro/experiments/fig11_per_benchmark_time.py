"""Figure 11: per-benchmark execution time normalized to the Baseline CMP."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    fixed,
    normalize_to_reference,
    render_blocks,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig
from repro.uarch.simulator import profile_workload_frontend, run_on_cmp

#: The benchmarks shown in Figure 11 of the paper.
FIGURE11_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")


@dataclass
class Fig11Result(FrameResult):
    """Normalized execution time per (workload, CMP configuration).

    Frames:

    ``workloads`` (primary)
        One row per workload: execution time per CMP, normalized to
        the Baseline CMP.
    """

    instructions: int
    cmp_names: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "workloads"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.scalar("cmp_names"),
        PayloadField.scalar("workloads"),
        PayloadField.pivot("normalized_time", "workloads", [["workload"]]),
    )

    def views(self) -> Sequence[RowView]:
        return (
            RowView(
                "workloads",
                (("workload", "workload", str),)
                + tuple((name, name, fixed(3)) for name in self.cmp_names),
            ),
        )


def _evaluate_workload_time(args) -> Dict[str, float]:
    """Per-workload worker: normalized execution time per CMP.

    Shares the trace/profile caches with Figure 10, so running fig11
    after fig10 (or twice) re-simulates nothing in-process.
    """
    spec, instructions, cmps = args
    profile = profile_workload_frontend(spec, instructions)
    times = {cmp.name: run_on_cmp(profile, cmp).execution_seconds for cmp in cmps}
    return normalize_to_reference(times, cmps[0].name)


def run_fig11(
    instructions: Optional[int] = None,
    workloads: Optional[Sequence[str]] = None,
    cmps: Sequence[CmpConfig] = STANDARD_CMP_CONFIGS,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig11Result:
    """Regenerate the Figure 11 data.

    The per-workload evaluation runs through the current session's
    sweep engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    cmps = tuple(cmps)
    cmp_names = [cmp.name for cmp in cmps]
    names = list(workloads or FIGURE11_WORKLOADS)
    specs, rows = current_session().workload_sweep(
        _evaluate_workload_time,
        (instructions, cmps),
        names=names,
        parallel=run_parallel,
        processes=processes,
    )
    workload_rows = [
        (spec.name,) + tuple(normalized[name] for name in cmp_names)
        for spec, normalized in zip(specs, rows)
    ]
    return Fig11Result(
        instructions=instructions,
        cmp_names=cmp_names,
        workloads=names,
        frames={
            "workloads": ResultFrame.from_rows(
                ["workload", *cmp_names], workload_rows
            ),
        },
    )


def tables_fig11(result: Fig11Result) -> List[TableBlock]:
    """Figure 11 bars as table blocks."""
    return result.tables()


def format_fig11(result: Fig11Result) -> str:
    """Render the Figure 11 bars as a table."""
    return render_blocks(result.tables())


def _derive_from_fig10(dependencies, config) -> Optional[Fig11Result]:
    """Build the Figure 11 result from a Figure 10 artifact.

    Figure 11 is a per-benchmark slice of Figure 10's normalized
    execution-time metric, so when a compatible Figure 10 artifact is
    available (same instruction budget, the standard chips, and
    coverage of every Figure 11 benchmark) the result can be assembled
    without simulating anything.  Since the frame-native artifacts the
    slice reads Figure 10's stored ``workloads`` frame directly: the
    sliced cells are the very floats Figure 10 computed, so the derived
    artifact is bit-identical to a directly computed one.
    """
    fig10 = dependencies.get("fig10")
    if fig10 is None:
        return None
    scalars = {
        entry.get("name"): entry.get("value")
        for entry in fig10.get("payload") or []
        if isinstance(entry, dict) and entry.get("frame") is None
    }
    if scalars.get("instructions") != config.get("instructions"):
        return None
    cmp_names = list(scalars.get("cmp_names") or [])
    if cmp_names != [cmp.name for cmp in STANDARD_CMP_CONFIGS]:
        return None
    try:
        frame = ResultFrame.from_payload((fig10.get("frames") or {}).get("workloads"))
    except ValueError:
        return None
    times = frame.select(metric="execution time")
    by_workload = {record.get("workload"): record for record in times.records()}
    names = list(FIGURE11_WORKLOADS)
    rows: List[tuple] = []
    for name in names:
        record = by_workload.get(name)
        if record is None or any(cmp not in record for cmp in cmp_names):
            return None
        rows.append((name,) + tuple(float(record[cmp]) for cmp in cmp_names))
    return Fig11Result(
        instructions=int(config["instructions"]),
        cmp_names=cmp_names,
        workloads=names,
        frames={"workloads": ResultFrame.from_rows(["workload", *cmp_names], rows)},
    )


def _constants() -> Dict[str, object]:
    """Key material: the four Section V chips Figure 11 compares."""
    return {"cmp_names": [cmp.name for cmp in STANDARD_CMP_CONFIGS]}


SPEC = ExperimentSpec(
    name="fig11",
    title="Figure 11: per-benchmark execution time normalized to the Baseline CMP",
    runner=run_fig11,
    tables=tables_fig11,
    workloads=lambda: tuple(FIGURE11_WORKLOADS),
    constants=_constants,
    dependencies=("fig10",),
    derive=_derive_from_fig10,
)
