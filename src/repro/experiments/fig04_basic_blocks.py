"""Figure 4: basic-block length and distance between taken branches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.basic_blocks import BasicBlockStats, analyze_basic_blocks
from repro.api.session import current_session
from repro.experiments.common import (
    experiment_instructions,
    default_workload_names,
    mean,
    render_blocks,
    sections_for,
)
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig04Result:
    """Per-suite, per-section basic-block statistics in bytes."""

    instructions: int
    block_bytes: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    taken_distance_bytes: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    per_workload_block_bytes: Dict[str, float] = field(default_factory=dict)


def _workload_blocks(args) -> Dict[CodeSection, BasicBlockStats]:
    """Per-workload worker: block statistics of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_basic_blocks(trace, section)
        for section in sections_for(spec)
    }


def run_fig04(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig04Result:
    """Regenerate the Figure 4 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    result = Fig04Result(instructions=instructions)
    sweep = current_session().suite_sweep(
        _workload_blocks, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        blocks: Dict[CodeSection, List[float]] = {}
        distances: Dict[CodeSection, List[float]] = {}
        for spec, stats_by_section in zip(specs, rows):
            for section, stats in stats_by_section.items():
                blocks.setdefault(section, []).append(stats.average_block_bytes)
                distances.setdefault(section, []).append(
                    stats.average_taken_distance_bytes
                )
                if section is CodeSection.TOTAL:
                    result.per_workload_block_bytes[spec.name] = stats.average_block_bytes
        result.block_bytes[suite] = {s: mean(v) for s, v in blocks.items()}
        result.taken_distance_bytes[suite] = {s: mean(v) for s, v in distances.items()}
    return result


def hpc_to_desktop_block_ratio(result: Fig04Result) -> float:
    """Ratio of HPC parallel block length to the desktop average."""
    hpc = mean(
        result.block_bytes[suite][CodeSection.PARALLEL]
        for suite in result.block_bytes
        if suite.is_hpc and CodeSection.PARALLEL in result.block_bytes[suite]
    )
    desktop = mean(
        result.block_bytes[suite][CodeSection.TOTAL]
        for suite in result.block_bytes
        if suite.is_desktop
    )
    if desktop == 0:
        return 0.0
    return hpc / desktop


def tables_fig04(result: Fig04Result) -> List[TableBlock]:
    """Figure 4 bars as table blocks (bytes)."""
    headers = ["suite", "section", "avg BBL [B]", "avg taken distance [B]"]
    rows = []
    for suite, sections in result.block_bytes.items():
        for section, block_bytes in sections.items():
            rows.append([
                suite.label,
                section.label,
                f"{block_bytes:.0f}",
                f"{result.taken_distance_bytes[suite][section]:.0f}",
            ])
    return [block(headers, rows)]


def format_fig04(result: Fig04Result) -> str:
    """Render the Figure 4 bars as a table (bytes)."""
    return render_blocks(tables_fig04(result))


SPEC = ExperimentSpec(
    name="fig4",
    title="Figure 4: basic-block length and distance between taken branches",
    runner=run_fig04,
    tables=tables_fig04,
    workloads=default_workload_names,
)
