"""Figure 4: basic-block length and distance between taken branches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.basic_blocks import BasicBlockStats, analyze_basic_blocks
from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    experiment_instructions,
    default_workload_names,
    fixed,
    mean,
    render_blocks,
    section_cell,
    sections_for,
    suite_cell,
)
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec
from repro.trace.instruction import CodeSection
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import workload_trace


@dataclass
class Fig04Result(FrameResult):
    """Per-suite, per-section basic-block statistics in bytes.

    Frames:

    ``sections`` (primary)
        One row per (suite, section): average basic-block length and
        average distance between taken branches, in bytes.
    ``workloads``
        One row per workload: its total-section block length.
    """

    instructions: int
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "sections"
    PAYLOAD = (
        PayloadField.scalar("instructions"),
        PayloadField.pivot(
            "block_bytes", "sections", [["suite"], ["section"]], value="block_bytes"
        ),
        PayloadField.pivot(
            "taken_distance_bytes",
            "sections",
            [["suite"], ["section"]],
            value="taken_distance_bytes",
        ),
        PayloadField.pivot(
            "per_workload_block_bytes",
            "workloads",
            [["workload"]],
            value="block_bytes",
        ),
    )
    VIEWS = (
        RowView(
            "sections",
            (
                ("suite", "suite", suite_cell),
                ("section", "section", section_cell),
                ("block_bytes", "avg BBL [B]", fixed(0)),
                ("taken_distance_bytes", "avg taken distance [B]", fixed(0)),
            ),
        ),
    )


def _workload_blocks(args) -> Dict[CodeSection, BasicBlockStats]:
    """Per-workload worker: block statistics of every reported section."""
    spec, instructions = args
    trace = workload_trace(spec, instructions)
    return {
        section: analyze_basic_blocks(trace, section)
        for section in sections_for(spec)
    }


def run_fig04(
    instructions: Optional[int] = None,
    suites: Optional[Sequence[Suite]] = None,
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Fig04Result:
    """Regenerate the Figure 4 data.

    The per-workload analysis runs through the current session's sweep
    engine; ``run_parallel`` overrides the session's parallelism.
    """
    instructions = experiment_instructions(instructions)
    section_rows: List[tuple] = []
    workload_rows: List[tuple] = []
    sweep = current_session().suite_sweep(
        _workload_blocks, (instructions,), suites, run_parallel, processes
    )
    for suite, specs, rows in sweep:
        blocks: Dict[CodeSection, List[float]] = {}
        distances: Dict[CodeSection, List[float]] = {}
        for spec, stats_by_section in zip(specs, rows):
            for section, stats in stats_by_section.items():
                blocks.setdefault(section, []).append(stats.average_block_bytes)
                distances.setdefault(section, []).append(
                    stats.average_taken_distance_bytes
                )
                if section is CodeSection.TOTAL:
                    workload_rows.append((spec.name, stats.average_block_bytes))
        for section in blocks:
            section_rows.append(
                (suite, section, mean(blocks[section]), mean(distances[section]))
            )
    return Fig04Result(
        instructions=instructions,
        frames={
            "sections": ResultFrame.from_rows(
                ["suite", "section", "block_bytes", "taken_distance_bytes"],
                section_rows,
            ),
            "workloads": ResultFrame.from_rows(
                ["workload", "block_bytes"], workload_rows
            ),
        },
    )


def hpc_to_desktop_block_ratio(result: Fig04Result) -> float:
    """Ratio of HPC parallel block length to the desktop average."""
    block_bytes = result.block_bytes
    hpc = mean(
        block_bytes[suite][CodeSection.PARALLEL]
        for suite in block_bytes
        if suite.is_hpc and CodeSection.PARALLEL in block_bytes[suite]
    )
    desktop = mean(
        block_bytes[suite][CodeSection.TOTAL]
        for suite in block_bytes
        if suite.is_desktop
    )
    if desktop == 0:
        return 0.0
    return hpc / desktop


def tables_fig04(result: Fig04Result) -> List[TableBlock]:
    """Figure 4 bars as table blocks (bytes)."""
    return result.tables()


def format_fig04(result: Fig04Result) -> str:
    """Render the Figure 4 bars as a table (bytes)."""
    return render_blocks(result.tables())


SPEC = ExperimentSpec(
    name="fig4",
    title="Figure 4: basic-block length and distance between taken branches",
    runner=run_fig04,
    tables=tables_fig04,
    workloads=default_workload_names,
)
