"""Figure 4: basic-block length and distance between taken branches."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.basic_blocks import analyze_basic_blocks
from repro.experiments.common import (
    DEFAULT_EXPERIMENT_INSTRUCTIONS,
    format_table,
    mean,
    sections_for,
    suite_workloads,
    workload_trace,
)
from repro.trace.instruction import CodeSection
from repro.workloads.suites import SUITE_ORDER, Suite


@dataclass
class Fig04Result:
    """Per-suite, per-section basic-block statistics in bytes."""

    instructions: int
    block_bytes: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    taken_distance_bytes: Dict[Suite, Dict[CodeSection, float]] = field(default_factory=dict)
    per_workload_block_bytes: Dict[str, float] = field(default_factory=dict)


def run_fig04(
    instructions: int = DEFAULT_EXPERIMENT_INSTRUCTIONS,
    suites: Optional[Sequence[Suite]] = None,
) -> Fig04Result:
    """Regenerate the Figure 4 data."""
    result = Fig04Result(instructions=instructions)
    for suite in suites or SUITE_ORDER:
        specs = suite_workloads(suites=[suite])
        blocks: Dict[CodeSection, List[float]] = {}
        distances: Dict[CodeSection, List[float]] = {}
        for spec in specs:
            trace = workload_trace(spec, instructions)
            for section in sections_for(spec):
                stats = analyze_basic_blocks(trace, section)
                blocks.setdefault(section, []).append(stats.average_block_bytes)
                distances.setdefault(section, []).append(
                    stats.average_taken_distance_bytes
                )
                if section is CodeSection.TOTAL:
                    result.per_workload_block_bytes[spec.name] = stats.average_block_bytes
        result.block_bytes[suite] = {s: mean(v) for s, v in blocks.items()}
        result.taken_distance_bytes[suite] = {s: mean(v) for s, v in distances.items()}
    return result


def hpc_to_desktop_block_ratio(result: Fig04Result) -> float:
    """Ratio of HPC parallel block length to the desktop average."""
    hpc = mean(
        result.block_bytes[suite][CodeSection.PARALLEL]
        for suite in result.block_bytes
        if suite.is_hpc and CodeSection.PARALLEL in result.block_bytes[suite]
    )
    desktop = mean(
        result.block_bytes[suite][CodeSection.TOTAL]
        for suite in result.block_bytes
        if suite.is_desktop
    )
    if desktop == 0:
        return 0.0
    return hpc / desktop


def format_fig04(result: Fig04Result) -> str:
    """Render the Figure 4 bars as a table (bytes)."""
    headers = ["suite", "section", "avg BBL [B]", "avg taken distance [B]"]
    rows = []
    for suite, sections in result.block_bytes.items():
        for section, block_bytes in sections.items():
            rows.append([
                suite.label,
                section.label,
                f"{block_bytes:.0f}",
                f"{result.taken_distance_bytes[suite][section]:.0f}",
            ])
    return format_table(headers, rows)
