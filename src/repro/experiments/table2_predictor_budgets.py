"""Table II: branch predictor size parameters and hardware cost."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.session import current_session
from repro.experiments.common import render_blocks
from repro.frontend.predictors import make_predictor
from repro.frontend.predictors.factory import PREDICTOR_KINDS, SIZE_PARAMETERS
from repro.results.artifacts import TableBlock, block
from repro.results.spec import ExperimentSpec


@dataclass
class Table2Result:
    """Hardware cost (bits and KB) of every evaluated predictor config."""

    #: (kind, budget) -> storage bits
    storage_bits: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (kind, budget) -> Table II size parameters
    parameters: Dict[Tuple[str, str], Dict[str, int]] = field(default_factory=dict)
    loop_predictor_bits: int = 0

    def storage_kb(self, kind: str, budget: str) -> float:
        """Storage cost of one configuration in KB."""
        return self.storage_bits[(kind, budget)] / 8192.0


def _predictor_cost(args) -> Tuple[Tuple[str, str], int, Dict[str, int]]:
    """Per-configuration worker: storage bits and size parameters."""
    kind, budget = args
    predictor = make_predictor(kind, budget)
    return (kind, budget), predictor.storage_bits(), dict(SIZE_PARAMETERS[(kind, budget)])


def run_table2(
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Table2Result:
    """Regenerate the Table II data from the predictor implementations.

    The per-configuration sizing runs through the current session's
    sweep engine (cheap, but it keeps the ``--parallel`` contract
    uniform across every experiment).
    """
    result = Table2Result()
    arguments = [
        (kind, budget) for kind in PREDICTOR_KINDS for budget in ("small", "big")
    ]
    for key, bits, parameters in current_session().map(
        _predictor_cost, arguments, run_parallel, processes
    ):
        result.storage_bits[key] = bits
        result.parameters[key] = parameters
    loop_augmented = make_predictor("gshare", "small", with_loop=True)
    plain = make_predictor("gshare", "small")
    result.loop_predictor_bits = loop_augmented.storage_bits() - plain.storage_bits()
    return result


def tables_table2(result: Table2Result) -> List[TableBlock]:
    """Table II as table blocks (predictor budgets)."""
    headers = ["predictor", "budget", "size parameters", "cost [KB]"]
    rows = []
    for (kind, budget), bits in result.storage_bits.items():
        parameters = ", ".join(
            f"{key}={value}" for key, value in result.parameters[(kind, budget)].items()
        )
        rows.append([kind, budget, parameters, f"{bits / 8192.0:.2f}"])
    rows.append([
        "loop predictor", "64-entry", "side predictor",
        f"{result.loop_predictor_bits / 8192.0:.2f}",
    ])
    return [block(headers, rows)]


def format_table2(result: Table2Result) -> str:
    """Render Table II (predictor budgets)."""
    return render_blocks(tables_table2(result))


def _constants() -> Mapping[str, object]:
    """Key material: the predictor configuration grid Table II sizes."""
    return {
        "predictor_kinds": list(PREDICTOR_KINDS),
        "budgets": ["small", "big"],
    }


SPEC = ExperimentSpec(
    name="table2",
    title="Table II: branch predictor size parameters and hardware cost",
    runner=run_table2,
    tables=tables_table2,
    constants=_constants,
)
