"""Table II: branch predictor size parameters and hardware cost."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.api.frame import ResultFrame
from repro.api.session import current_session
from repro.experiments.common import (
    FrameResult,
    PayloadField,
    RowView,
    fixed,
    render_blocks,
)
from repro.frontend.predictors import make_predictor
from repro.frontend.predictors.factory import PREDICTOR_KINDS, SIZE_PARAMETERS
from repro.results.artifacts import TableBlock
from repro.results.spec import ExperimentSpec


@dataclass
class Table2Result(FrameResult):
    """Hardware cost (bits and KB) of every evaluated predictor config.

    Frames:

    ``budgets`` (primary)
        One row per (predictor, budget): storage bits and the Table II
        size-parameter dict.
    ``table``
        The rendered Table II rows (including the loop side predictor).
    """

    loop_predictor_bits: int = 0
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "budgets"
    PAYLOAD = (
        PayloadField.pivot(
            "storage_bits",
            "budgets",
            [["predictor", "budget"]],
            value="storage_bits",
        ),
        PayloadField.pivot(
            "parameters", "budgets", [["predictor", "budget"]], value="parameters"
        ),
        PayloadField.scalar("loop_predictor_bits"),
    )
    VIEWS = (
        RowView(
            "table",
            (
                ("predictor", "predictor", str),
                ("budget", "budget", str),
                ("parameters", "size parameters", str),
                ("cost_kb", "cost [KB]", fixed(2)),
            ),
        ),
    )

    def storage_kb(self, kind: str, budget: str) -> float:
        """Storage cost of one configuration in KB."""
        return self.storage_bits[(kind, budget)] / 8192.0


def _predictor_cost(args) -> Tuple[Tuple[str, str], int, Dict[str, int]]:
    """Per-configuration worker: storage bits and size parameters."""
    kind, budget = args
    predictor = make_predictor(kind, budget)
    return (
        (kind, budget),
        predictor.storage_bits(),
        dict(SIZE_PARAMETERS[(kind, budget)]),
    )


def run_table2(
    run_parallel: Optional[bool] = None,
    processes: Optional[int] = None,
) -> Table2Result:
    """Regenerate the Table II data from the predictor implementations.

    The per-configuration sizing runs through the current session's
    sweep engine (cheap, but it keeps the ``--parallel`` contract
    uniform across every experiment).
    """
    arguments = [
        (kind, budget) for kind in PREDICTOR_KINDS for budget in ("small", "big")
    ]
    budget_rows: List[tuple] = []
    table_rows: List[tuple] = []
    for (kind, budget), bits, parameters in current_session().map(
        _predictor_cost, arguments, run_parallel, processes
    ):
        budget_rows.append((kind, budget, bits, parameters))
        rendered = ", ".join(f"{key}={value}" for key, value in parameters.items())
        table_rows.append((kind, budget, rendered, bits / 8192.0))
    loop_augmented = make_predictor("gshare", "small", with_loop=True)
    plain = make_predictor("gshare", "small")
    loop_predictor_bits = loop_augmented.storage_bits() - plain.storage_bits()
    table_rows.append(
        ("loop predictor", "64-entry", "side predictor", loop_predictor_bits / 8192.0)
    )
    return Table2Result(
        loop_predictor_bits=loop_predictor_bits,
        frames={
            "budgets": ResultFrame.from_rows(
                ["predictor", "budget", "storage_bits", "parameters"], budget_rows
            ),
            "table": ResultFrame.from_rows(
                ["predictor", "budget", "parameters", "cost_kb"], table_rows
            ),
        },
    )


def tables_table2(result: Table2Result) -> List[TableBlock]:
    """Table II as table blocks (predictor budgets)."""
    return result.tables()


def format_table2(result: Table2Result) -> str:
    """Render Table II (predictor budgets)."""
    return render_blocks(result.tables())


def _constants() -> Mapping[str, object]:
    """Key material: the predictor configuration grid Table II sizes."""
    return {
        "predictor_kinds": list(PREDICTOR_KINDS),
        "budgets": ["small", "big"],
    }


SPEC = ExperimentSpec(
    name="table2",
    title="Table II: branch predictor size parameters and hardware cost",
    runner=run_table2,
    tables=tables_table2,
    constants=_constants,
)
