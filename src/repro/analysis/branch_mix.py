"""Dynamic branch instruction breakdown (Figure 1).

The pintool this replaces inspects every dynamic branch instruction and
counts its frequency per category; the result is reported as a
percentage of all dynamic instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.trace.events import Trace
from repro.trace.instruction import FIGURE1_CATEGORIES, BranchKind, CodeSection


@dataclass
class BranchMix:
    """Branch breakdown of one code section of one workload.

    ``category_fractions`` maps each Figure 1 category to its share of
    *all dynamic instructions* (not of branches), so the values can be
    stacked exactly like the paper's bars.
    """

    section: CodeSection
    instruction_count: int
    branch_count: int
    category_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def branch_fraction(self) -> float:
        """Fraction of dynamic instructions that are branches."""
        if self.instruction_count == 0:
            return 0.0
        return self.branch_count / self.instruction_count

    @property
    def category_fractions(self) -> Dict[str, float]:
        """Per-category share of all dynamic instructions."""
        if self.instruction_count == 0:
            return {category: 0.0 for category in FIGURE1_CATEGORIES}
        return {
            category: self.category_counts.get(category, 0) / self.instruction_count
            for category in FIGURE1_CATEGORIES
        }

    def fraction_of(self, category: str) -> float:
        """Share of dynamic instructions in one branch category."""
        if category not in FIGURE1_CATEGORIES:
            raise ValueError(f"unknown branch category {category!r}")
        return self.category_fractions[category]

    @property
    def direct_branch_share_of_branches(self) -> float:
        """Share of branch instructions that are direct (conditional or not)."""
        if self.branch_count == 0:
            return 0.0
        direct = self.category_counts.get("direct branch", 0)
        return direct / self.branch_count


def analyze_branch_mix(
    trace: Trace, section: CodeSection = CodeSection.TOTAL
) -> BranchMix:
    """Compute the Figure 1 branch breakdown for one trace section.

    One ``bincount`` over the branch-kind column replaces the
    per-record walk.
    """
    counts: Dict[str, int] = {category: 0 for category in FIGURE1_CATEGORIES}
    kind_counts = np.bincount(
        trace.branch_columns(section).kinds, minlength=len(BranchKind)
    )
    branch_count = int(kind_counts.sum())
    for kind_value, kind_count in enumerate(kind_counts.tolist()):
        if kind_count and kind_value != int(BranchKind.NONE):
            counts[BranchKind(kind_value).figure1_category] += kind_count
    return BranchMix(
        section=section,
        instruction_count=trace.instruction_count(section),
        branch_count=branch_count,
        category_counts=counts,
    )
