"""Conditional branch direction analysis (Figure 2 and Table I).

Figure 2 classifies every *static* conditional branch site by how often
it is taken, then weights each site by its dynamic execution count so
the stacked bars show the distribution of dynamic conditional branches
over ten taken-percentage buckets.

Table I splits taken branches into backward (target before the branch)
and forward (target after the branch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.trace.events import Trace
from repro.trace.instruction import CodeSection

#: Upper bounds (exclusive, in percent taken) of the Figure 2 buckets.
BIAS_BUCKET_BOUNDS: Tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 101)

#: Human-readable labels of the Figure 2 buckets, in stacking order.
BIAS_BUCKET_LABELS: Tuple[str, ...] = (
    "0-10%",
    "10-20%",
    "20-30%",
    "30-40%",
    "40-50%",
    "50-60%",
    "60-70%",
    "70-80%",
    "80-90%",
    ">90%",
)


@dataclass
class BiasDistribution:
    """Distribution of dynamic conditional branches over taken buckets."""

    section: CodeSection
    dynamic_conditional_count: int
    bucket_fractions: Dict[str, float] = field(default_factory=dict)

    @property
    def strongly_biased_fraction(self) -> float:
        """Share of dynamic branches that are taken <10% or >90% of the time."""
        return self.bucket_fractions.get("0-10%", 0.0) + self.bucket_fractions.get(
            ">90%", 0.0
        )

    def fraction_in(self, label: str) -> float:
        """Share of dynamic conditional branches in one bucket."""
        if label not in BIAS_BUCKET_LABELS:
            raise ValueError(f"unknown bias bucket {label!r}")
        return self.bucket_fractions.get(label, 0.0)


@dataclass
class TakenDirectionSplit:
    """Backward/forward split of taken branches (Table I)."""

    section: CodeSection
    taken_count: int
    backward_count: int
    forward_count: int

    @property
    def backward_fraction(self) -> float:
        """Share of taken branches whose target precedes the branch."""
        if self.taken_count == 0:
            return 0.0
        return self.backward_count / self.taken_count

    @property
    def forward_fraction(self) -> float:
        """Share of taken branches whose target follows the branch."""
        if self.taken_count == 0:
            return 0.0
        return self.forward_count / self.taken_count


def _bucket_label(taken_percent: float) -> str:
    """Map a per-site taken percentage to its Figure 2 bucket label."""
    for bound, label in zip(BIAS_BUCKET_BOUNDS, BIAS_BUCKET_LABELS):
        if taken_percent < bound:
            return label
    return BIAS_BUCKET_LABELS[-1]


def analyze_branch_bias(
    trace: Trace, section: CodeSection = CodeSection.TOTAL
) -> BiasDistribution:
    """Compute the Figure 2 taken-percentage distribution for a section.

    Per-site execution and taken counts come from one ``unique`` +
    ``bincount`` pass over the conditional-branch columns; sites are
    bucketed with a vectorized ``searchsorted`` against the Figure 2
    bounds.
    """
    columns = trace.branch_columns(section)
    mask = columns.is_conditional
    addresses = columns.addresses[mask]
    taken = columns.taken[mask]

    total_dynamic = int(addresses.shape[0])
    bucket_counts: Dict[str, int] = {label: 0 for label in BIAS_BUCKET_LABELS}
    if total_dynamic:
        sites, inverse = np.unique(addresses, return_inverse=True)
        executions = np.bincount(inverse, minlength=sites.shape[0])
        taken_counts = np.bincount(inverse[taken], minlength=sites.shape[0])
        taken_percent = 100.0 * taken_counts / executions
        bucket_indices = np.searchsorted(
            np.asarray(BIAS_BUCKET_BOUNDS, dtype=np.float64),
            taken_percent,
            side="right",
        )
        per_bucket = np.bincount(
            bucket_indices, weights=executions, minlength=len(BIAS_BUCKET_LABELS)
        )
        for label, count in zip(BIAS_BUCKET_LABELS, per_bucket.tolist()):
            bucket_counts[label] = int(count)

    if total_dynamic == 0:
        fractions = {label: 0.0 for label in BIAS_BUCKET_LABELS}
    else:
        fractions = {
            label: count / total_dynamic for label, count in bucket_counts.items()
        }
    return BiasDistribution(
        section=section,
        dynamic_conditional_count=total_dynamic,
        bucket_fractions=fractions,
    )


def analyze_taken_directions(
    trace: Trace,
    section: CodeSection = CodeSection.TOTAL,
    conditional_only: bool = False,
) -> TakenDirectionSplit:
    """Compute the Table I backward/forward split of taken branches.

    ``conditional_only`` restricts the analysis to conditional direct
    branches; by default every taken branch with a resolvable target
    (conditional, unconditional, call, return, indirect) participates,
    matching a pintool that inspects every taken control transfer.
    """
    columns = trace.branch_columns(section)
    mask = columns.taken & (columns.targets >= 0)
    if conditional_only:
        mask &= columns.is_conditional
    taken = int(np.count_nonzero(mask))
    backward = int(
        np.count_nonzero(mask & (columns.targets < columns.addresses))
    )
    return TakenDirectionSplit(
        section=section,
        taken_count=taken,
        backward_count=backward,
        forward_count=taken - backward,
    )
