"""One-stop workload characterization and suite aggregation.

``characterize_workload`` runs every Section III analysis for the
total, serial, and parallel sections of a trace, which is what the
per-figure experiment drivers consume.  ``suite_average`` averages a
metric over the workloads of a suite the way the paper's per-suite bars
do (unweighted arithmetic mean over benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.analysis.basic_blocks import BasicBlockStats, analyze_basic_blocks
from repro.analysis.branch_bias import (
    BiasDistribution,
    TakenDirectionSplit,
    analyze_branch_bias,
    analyze_taken_directions,
)
from repro.analysis.branch_mix import BranchMix, analyze_branch_mix
from repro.analysis.footprint import FootprintResult, analyze_footprint
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection


@dataclass
class WorkloadCharacterization:
    """All Section III characteristics of one workload, per section."""

    name: str
    branch_mix: Dict[CodeSection, BranchMix]
    bias: Dict[CodeSection, BiasDistribution]
    taken_directions: Dict[CodeSection, TakenDirectionSplit]
    footprint: Dict[CodeSection, FootprintResult]
    basic_blocks: Dict[CodeSection, BasicBlockStats]

    def sections(self) -> List[CodeSection]:
        """Sections for which data is available."""
        return list(self.branch_mix.keys())


def _sections_for(trace: Trace, include_sections: bool) -> List[CodeSection]:
    sections = [CodeSection.TOTAL]
    if not include_sections:
        return sections
    for section in (CodeSection.SERIAL, CodeSection.PARALLEL):
        if trace.instruction_count(section) > 0:
            sections.append(section)
    return sections


def characterize_workload(
    trace: Trace,
    name: Optional[str] = None,
    include_sections: bool = True,
    conditional_only_directions: bool = False,
) -> WorkloadCharacterization:
    """Run every architecture-independent analysis on one trace."""
    sections = _sections_for(trace, include_sections)
    return WorkloadCharacterization(
        name=name or trace.name,
        branch_mix={s: analyze_branch_mix(trace, s) for s in sections},
        bias={s: analyze_branch_bias(trace, s) for s in sections},
        taken_directions={
            s: analyze_taken_directions(
                trace, s, conditional_only=conditional_only_directions
            )
            for s in sections
        },
        footprint={s: analyze_footprint(trace, s) for s in sections},
        basic_blocks={s: analyze_basic_blocks(trace, s) for s in sections},
    )


def suite_average(values: Iterable[float]) -> float:
    """Unweighted mean over the benchmarks of a suite (paper convention)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def average_by(
    items: Sequence, key: Callable[[object], float]
) -> float:
    """Average ``key(item)`` over ``items`` (empty sequences average to 0)."""
    return suite_average(key(item) for item in items)
