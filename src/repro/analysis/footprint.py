"""Instruction footprint analysis (Figure 3).

The pintool this replaces records the size of every executed basic
block and its execution count; from that it derives the static
instruction footprint and the amount of memory needed to hold 99% of
the dynamically executed instructions.

Because the synthetic binary is fully known, the static footprint here
is the whole text segment (hot code plus the cold library/startup code
that a real run would touch once); the dynamic footprint is computed
from the trace exactly as the pintool does.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection

#: Fraction of dynamic instructions the "dynamic footprint" must cover.
DYNAMIC_COVERAGE = 0.99


@dataclass
class FootprintResult:
    """Static and dynamic instruction footprints of one section."""

    section: CodeSection
    static_bytes: int
    executed_static_bytes: int
    dynamic_footprint_bytes: int
    coverage: float = DYNAMIC_COVERAGE

    @property
    def static_kb(self) -> float:
        """Static text footprint in KB."""
        return self.static_bytes / 1024.0

    @property
    def executed_static_kb(self) -> float:
        """Static footprint of the blocks this section actually executed."""
        return self.executed_static_bytes / 1024.0

    @property
    def dynamic_footprint_kb(self) -> float:
        """Memory needed to hold ``coverage`` of dynamic instructions, in KB."""
        return self.dynamic_footprint_bytes / 1024.0


def analyze_footprint(
    trace: Trace,
    section: CodeSection = CodeSection.TOTAL,
    coverage: float = DYNAMIC_COVERAGE,
) -> FootprintResult:
    """Compute static and 99%-dynamic instruction footprints."""
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")

    blocks = trace.program.blocks
    execution_counts = trace.block_execution_counts(section)

    executed_static_bytes = 0
    weighted: list = []
    total_dynamic_bytes = 0
    for block_id, count in execution_counts.items():
        size = blocks[block_id].size_bytes
        executed_static_bytes += size
        dynamic_bytes = size * count
        total_dynamic_bytes += dynamic_bytes
        weighted.append((count, size, dynamic_bytes))

    # Greedily keep the most frequently executed blocks until the
    # requested share of dynamic instruction bytes is covered; the
    # memory needed is the static size of the kept blocks.
    weighted.sort(key=lambda item: item[0], reverse=True)
    needed = coverage * total_dynamic_bytes
    covered = 0
    footprint_bytes = 0
    for count, size, dynamic_bytes in weighted:
        if covered >= needed:
            break
        covered += dynamic_bytes
        footprint_bytes += size

    return FootprintResult(
        section=section,
        static_bytes=trace.program.static_code_bytes(),
        executed_static_bytes=executed_static_bytes,
        dynamic_footprint_bytes=footprint_bytes,
        coverage=coverage,
    )
