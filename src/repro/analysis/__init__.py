"""Workload analysis tools (the paper's pintool equivalents).

Each analyzer consumes a dynamic :class:`repro.trace.Trace` and produces
the architecture-independent characteristics of Section III of the
paper:

* :mod:`repro.analysis.branch_mix` -- dynamic branch instruction
  breakdown by category (Figure 1),
* :mod:`repro.analysis.branch_bias` -- conditional branch direction
  distribution (Figure 2) and backward/forward taken split (Table I),
* :mod:`repro.analysis.footprint` -- static and 99%-dynamic instruction
  footprints (Figure 3),
* :mod:`repro.analysis.basic_blocks` -- dynamic basic-block length and
  distance between taken branches (Figure 4),
* :mod:`repro.analysis.line_usefulness` -- fraction of a fetched I-cache
  line that is actually consumed (Section IV-C),
* :mod:`repro.analysis.characterization` -- one-stop characterization of
  a workload plus suite-level aggregation helpers.
"""

from repro.analysis.branch_mix import BranchMix, analyze_branch_mix
from repro.analysis.branch_bias import (
    BiasDistribution,
    TakenDirectionSplit,
    analyze_branch_bias,
    analyze_taken_directions,
)
from repro.analysis.footprint import FootprintResult, analyze_footprint
from repro.analysis.basic_blocks import BasicBlockStats, analyze_basic_blocks
from repro.analysis.line_usefulness import LineUsefulness, analyze_line_usefulness
from repro.analysis.characterization import (
    WorkloadCharacterization,
    characterize_workload,
    suite_average,
)

__all__ = [
    "BranchMix",
    "analyze_branch_mix",
    "BiasDistribution",
    "TakenDirectionSplit",
    "analyze_branch_bias",
    "analyze_taken_directions",
    "FootprintResult",
    "analyze_footprint",
    "BasicBlockStats",
    "analyze_basic_blocks",
    "LineUsefulness",
    "analyze_line_usefulness",
    "WorkloadCharacterization",
    "characterize_workload",
    "suite_average",
]
