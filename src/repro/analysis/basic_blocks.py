"""Dynamic basic-block statistics (Figure 4).

A *dynamic basic block* is the run of instructions between two
consecutive branch instructions in the dynamic stream; the *distance
between taken branches* is the run of instructions between two
consecutive **taken** branches.  Both are reported in bytes, exactly as
in Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.events import Trace
from repro.trace.instruction import CodeSection


@dataclass
class BasicBlockStats:
    """Average dynamic basic-block length and taken-branch distance."""

    section: CodeSection
    dynamic_block_count: int
    taken_run_count: int
    average_block_bytes: float
    average_block_instructions: float
    average_taken_distance_bytes: float

    @property
    def taken_branch_fraction(self) -> float:
        """Share of dynamic basic blocks that end in a taken branch."""
        if self.dynamic_block_count == 0:
            return 0.0
        return self.taken_run_count / self.dynamic_block_count


def analyze_basic_blocks(
    trace: Trace, section: CodeSection = CodeSection.TOTAL
) -> BasicBlockStats:
    """Compute Figure 4's basic-block length and taken-distance averages."""
    blocks = trace.program.blocks

    block_count = 0
    taken_count = 0
    total_bytes = 0
    total_instructions = 0

    current_bytes = 0
    current_instructions = 0
    taken_run_bytes = 0
    taken_run_total = 0

    for event in trace.block_events(section):
        block = blocks[event.block_id]
        current_bytes += block.size_bytes
        current_instructions += block.num_instructions
        taken_run_bytes += block.size_bytes
        if not block.terminator.is_branch:
            continue
        # A branch instruction ends the current dynamic basic block.
        block_count += 1
        total_bytes += current_bytes
        total_instructions += current_instructions
        current_bytes = 0
        current_instructions = 0
        if event.taken:
            taken_count += 1
            taken_run_total += taken_run_bytes
            taken_run_bytes = 0

    average_block_bytes = total_bytes / block_count if block_count else 0.0
    average_block_instructions = (
        total_instructions / block_count if block_count else 0.0
    )
    average_taken_distance = taken_run_total / taken_count if taken_count else 0.0
    return BasicBlockStats(
        section=section,
        dynamic_block_count=block_count,
        taken_run_count=taken_count,
        average_block_bytes=average_block_bytes,
        average_block_instructions=average_block_instructions,
        average_taken_distance_bytes=average_taken_distance,
    )
