"""Dynamic basic-block statistics (Figure 4).

A *dynamic basic block* is the run of instructions between two
consecutive branch instructions in the dynamic stream; the *distance
between taken branches* is the run of instructions between two
consecutive **taken** branches.  Both are reported in bytes, exactly as
in Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection


@dataclass
class BasicBlockStats:
    """Average dynamic basic-block length and taken-branch distance."""

    section: CodeSection
    dynamic_block_count: int
    taken_run_count: int
    average_block_bytes: float
    average_block_instructions: float
    average_taken_distance_bytes: float

    @property
    def taken_branch_fraction(self) -> float:
        """Share of dynamic basic blocks that end in a taken branch."""
        if self.dynamic_block_count == 0:
            return 0.0
        return self.taken_run_count / self.dynamic_block_count


def analyze_basic_blocks(
    trace: Trace, section: CodeSection = CodeSection.TOTAL
) -> BasicBlockStats:
    """Compute Figure 4's basic-block length and taken-distance averages.

    Each dynamic basic block ends at a branch event and each taken run
    ends at a taken branch, so the per-run totals telescope: the sum of
    all completed runs is the cumulative sum up to the last terminating
    event.  That turns the event walk into two ``cumsum`` lookups.
    """
    block_ids, taken, _, _ = trace.event_columns(section)
    static = program_columns(trace.program)

    sizes = static.size_bytes[block_ids]
    is_branch = static.is_branch[block_ids]
    branch_positions = np.flatnonzero(is_branch)

    block_count = int(branch_positions.shape[0])
    taken_count = 0
    total_bytes = 0
    total_instructions = 0
    taken_run_total = 0
    if block_count:
        cumulative_bytes = np.cumsum(sizes)
        last_branch = int(branch_positions[-1])
        total_bytes = int(cumulative_bytes[last_branch])
        total_instructions = int(
            np.cumsum(static.num_instructions[block_ids])[last_branch]
        )
        taken_positions = branch_positions[taken[branch_positions]]
        taken_count = int(taken_positions.shape[0])
        if taken_count:
            taken_run_total = int(cumulative_bytes[int(taken_positions[-1])])

    average_block_bytes = total_bytes / block_count if block_count else 0.0
    average_block_instructions = (
        total_instructions / block_count if block_count else 0.0
    )
    average_taken_distance = taken_run_total / taken_count if taken_count else 0.0
    return BasicBlockStats(
        section=section,
        dynamic_block_count=block_count,
        taken_run_count=taken_count,
        average_block_bytes=average_block_bytes,
        average_block_instructions=average_block_instructions,
        average_taken_distance_bytes=average_taken_distance,
    )
