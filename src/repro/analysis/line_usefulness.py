"""I-cache line usefulness (Section IV-C).

The paper defines usefulness as the number of distinct bytes accessed
in a fetched cache line divided by the line size.  Long basic blocks
and long distances between taken branches make wide lines useful for
HPC codes (71% for 128-byte lines) while short, branchy desktop code
leaves most of a wide line unused (33%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

import numpy as np

from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection


@dataclass
class LineUsefulness:
    """Average fraction of each fetched line that is actually consumed."""

    section: CodeSection
    line_bytes: int
    lines_touched: int
    average_usefulness: float
    fetches: int

    @property
    def average_useful_bytes(self) -> float:
        """Average number of distinct bytes consumed per touched line."""
        return self.average_usefulness * self.line_bytes


def analyze_line_usefulness(
    trace: Trace,
    line_bytes: int = 128,
    section: CodeSection = CodeSection.TOTAL,
) -> LineUsefulness:
    """Compute average line usefulness for a given line width.

    Fetch behaviour follows the paper's model: instructions are
    extracted sequentially from a fetched line until the end of the line
    or a taken branch, so the bytes consumed from each line are exactly
    the executed bytes that fall inside it.
    """
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError("line_bytes must be a positive power of two")

    # The byte sets depend only on *which* static blocks executed, so
    # they are computed once per distinct block; the fetch count (one
    # per line a dynamic block touches) is a vectorized reduction.
    block_ids, _, _, _ = trace.event_columns(section)
    static = program_columns(trace.program)
    start_addresses = static.addresses[block_ids]
    end_addresses = start_addresses + static.size_bytes[block_ids]
    first_lines = start_addresses // line_bytes
    last_lines = (end_addresses - 1) // line_bytes
    fetches = int((last_lines - first_lines + 1).sum())

    blocks = trace.program.blocks
    touched: Dict[int, Set[int]] = {}
    for block_id in np.unique(block_ids).tolist():
        block = blocks[block_id]
        start = block.address
        end = block.end_address
        first_line = start // line_bytes
        last_line = (end - 1) // line_bytes
        for line_index in range(first_line, last_line + 1):
            line_start = line_index * line_bytes
            line_end = line_start + line_bytes
            lo = max(start, line_start)
            hi = min(end, line_end)
            byte_set = touched.setdefault(line_index, set())
            byte_set.update(range(lo - line_start, hi - line_start))

    if not touched:
        return LineUsefulness(section, line_bytes, 0, 0.0, 0)

    usefulness = sum(len(bytes_used) for bytes_used in touched.values())
    average = usefulness / (len(touched) * line_bytes)
    return LineUsefulness(
        section=section,
        line_bytes=line_bytes,
        lines_touched=len(touched),
        average_usefulness=average,
        fetches=fetches,
    )
