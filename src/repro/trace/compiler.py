"""Trace compiler: vectorized segment engine for trace generation.

The reference :class:`~repro.trace.execution.TraceGenerator` walks the
region tree one basic block at a time and pays Python-level cost for
every dynamic event.  This module lowers a :class:`Program` plus its
:class:`ExecutionSchedule` into a flat *segment IR* once, then
generates traces by stamping precomputed column templates into
preallocated NumPy buffers:

* **Static templates** -- any subtree whose emission is fully
  deterministic (straight-line code, jumps, syscalls, calls to static
  leaf functions, fixed-trip loops over static bodies, single-outcome
  conditionals) is *recorded* at compile time by literally executing it
  against a recording context, so the template is produced by the very
  same ``execute`` code the reference generator runs.
* **Flat loops** -- a loop whose body is a run of static segments
  punctuated by *choice sites* (conditionals, indirect calls, indirect
  jumps) with static per-outcome variants.  One invocation costs O(#sites)
  scalar bookkeeping: the trip count is drawn exactly as the reference
  does, the per-iteration RNG draws are batched (``rng.random(n)``
  consumes the bit stream identically to ``n`` scalar draws), and
  pattern-site outcome totals come from O(1) prefix tables.
* **Structural nodes** -- everything else (data-dependent outer loops,
  non-static conditionals) executes as a tree of compiled nodes that
  mirror the reference control flow but emit whole templates instead of
  single events.

Execution therefore *decides* (exact RNG stream, exact instruction
accounting) without materializing events; a final vectorized pass
stamps every recorded segment into its precomputed offset.  Wherever
the fast path cannot be exact -- the instruction budget may run out
inside a segment, or the call-depth limit is near -- the engine falls
back to literally executing the original region subtree, which
reproduces the reference truncation semantics by construction.  The
result is **bit-identical** to the reference generator for every
(program, schedule, seed, length); the test suite asserts this across
workloads, seeds and lengths.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence as Seq, Tuple

import numpy as np

from repro.api import runtime_config
from repro.trace.columns import NO_TARGET, program_columns
from repro.trace.events import Trace
from repro.trace.execution import ExecutionSchedule, Phase
from repro.trace.program import (
    CallRegion,
    CodeRegion,
    FixedTripCount,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Program,
    Region,
    Sequence,
    SyscallRegion,
    _first_block,
)

#: Upper bound on the number of events one *recorded* static template
#: may hold.  Recording a fixed-trip loop unrolls it, so the cap keeps
#: pathological nests from exploding template memory (anything larger
#: compiles structurally instead).  Merging adjacent already-recorded
#: code is intentionally uncapped: its total is bounded by the static
#: program size.
MAX_TEMPLATE_EVENTS = 4096

#: Environment variable selecting the trace engine used by the
#: workload layer: ``compiled`` (default) or ``reference``.  Owned by
#: :mod:`repro.api.runtime_config`; re-exported here for compatibility.
TRACE_ENGINE_VARIABLE = runtime_config.TRACE_ENGINE_VARIABLE


def compiled_engine_enabled() -> bool:
    """Whether the workload layer should generate via the compiled path.

    Defaults to on; set ``REPRO_TRACE_ENGINE=reference`` (or build a
    :class:`repro.api.Session` with ``trace_engine="reference"``) to
    force the tree-walk reference generator (the compiled engine is
    bit-identical, so this is a debugging/benchmarking aid, not a
    correctness knob).  Resolution goes through
    :mod:`repro.api.runtime_config`: an activated session config wins
    over the environment.
    """
    return runtime_config.current_trace_engine() != "reference"


class _NotStatic(Exception):
    """Raised while recording when a subtree turns out to be dynamic."""


class _RaisingRNG:
    """RNG stand-in that flags any draw attempt during recording."""

    def __getattr__(self, name: str):
        raise _NotStatic(f"rng.{name} used in supposedly static subtree")


class _Recorder:
    """ExecutionContext look-alike that records emissions at compile time.

    Only deterministic subtrees may execute against it: any RNG draw or
    multi-outcome pattern access raises :class:`_NotStatic`.  The
    recorded columns *are* the template -- they were produced by the
    same ``Region.execute`` implementations the reference generator
    runs, so no emission logic is duplicated.
    """

    def __init__(self, max_call_depth: int) -> None:
        self.rng = _RaisingRNG()
        self.block_ids: List[int] = []
        self.taken: List[bool] = []
        self.targets: List[int] = []
        self.instructions = 0
        self.max_call_depth = max_call_depth
        self._call_depth = 0
        self.max_depth_seen = 0

    @property
    def exhausted(self) -> bool:
        return False

    def next_pattern_index(self, owner: object, length: int) -> int:
        if length != 1:
            raise _NotStatic("multi-outcome pattern site")
        return 0  # position of a length-1 pattern is always 0

    def emit(self, block, taken: bool, target: Optional[int] = None) -> None:
        if len(self.block_ids) >= MAX_TEMPLATE_EVENTS:
            raise _NotStatic("template too large")
        self.block_ids.append(block.block_id)
        self.taken.append(bool(taken))
        self.targets.append(NO_TARGET if target is None else target)
        self.instructions += block.num_instructions

    def call(self, callee, return_to: int) -> None:
        if self._call_depth >= self.max_call_depth:
            # Depth-dependent emission cannot be a fixed template.
            raise _NotStatic("call depth limit reached while recording")
        self._call_depth += 1
        self.max_depth_seen = max(self.max_depth_seen, self._call_depth)
        try:
            callee.body.execute(self)
        finally:
            self._call_depth -= 1
        self.emit(callee.return_block, taken=True, target=return_to)


class _Template:
    """A precompiled static emission span."""

    __slots__ = (
        "index",
        "pool_offset",
        "block_ids",
        "taken",
        "targets",
        "n_events",
        "instructions",
        "extra_depth",
        "sources",
    )

    def __init__(
        self,
        recorder: _Recorder,
        sources: Optional[List[Region]] = None,
    ) -> None:
        self.index = -1  # assigned by the CompiledSchedule
        self.pool_offset = -1  # assigned when the column pool is built
        # Columns stay plain lists: templates are only read through the
        # concatenated column pool (and the literal replay fallback), so
        # per-template NumPy conversion would be pure compile overhead.
        self.block_ids = recorder.block_ids
        self.taken = recorder.taken
        self.targets = recorder.targets
        self.n_events = len(recorder.block_ids)
        self.instructions = recorder.instructions
        self.extra_depth = recorder.max_depth_seen
        #: Source regions, in order, for the literal (exact-truncation)
        #: fallback; ``None`` for synthesized single-block templates
        #: (latches, function returns) which are replayed row by row.
        self.sources = sources



def _make_event_template(block, taken: bool, target: Optional[int]) -> _Template:
    """Template for one synthesized event (latch, function return)."""
    rec = _Recorder(max_call_depth=1 << 30)
    rec.emit(block, taken, target)
    return _Template(rec, sources=None)


def _merge_templates(templates: List[_Template]) -> _Template:
    """Concatenate adjacent static templates into one, in O(total size)."""
    rec = _Recorder(max_call_depth=1 << 30)
    sources: List[Region] = []
    for template in templates:
        rec.block_ids.extend(template.block_ids)
        rec.taken.extend(template.taken)
        rec.targets.extend(template.targets)
        rec.instructions += template.instructions
        rec.max_depth_seen = max(rec.max_depth_seen, template.extra_depth)
        sources.extend(template.sources or [])
    return _Template(rec, sources=sources or None)


# ----------------------------------------------------------------------
# Choice sites (flat-loop IR)
# ----------------------------------------------------------------------

#: Chooser kinds of a choice site.
_CHOICE_RANDOM = 0  # one rng.random() per execution, threshold on p
_CHOICE_WEIGHTED = 1  # one rng.random() per execution, cumulative weights
_CHOICE_PATTERN = 2  # no draw; outcome cycles through a pattern


class _ChoiceSite:
    """One multi-outcome site inside a flat loop body."""

    __slots__ = (
        "kind",
        "variants",
        "threshold",
        "cum_weights",
        "owner",
        "pattern_variants",
        "period",
        "event_prefix",
        "instr_prefix",
        "event_cycle",
        "instr_cycle",
        "var_events",
        "var_instr",
        "var_pool",
        "draw_column",
    )

    def __init__(self, kind: int, variants: List[_Template]) -> None:
        self.kind = kind
        self.variants = variants
        self.var_events = np.asarray([v.n_events for v in variants], dtype=np.int64)
        self.var_instr = np.asarray([v.instructions for v in variants], dtype=np.int64)
        self.var_pool: Optional[np.ndarray] = None  # filled with the pool
        self.threshold = 0.0
        self.cum_weights: Optional[np.ndarray] = None
        self.owner: Optional[object] = None
        self.pattern_variants: Optional[np.ndarray] = None
        self.period = 0
        self.event_prefix: Optional[np.ndarray] = None
        self.instr_prefix: Optional[np.ndarray] = None
        self.event_cycle = 0
        self.instr_cycle = 0
        self.draw_column = -1  # column in the batched draw matrix

    def finish_pattern(self) -> None:
        """Precompute O(1) range-sum tables over the outcome pattern."""
        per_pos_events = self.var_events[self.pattern_variants]
        per_pos_instr = self.var_instr[self.pattern_variants]
        self.event_prefix = np.concatenate(([0], np.cumsum(per_pos_events)))
        self.instr_prefix = np.concatenate(([0], np.cumsum(per_pos_instr)))
        self.event_cycle = int(self.event_prefix[-1])
        self.instr_cycle = int(self.instr_prefix[-1])
        self.period = len(self.pattern_variants)

    def range_sums(self, start: int, count: int) -> Tuple[int, int]:
        """Total (events, instructions) of ``count`` executions from
        pattern position ``start`` -- O(1) via the prefix tables."""
        period = self.period
        full, rem = divmod(count, period)
        events = full * self.event_cycle
        instr = full * self.instr_cycle
        first = start % period
        end = first + rem
        ep, ip = self.event_prefix, self.instr_prefix
        if end <= period:
            events += int(ep[end] - ep[first])
            instr += int(ip[end] - ip[first])
        else:
            events += int(self.event_cycle - ep[first] + ep[end - period])
            instr += int(self.instr_cycle - ip[first] + ip[end - period])
        return events, instr


# Flat-loop body elements: a static template or a choice site.
_SiteList = List[object]


class _FlatBatch:
    """Run-time records of consecutive fast invocations of a flat loop."""

    __slots__ = ("offsets", "trips", "choices", "positions")

    def __init__(self, n_pattern_sites: int) -> None:
        self.offsets: List[int] = []
        self.trips: List[int] = []
        #: per drawing-site list of per-invocation choice arrays
        self.choices: Dict[int, List[np.ndarray]] = {}
        #: per pattern-site list of per-invocation start positions
        #: (snapshots of the shared position state, which stays the
        #: single source of truth -- the same pattern owner may be
        #: reached through several compiled nodes or literal fallbacks)
        self.positions: List[List[int]] = [[] for _ in range(n_pattern_sites)]


class _RunState:
    """Everything one compiled trace generation mutates."""

    def __init__(
        self,
        rng: np.random.Generator,
        max_instructions: int,
        max_call_depth: int,
        n_templates: int,
        n_flat_loops: int,
    ) -> None:
        self.rng = rng
        self.max_instructions = max_instructions
        self.max_call_depth = max_call_depth
        self.instructions = 0
        self.events = 0
        self.call_depth = 0
        self.section_code = 0
        self.pattern_positions: dict = {}
        self.template_offsets: List[List[int]] = [[] for _ in range(n_templates)]
        #: One record batch per flat loop, created on first invocation.
        self.flat_states: List[Optional[_FlatBatch]] = [None] * n_flat_loops
        #: literal fallback runs: (offset, bids, taken, targets)
        self.literal_runs: List[Tuple[int, List[int], List[bool], List[int]]] = []
        #: (start offset, section code) spans, in emission order
        self.section_spans: List[Tuple[int, int]] = []

    @property
    def exhausted(self) -> bool:
        return self.instructions >= self.max_instructions

    def set_section(self, code: int) -> None:
        if not self.section_spans or self.section_spans[-1][1] != code:
            self.section_spans.append((self.events, code))
        self.section_code = code

    # -- template emission -------------------------------------------------

    def add_template(self, template: _Template) -> None:
        if (
            self.instructions + template.instructions < self.max_instructions
            and self.call_depth + template.extra_depth <= self.max_call_depth
        ):
            self.template_offsets[template.index].append(self.events)
            self.events += template.n_events
            self.instructions += template.instructions
        else:
            self.emit_literal(template)

    def emit_literal(self, template: _Template) -> None:
        """Exact fallback: run the template's sources through a literal
        context (reference truncation/depth semantics), or replay the
        recorded rows for synthesized single-event templates."""
        ctx = _LiteralContext(self)
        if template.sources is None:
            for bid, tk, tg in zip(
                template.block_ids, template.taken, template.targets
            ):
                ctx.emit_raw(bid, tk, tg, 0)
            # Instruction accounting for replayed rows: the template
            # knows its total; synthesized templates are single-event.
            self.instructions += template.instructions
        else:
            for region in template.sources:
                region.execute(ctx)
                if self.exhausted:
                    break
        ctx.close()


class _LiteralContext:
    """ExecutionContext-compatible shim backed by a :class:`_RunState`.

    Used for every exact fallback: it shares the RNG, the pattern
    positions, the call depth, and the instruction budget with the
    compiled run, so executing the *original* region subtree through it
    is indistinguishable from the reference generator.
    """

    __slots__ = ("state", "rng", "_bids", "_taken", "_targets", "_offset")

    def __init__(self, state: _RunState) -> None:
        self.state = state
        self.rng = state.rng
        self._bids: List[int] = []
        self._taken: List[bool] = []
        self._targets: List[int] = []
        self._offset = state.events

    @property
    def exhausted(self) -> bool:
        return self.state.instructions >= self.state.max_instructions

    @property
    def max_call_depth(self) -> int:
        return self.state.max_call_depth

    def next_pattern_index(self, owner: object, length: int) -> int:
        positions = self.state.pattern_positions
        position = positions.get(owner, 0)
        positions[owner] = (position + 1) % length
        return position

    def emit(self, block, taken: bool, target: Optional[int] = None) -> None:
        self._bids.append(block.block_id)
        self._taken.append(bool(taken))
        self._targets.append(NO_TARGET if target is None else target)
        self.state.instructions += block.num_instructions
        self.state.events += 1

    def emit_raw(self, block_id: int, taken: bool, target: int, instructions: int) -> None:
        self._bids.append(block_id)
        self._taken.append(taken)
        self._targets.append(target)
        self.state.instructions += instructions
        self.state.events += 1

    def call(self, callee, return_to: int) -> None:
        state = self.state
        if state.call_depth >= state.max_call_depth:
            self.emit(callee.return_block, taken=True, target=return_to)
            return
        state.call_depth += 1
        try:
            callee.body.execute(self)
        finally:
            state.call_depth -= 1
        self.emit(callee.return_block, taken=True, target=return_to)

    def close(self) -> None:
        if self._bids:
            self.state.literal_runs.append(
                (self._offset, self._bids, self._taken, self._targets)
            )


# ----------------------------------------------------------------------
# Compiled nodes
# ----------------------------------------------------------------------


class _CStatic:
    """A static emission span."""

    __slots__ = ("template",)

    def __init__(self, template: _Template) -> None:
        self.template = template

    def execute(self, state: _RunState) -> None:
        state.add_template(self.template)


class _CSeq:
    """Sequence of compiled nodes with reference exhaustion checks."""

    __slots__ = ("children",)

    def __init__(self, children: List[object]) -> None:
        self.children = children

    def execute(self, state: _RunState) -> None:
        for child in self.children:
            child.execute(state)
            if state.instructions >= state.max_instructions:
                return


class _CLoop:
    """Structural loop (data-dependent body): mirrors ``Loop.execute``."""

    __slots__ = ("trip_count", "body", "latch_taken", "latch_done")

    def __init__(self, loop: Loop, body: object) -> None:
        self.trip_count = loop.trip_count
        self.body = body
        self.latch_taken = _make_event_template(loop.latch, True, None)
        self.latch_done = _make_event_template(loop.latch, False, None)

    def execute(self, state: _RunState) -> None:
        iterations = self.trip_count.draw(state.rng)
        last = iterations - 1
        for index in range(iterations):
            self.body.execute(state)
            state.add_template(self.latch_taken if index < last else self.latch_done)
            if state.instructions >= state.max_instructions:
                return


class _CFallback:
    """Any region executed literally (exact reference semantics)."""

    __slots__ = ("region",)

    def __init__(self, region: Region) -> None:
        self.region = region

    def execute(self, state: _RunState) -> None:
        ctx = _LiteralContext(state)
        self.region.execute(ctx)
        ctx.close()


class _CFlatLoop:
    """The vectorized segment engine for one flat loop."""

    __slots__ = (
        "index",
        "loop",
        "trip_count",
        "sites",
        "choice_sites",
        "drawing_sites",
        "pattern_sites",
        "draws_per_iteration",
        "fixed_events",
        "fixed_instr",
        "iter_max_instr",
        "latch",
        "latch_taken_pool",
        "latch_done_pool",
        "extra_depth",
        "broken",
        "_compiler",
    )

    def __init__(self, loop: Loop, compiler: "_Compiler") -> None:
        self.index = -1  # assigned by the CompiledSchedule
        self.loop = loop
        self.trip_count = loop.trip_count
        #: Sites are compiled on the loop's *first invocation*: large
        #: programs carry many loops a short trace never reaches, and
        #: recording their segments up front would dominate cold runs.
        self.sites: Optional[_SiteList] = None
        self.broken = False
        self._compiler = compiler

    def _ensure_compiled(self) -> bool:
        # The compiled schedule is shared process-wide (memoized per
        # program), so first-invocation compilation takes the compiler
        # lock; ``self.sites`` is published last, making the unlocked
        # fast-path check in execute() safe.
        with self._compiler.lock:
            return self._ensure_compiled_locked()

    def _ensure_compiled_locked(self) -> bool:
        if self.sites is not None:
            return True
        if self.broken:
            return False
        sites = self._compiler.flatten_body_sites(self.loop.body)
        if sites is None:
            # The structural flatness gate was optimistic (e.g. a call
            # chain deeper than the depth limit); stay exact by running
            # this loop literally forever.
            self.broken = True
            return False
        self.choice_sites = [s for s in sites if isinstance(s, _ChoiceSite)]
        self.drawing_sites = [
            s for s in self.choice_sites if s.kind != _CHOICE_PATTERN
        ]
        self.pattern_sites = [
            s for s in self.choice_sites if s.kind == _CHOICE_PATTERN
        ]
        for column, site in enumerate(self.drawing_sites):
            site.draw_column = column
        self.draws_per_iteration = len(self.drawing_sites)
        latch = self.loop.latch
        self.latch = latch
        self.fixed_events = 1 + sum(
            t.n_events for t in sites if isinstance(t, _Template)
        )
        self.fixed_instr = latch.num_instructions + sum(
            t.instructions for t in sites if isinstance(t, _Template)
        )
        self.iter_max_instr = self.fixed_instr + sum(
            int(s.var_instr.max()) for s in self.choice_sites
        )
        depths = [t.extra_depth for t in sites if isinstance(t, _Template)]
        for site in self.choice_sites:
            depths.extend(v.extra_depth for v in site.variants)
        self.extra_depth = max(depths or [0])
        self._compiler.place_flat_loop(self, sites)
        self.sites = sites  # publish last: readers check it unlocked
        return True

    # -- run-time ---------------------------------------------------------

    def _literal_invocation(self, state: _RunState, iterations: int) -> None:
        """Reference-exact execution of one invocation (trip already
        drawn); mirrors ``Loop.execute`` line for line."""
        ctx = _LiteralContext(state)
        loop = self.loop
        for index in range(iterations):
            loop.body.execute(ctx)
            ctx.emit(loop.latch, taken=index < iterations - 1)
            if ctx.exhausted:
                break
        ctx.close()

    def execute(self, state: _RunState) -> None:
        if self.sites is None and (self.broken or not self._ensure_compiled()):
            ctx = _LiteralContext(state)
            self.loop.execute(ctx)
            ctx.close()
            return
        iterations = self.trip_count.draw(state.rng)
        remaining = state.max_instructions - state.instructions
        if (
            iterations * self.iter_max_instr >= remaining
            or state.call_depth + self.extra_depth > state.max_call_depth
        ):
            # The budget may run out mid-invocation (or calls could hit
            # the depth limit): execute this invocation literally.  The
            # per-iteration RNG draws have not been made yet, so the
            # literal walk consumes the stream exactly like the
            # reference generator (pattern positions live in the shared
            # dictionary, so no batch state needs flushing).
            self._literal_invocation(state, iterations)
            return

        batch = state.flat_states[self.index]
        if batch is None:
            batch = _FlatBatch(len(self.pattern_sites))
            state.flat_states[self.index] = batch

        events = iterations * self.fixed_events
        instr = iterations * self.fixed_instr
        shared = state.pattern_positions
        for slot, site in enumerate(self.pattern_sites):
            position = shared.get(site.owner, 0)
            batch.positions[slot].append(position)
            shared[site.owner] = (position + iterations) % site.period
            d_events, d_instr = site.range_sums(position, iterations)
            events += d_events
            instr += d_instr
        if self.draws_per_iteration:
            raw = state.rng.random(iterations * self.draws_per_iteration)
            for site in self.drawing_sites:
                draws = raw[site.draw_column :: self.draws_per_iteration]
                if site.kind == _CHOICE_RANDOM:
                    # variant 0 = "then executes" exactly when draw < p
                    choice = (draws >= site.threshold).view(np.uint8)
                else:
                    choice = np.minimum(
                        np.searchsorted(site.cum_weights, draws, side="right"),
                        len(site.variants) - 1,
                    )
                records = batch.choices.setdefault(site.draw_column, [])
                records.append(choice)
                events += int(site.var_events[choice].sum())
                instr += int(site.var_instr[choice].sum())

        batch.offsets.append(state.events)
        batch.trips.append(iterations)
        state.events += events
        state.instructions += instr

    # -- stamping ----------------------------------------------------------

    def stamp(self, state: _RunState, spans: "_SpanAccumulator") -> None:
        batch = state.flat_states[self.index]
        if batch is not None and batch.trips:
            self._stamp_batch(batch, spans)

    def _stamp_batch(self, batch: _FlatBatch, spans: "_SpanAccumulator") -> None:
        trips = np.asarray(batch.trips, dtype=np.int64)
        offsets = np.asarray(batch.offsets, dtype=np.int64)
        total = int(trips.sum())
        if total == 0:
            return  # every invocation drew zero iterations: no events

        first_iteration = np.empty(len(trips), dtype=np.int64)
        first_iteration[0] = 0
        np.cumsum(trips[:-1], out=first_iteration[1:])

        # Per-site outcome streams over every iteration of the batch.
        streams: Dict[int, np.ndarray] = {}
        if self.pattern_sites:
            # Iteration i of invocation j executes a pattern site at
            # position (start_j + i) % period, with start_j snapshotted
            # from the shared position state when the invocation ran.
            iteration_index = np.arange(total, dtype=np.int64) - np.repeat(
                first_iteration, trips
            )
            for slot, site in enumerate(self.pattern_sites):
                starts_per_invocation = np.asarray(
                    batch.positions[slot], dtype=np.int64
                )
                positions = (
                    np.repeat(starts_per_invocation, trips) + iteration_index
                ) % site.period
                streams[id(site)] = site.pattern_variants[positions]
        for site in self.drawing_sites:
            streams[id(site)] = np.concatenate(batch.choices[site.draw_column])

        # Source pool offset and length of every (iteration, segment):
        # one row per site plus the latch row.
        rows = len(self.sites) + 1
        src = np.empty((rows, total), dtype=np.int64)
        length = np.empty((rows, total), dtype=np.int64)
        for row, site in enumerate(self.sites):
            if isinstance(site, _Template):
                src[row] = site.pool_offset
                length[row] = site.n_events
            else:
                stream = streams[id(site)]
                src[row] = site.var_pool[stream]
                length[row] = site.var_events[stream]
        # Zero-trip invocations have no iterations (and no latch).
        last_iteration = (first_iteration + trips - 1)[trips > 0]
        src[-1] = self.latch_taken_pool
        src[-1, last_iteration] = self.latch_done_pool
        length[-1] = 1

        # Destination offset of every segment: per-iteration exclusive
        # prefix down the rows, plus the iteration's global start.
        cumulative_rows = length.cumsum(axis=0)
        iteration_lengths = cumulative_rows[-1]
        cumulative = np.empty(total + 1, dtype=np.int64)
        cumulative[0] = 0
        np.cumsum(iteration_lengths, out=cumulative[1:])
        correction = offsets - cumulative[first_iteration]
        starts = cumulative[:total] + np.repeat(correction, trips)
        dst = (cumulative_rows - length) + starts

        spans.add(src.ravel(), dst.ravel(), length.ravel())


class _SpanAccumulator:
    """Collects (source, destination, length) span triples.

    Every fast-path emission reduces to copying a span of the compiled
    column *pool* to an absolute position in the output trace; the
    accumulator gathers all spans of a run so one vectorized expansion
    stamps the entire trace.
    """

    __slots__ = ("src", "dst", "length")

    def __init__(self) -> None:
        self.src: List[np.ndarray] = []
        self.dst: List[np.ndarray] = []
        self.length: List[np.ndarray] = []

    def add(self, src: np.ndarray, dst: np.ndarray, length: np.ndarray) -> None:
        self.src.append(src)
        self.dst.append(dst)
        self.length.append(length)


# ----------------------------------------------------------------------
# The compiler
# ----------------------------------------------------------------------


class _Compiler:
    def __init__(self, max_call_depth: int) -> None:
        self.max_call_depth = max_call_depth
        self.templates: List[_Template] = []
        self.flat_loops: List[_CFlatLoop] = []
        #: Guards lazy flat-loop compilation and pool growth: the
        #: compiled schedule is memoized per program, and the
        #: thread-safe trace cache advertises concurrent generation.
        self.lock = threading.Lock()
        #: Memoized static emission size per region (None = dynamic),
        #: so deciding staticness never re-walks a subtree.
        self._static_sizes: Dict[int, Optional[int]] = {}
        #: The column pool grows lazily (flat-loop segments are placed
        #: on first invocation); the array view is rebuilt on demand.
        self._pool_block_ids: List[int] = []
        self._pool_taken: List[bool] = []
        self._pool_targets: List[int] = []
        self._pool_cache: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # -- column pool -------------------------------------------------------

    def place(self, template: _Template) -> int:
        """Append a template's columns to the pool."""
        template.pool_offset = len(self._pool_block_ids)
        self._pool_block_ids.extend(template.block_ids)
        self._pool_taken.extend(template.taken)
        self._pool_targets.extend(template.targets)
        self._pool_cache = None
        return template.pool_offset

    def place_flat_loop(self, flat: "_CFlatLoop", sites: _SiteList) -> None:
        """Pool the segments of a freshly compiled flat loop."""
        for site in sites:
            if isinstance(site, _Template):
                self.place(site)
            else:
                site.var_pool = np.asarray(
                    [self.place(variant) for variant in site.variants],
                    dtype=np.int64,
                )
        latch = flat.latch
        flat.latch_taken_pool = len(self._pool_block_ids)
        flat.latch_done_pool = flat.latch_taken_pool + 1
        self._pool_block_ids.extend((latch.block_id, latch.block_id))
        self._pool_taken.extend((True, False))
        self._pool_targets.extend((NO_TARGET, NO_TARGET))
        self._pool_cache = None

    def pool_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        cached = self._pool_cache
        if cached is None:
            # Built under the lock so a concurrent lazy placement never
            # interleaves with the list-to-array conversion.
            with self.lock:
                cached = self._pool_cache
                if cached is None:
                    cached = (
                        np.asarray(self._pool_block_ids, dtype=np.int64),
                        np.asarray(self._pool_taken, dtype=np.bool_),
                        np.asarray(self._pool_targets, dtype=np.int64),
                    )
                    self._pool_cache = cached
        return cached

    def register(self, template: _Template) -> _Template:
        """Give a template a slot in the instance-offset table (idempotent)."""
        if template.index < 0:
            template.index = len(self.templates)
            self.templates.append(template)
        return template

    def _static_size(self, region: Region) -> Optional[int]:
        """Emission size of a region if it is static, else ``None``.

        A cheap structural analysis (memoized per region) that gates the
        recording pass: recording executes whole subtrees, so detecting
        dynamic regions by exception from every ancestor would make
        compilation quadratic in nesting depth.
        """
        key = id(region)
        memo = self._static_sizes
        if key in memo:
            return memo[key]
        memo[key] = None  # recursion guard: treat cycles as dynamic
        size = self._compute_static_size(region)
        memo[key] = size
        return size

    def _compute_static_size(self, region: Region) -> Optional[int]:
        if isinstance(region, (CodeRegion, JumpRegion, SyscallRegion)):
            return 1
        if isinstance(region, Sequence):
            total = 0
            for child in region.regions:
                size = self._static_size(child)
                if size is None:
                    return None
                total += size
            return total if total <= MAX_TEMPLATE_EVENTS else None
        if isinstance(region, If):
            # Only single-outcome patterns are static (the pattern
            # position of a length-1 pattern never changes).
            if region.pattern is None or len(region.pattern) != 1:
                return None
            if region.pattern[0]:
                size = self._static_size(region.then)
                if size is None:
                    return None
                return 1 + size + (1 if region.skip_else is not None else 0)
            if region.orelse is None:
                return 1
            size = self._static_size(region.orelse)
            return None if size is None else 1 + size
        if isinstance(region, Loop):
            if not isinstance(region.trip_count, FixedTripCount):
                return None
            size = self._static_size(region.body)
            if size is None:
                return None
            total = region.trip_count.count * (size + 1)
            return total if total <= MAX_TEMPLATE_EVENTS else None
        if isinstance(region, CallRegion):
            size = self._static_size(region.callee.body)
            return None if size is None else size + 2  # call + body + return
        return None  # indirect dispatch or unknown region kinds

    def try_record(self, region: Region) -> Optional[_Template]:
        if self._static_size(region) is None:
            return None
        recorder = _Recorder(self.max_call_depth)
        try:
            # The structural gate said static; recording through the
            # region's own execute stays as the authoritative check.
            region.execute(recorder)
        except _NotStatic:
            self._static_sizes[id(region)] = None
            return None
        return _Template(recorder, sources=[region])

    def record_variant(self, emit) -> Optional[_Template]:
        """Record one forced outcome of a choice site; ``emit`` mirrors
        the corresponding branch of the region's ``execute``."""
        recorder = _Recorder(self.max_call_depth)
        try:
            emit(recorder)
        except _NotStatic:
            return None
        return _Template(recorder, sources=None)

    # -- region compilation ------------------------------------------------

    def compile_region(self, region: Region) -> object:
        """Compile one region; a returned ``_CStatic`` is *unregistered*
        (the caller registers it, after any adjacent-run merging)."""
        static = self.try_record(region)
        if static is not None:
            return _CStatic(static)
        if isinstance(region, Sequence):
            return self.compile_sequence(region)
        if isinstance(region, Loop):
            return self.compile_loop(region)
        # Non-static conditionals, indirect dispatch sites, or calls to
        # non-static functions outside a flat loop: execute literally.
        # (Synthesis never produces these outside loop bodies; the
        # fallback keeps arbitrary hand-built programs exact.)
        return _CFallback(region)

    def compile_root(self, region: Region) -> object:
        """Compile a region used directly as an execution root."""
        node = self.compile_region(region)
        if isinstance(node, _CStatic):
            self.register(node.template)
        return node

    def compile_sequence(self, region: Sequence) -> object:
        children: List[object] = []
        static_run: List[_Template] = []

        def flush_static_run() -> None:
            if not static_run:
                return
            # Merge a whole run of adjacent static children at once and
            # register only the result, so no dead intermediate
            # templates reach the pool or the per-run offset table.
            template = (
                static_run[0]
                if len(static_run) == 1
                else _merge_templates(static_run)
            )
            children.append(_CStatic(self.register(template)))
            static_run.clear()

        for child in region.regions:
            node = self.compile_region(child)
            if isinstance(node, _CStatic):
                static_run.append(node.template)
            else:
                flush_static_run()
                children.append(node)
        flush_static_run()
        if len(children) == 1:
            return children[0]
        return _CSeq(children)

    def compile_loop(self, loop: Loop) -> object:
        if self._body_is_flat(loop.body):
            flat = _CFlatLoop(loop, self)
            flat.index = len(self.flat_loops)
            self.flat_loops.append(flat)
            return flat
        node = _CLoop(loop, self.compile_root(loop.body))
        # Latch templates are emitted through the shared template table.
        self.register(node.latch_taken)
        self.register(node.latch_done)
        return node

    def _body_is_flat(self, region: Region) -> bool:
        """Structural gate: can this loop body flatten into sites?

        Mirrors what :meth:`flatten_body_sites` will accept without
        doing any recording, so the (much more expensive) segment
        recording can wait until the loop's first invocation.
        """
        if self._static_size(region) is not None:
            return True
        limit = MAX_TEMPLATE_EVENTS - 2  # room for dispatch/join blocks
        if isinstance(region, Sequence):
            return all(self._body_is_flat(child) for child in region.regions)
        if isinstance(region, If):
            then_size = self._static_size(region.then)
            if then_size is None or then_size > limit:
                return False
            if region.orelse is not None:
                else_size = self._static_size(region.orelse)
                if else_size is None or else_size > limit:
                    return False
            return True
        if isinstance(region, IndirectCallRegion):
            return all(
                (size := self._static_size(callee.body)) is not None
                and size <= limit
                for callee in region.callees
            )
        if isinstance(region, IndirectJumpRegion):
            return all(
                (size := self._static_size(case)) is not None and size <= limit
                for case in region.cases
            )
        return False

    def flatten_body_sites(self, region: Region) -> Optional[_SiteList]:
        """Flatten a loop body into static/choice sites, or ``None``."""
        sites: _SiteList = []
        if not self._flatten_into(region, sites):
            return None
        return sites

    def _flatten_into(self, region: Region, sites: _SiteList) -> bool:
        static = self.try_record(region)
        if static is not None:
            self._append_static(sites, static)
            return True
        if isinstance(region, Sequence):
            return all(self._flatten_into(child, sites) for child in region.regions)
        if isinstance(region, If):
            site = self._compile_if_site(region)
        elif isinstance(region, IndirectCallRegion):
            site = self._compile_indirect_call_site(region)
        elif isinstance(region, IndirectJumpRegion):
            site = self._compile_indirect_jump_site(region)
        else:
            return False  # nested dynamic loop or unknown construct
        if site is None:
            return False
        sites.append(site)
        return True

    def _append_static(self, sites: _SiteList, template: _Template) -> None:
        if sites and isinstance(sites[-1], _Template):
            sites[-1] = _merge_templates([sites[-1], template])
        else:
            sites.append(template)

    def _compile_if_site(self, region: If) -> Optional[_ChoiceSite]:
        # Variant emissions mirror If.execute exactly: the condition is
        # taken when the then-branch is skipped.
        def then_variant(rec: _Recorder) -> None:
            rec.emit(region.condition, taken=False)
            region.then.execute(rec)
            if region.skip_else is not None:
                rec.emit(region.skip_else, taken=True)

        def else_variant(rec: _Recorder) -> None:
            rec.emit(region.condition, taken=True)
            if region.orelse is not None:
                region.orelse.execute(rec)

        then_template = self.record_variant(then_variant)
        else_template = self.record_variant(else_variant)
        if then_template is None or else_template is None:
            return None
        site = _ChoiceSite(
            _CHOICE_PATTERN if region.pattern is not None else _CHOICE_RANDOM,
            [then_template, else_template],
        )
        if region.pattern is not None:
            site.owner = region
            site.pattern_variants = np.asarray(
                [0 if outcome else 1 for outcome in region.pattern], dtype=np.int64
            )
            site.finish_pattern()
        else:
            site.threshold = region.probability_then
        return site

    def _compile_indirect_call_site(
        self, region: IndirectCallRegion
    ) -> Optional[_ChoiceSite]:
        variants: List[_Template] = []
        for callee in region.callees:
            def variant(rec: _Recorder, callee=callee) -> None:
                rec.emit(region.call_block, taken=True, target=callee.entry_address)
                rec.call(callee, return_to=region.call_block.fallthrough_address)

            template = self.record_variant(variant)
            if template is None:
                return None
            variants.append(template)
        site = _ChoiceSite(_CHOICE_WEIGHTED, variants)
        site.cum_weights = np.cumsum(np.asarray(region.weights, dtype=np.float64))
        return site

    def _compile_indirect_jump_site(
        self, region: IndirectJumpRegion
    ) -> Optional[_ChoiceSite]:
        variants: List[_Template] = []
        for index, case in enumerate(region.cases):
            def variant(rec: _Recorder, index=index, case=case) -> None:
                entry = _first_block(case)
                rec.emit(
                    region.dispatch,
                    taken=True,
                    target=None if entry is None else entry.address,
                )
                case.execute(rec)
                rec.emit(region.case_exits[index], taken=True)

            template = self.record_variant(variant)
            if template is None:
                return None
            variants.append(template)
        site = _ChoiceSite(_CHOICE_WEIGHTED, variants)
        site.cum_weights = np.cumsum(np.asarray(region.weights, dtype=np.float64))
        return site


class _CompiledPhase:
    __slots__ = ("body", "return_template", "section_code", "repeat")

    def __init__(self, phase: Phase, body: object, return_template: _Template) -> None:
        self.body = body
        self.return_template = return_template
        self.section_code = int(phase.section)
        self.repeat = phase.repeat


class CompiledSchedule:
    """A program + schedule lowered to the segment IR, ready to run."""

    def __init__(
        self,
        program: Program,
        schedule: ExecutionSchedule,
        max_call_depth: int = 64,
    ) -> None:
        self.program = program
        self.schedule = schedule
        self.max_call_depth = max_call_depth
        #: Compiled against this static layout; a re-layout invalidates.
        self.columns = program_columns(program)
        compiler = _Compiler(max_call_depth)
        self.setup = [self._compile_phase(compiler, p) for p in schedule.setup]
        self.steady = [self._compile_phase(compiler, p) for p in schedule.steady]
        self.templates = compiler.templates
        self.flat_loops = compiler.flat_loops
        #: Kept alive for lazy flat-loop compilation and the column pool.
        self._compiler = compiler
        for template in self.templates:
            compiler.place(template)

    def _compile_phase(self, compiler: _Compiler, phase: Phase) -> _CompiledPhase:
        body = compiler.compile_root(phase.function.body)
        return_template = compiler.register(
            _make_event_template(phase.function.return_block, True, None)
        )
        return _CompiledPhase(phase, body, return_template)

    # -- execution ---------------------------------------------------------

    def run(self, max_instructions: int, seed: int = 0, name: str = "") -> Trace:
        """Generate one trace; bit-identical to the reference generator."""
        if max_instructions < 1:
            raise ValueError("max_instructions must be positive")
        state = _RunState(
            np.random.default_rng(seed),
            max_instructions,
            self.max_call_depth,
            len(self.templates),
            len(self.flat_loops),
        )

        for phase in self.setup:
            self._run_phase(state, phase)
            if state.exhausted:
                break
        if self.steady:
            while not state.exhausted:
                for phase in self.steady:
                    self._run_phase(state, phase)
                    if state.exhausted:
                        break

        return self._materialize(state, name or self.program.name)

    @staticmethod
    def _run_phase(state: _RunState, phase: _CompiledPhase) -> None:
        state.set_section(phase.section_code)
        for _ in range(phase.repeat):
            phase.body.execute(state)
            state.add_template(phase.return_template)
            if state.exhausted:
                return

    # -- materialization ---------------------------------------------------

    def _materialize(self, state: _RunState, name: str) -> Trace:
        out_block_ids = np.empty(state.events, dtype=np.int64)
        out_taken = np.empty(state.events, dtype=np.bool_)
        out_targets = np.empty(state.events, dtype=np.int64)
        out_sections = np.empty(state.events, dtype=np.uint8)

        spans = _SpanAccumulator()
        for template, offsets in zip(self.templates, state.template_offsets):
            if not offsets:
                continue
            dst = np.asarray(offsets, dtype=np.int64)
            spans.add(
                np.full(dst.shape[0], template.pool_offset, dtype=np.int64),
                dst,
                np.full(dst.shape[0], template.n_events, dtype=np.int64),
            )
        for flat in self.flat_loops:
            flat.stamp(state, spans)

        if spans.src:
            # One global expansion: every span becomes a contiguous
            # pool-to-output copy, all performed as three fancy gathers.
            src0 = np.concatenate(spans.src)
            dst0 = np.concatenate(spans.dst)
            lengths = np.concatenate(spans.length)
            cumulative = np.empty(lengths.shape[0] + 1, dtype=np.int64)
            cumulative[0] = 0
            np.cumsum(lengths, out=cumulative[1:])
            total = int(cumulative[-1])
            within = np.arange(total, dtype=np.int64) - np.repeat(
                cumulative[:-1], lengths
            )
            src = np.repeat(src0, lengths) + within
            dst = np.repeat(dst0, lengths) + within
            pool_block_ids, pool_taken, pool_targets = self._compiler.pool_arrays()
            out_block_ids[dst] = pool_block_ids[src]
            out_taken[dst] = pool_taken[src]
            out_targets[dst] = pool_targets[src]

        for offset, bids, taken, targets in state.literal_runs:
            end = offset + len(bids)
            out_block_ids[offset:end] = bids
            out_taken[offset:end] = taken
            out_targets[offset:end] = targets

        section_spans = state.section_spans
        for index, (start, code) in enumerate(section_spans):
            end = (
                section_spans[index + 1][0]
                if index + 1 < len(section_spans)
                else state.events
            )
            out_sections[start:end] = code

        return Trace.from_columns(
            self.program,
            out_block_ids,
            out_taken,
            out_targets,
            out_sections,
            name=name,
        )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


def compile_schedule(
    program: Program,
    schedule: ExecutionSchedule,
    max_call_depth: int = 64,
) -> CompiledSchedule:
    """Compile (with memoization) a program + schedule into segment IR.

    The cache lives on the program object and is keyed by the schedule
    and the call-depth limit; it is invalidated automatically when the
    program is re-laid-out, because compiled templates bake in block
    addresses (the check compares the cached
    :class:`~repro.trace.columns.ProgramColumns` identity, which the
    layout pass refreshes).
    """
    cache: Optional[dict] = getattr(program, "_repro_compiled", None)
    if cache is None:
        cache = {}
        program._repro_compiled = cache
    key = (id(schedule), max_call_depth)
    entry = cache.get(key)
    if entry is not None:
        cached_schedule, compiled = entry
        if cached_schedule is schedule and compiled.columns is program_columns(program):
            return compiled
    compiled = CompiledSchedule(program, schedule, max_call_depth)
    cache[key] = (schedule, compiled)
    return compiled


class CompiledTraceGenerator:
    """Drop-in counterpart of :class:`TraceGenerator` on the compiled path."""

    def __init__(
        self,
        program: Program,
        schedule: ExecutionSchedule,
        seed: int = 0,
        max_call_depth: int = 64,
    ) -> None:
        self.program = program
        self.schedule = schedule
        self.seed = seed
        self.compiled = compile_schedule(program, schedule, max_call_depth)

    def run(self, max_instructions: int, name: str = "") -> Trace:
        return self.compiled.run(max_instructions, seed=self.seed, name=name)


def generate_trace_compiled(
    program: Program,
    schedule: ExecutionSchedule,
    max_instructions: int,
    seed: int = 0,
    name: str = "",
) -> Trace:
    """Convenience wrapper: compile (cached) and generate one trace."""
    return compile_schedule(program, schedule).run(
        max_instructions, seed=seed, name=name
    )
