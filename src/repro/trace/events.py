"""Dynamic trace containers.

The executor emits a stream of :class:`BlockEvent` records; the
:class:`Trace` wraps that stream together with the static program and
derives the per-branch view (:class:`BranchRecord`) that the front-end
simulators consume.  This is the exact information a Pin instruction
trace exposes to the paper's pintools: instruction addresses and sizes,
branch kinds, outcomes, targets, and the serial/parallel section tag.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence

from repro.trace.basic_block import BasicBlock
from repro.trace.instruction import BranchKind, CodeSection
from repro.trace.program import Program


class BlockEvent(NamedTuple):
    """One dynamic execution of a static basic block."""

    block_id: int
    taken: bool
    target: Optional[int]
    section: CodeSection


class BranchRecord(NamedTuple):
    """One dynamic branch instruction, fully resolved.

    Attributes
    ----------
    address:
        Address of the branch instruction itself.
    kind:
        The :class:`BranchKind` of the instruction.
    taken:
        Dynamic outcome (unconditional branches, calls, and returns are
        always taken).
    target:
        Target address when taken (``None`` only for syscalls).
    fallthrough:
        Address of the next sequential instruction.
    section:
        Serial or parallel code section.
    """

    address: int
    kind: BranchKind
    taken: bool
    target: Optional[int]
    fallthrough: int
    section: CodeSection

    @property
    def is_backward(self) -> bool:
        """Whether the taken target lies before the branch."""
        return self.target is not None and self.target < self.address

    @property
    def is_forward(self) -> bool:
        """Whether the taken target lies after the branch."""
        return self.target is not None and self.target >= self.address


class Trace(object):
    """A dynamic instruction trace of one workload execution.

    The trace stores block-granularity events (compact) and offers the
    per-branch and per-instruction views that the analysis tools and the
    hardware-structure simulators need.  Filtering by
    :class:`CodeSection` reproduces the paper's total / serial /
    parallel split.
    """

    def __init__(self, program: Program, events: Sequence[BlockEvent], name: str = "") -> None:
        self.program = program
        self.events: List[BlockEvent] = list(events)
        self.name = name or program.name
        self._instruction_counts: Optional[Dict[CodeSection, int]] = None
        self._branch_cache: Dict[CodeSection, List[BranchRecord]] = {}

    # ------------------------------------------------------------------
    # Basic accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def instruction_count(self, section: CodeSection = CodeSection.TOTAL) -> int:
        """Dynamic instruction count of a code section."""
        counts = self._count_instructions()
        if section is CodeSection.TOTAL:
            return counts[CodeSection.SERIAL] + counts[CodeSection.PARALLEL]
        return counts[section]

    def _count_instructions(self) -> Dict[CodeSection, int]:
        if self._instruction_counts is None:
            counts = {CodeSection.SERIAL: 0, CodeSection.PARALLEL: 0}
            blocks = self.program.blocks
            for event in self.events:
                counts[event.section] += blocks[event.block_id].num_instructions
            self._instruction_counts = counts
        return self._instruction_counts

    def section_fraction(self, section: CodeSection) -> float:
        """Fraction of dynamic instructions executed in a section."""
        total = self.instruction_count(CodeSection.TOTAL)
        if total == 0:
            return 0.0
        return self.instruction_count(section) / total

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def block_events(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> Iterator[BlockEvent]:
        """Iterate block events, optionally restricted to one section."""
        if section is CodeSection.TOTAL:
            yield from self.events
        else:
            for event in self.events:
                if event.section is section:
                    yield event

    def blocks_for(self, event: BlockEvent) -> BasicBlock:
        """The static block an event refers to."""
        return self.program.blocks[event.block_id]

    def branch_records(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> List[BranchRecord]:
        """All dynamic branch instructions of a section, in order."""
        if section not in self._branch_cache:
            self._branch_cache[section] = list(self._build_branches(section))
        return self._branch_cache[section]

    def _build_branches(self, section: CodeSection) -> Iterator[BranchRecord]:
        blocks = self.program.blocks
        for event in self.block_events(section):
            block = blocks[event.block_id]
            kind = block.terminator
            if not kind.is_branch:
                continue
            target = event.target
            if target is None and block.taken_target is not None:
                target = block.taken_target
            yield BranchRecord(
                address=block.branch_address,
                kind=kind,
                taken=event.taken,
                target=target,
                fallthrough=block.fallthrough_address,
                section=event.section,
            )

    def branch_count(self, section: CodeSection = CodeSection.TOTAL) -> int:
        """Number of dynamic branch instructions in a section."""
        return len(self.branch_records(section))

    def conditional_branches(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> List[BranchRecord]:
        """Only the conditional direct branches of a section."""
        return [
            record
            for record in self.branch_records(section)
            if record.kind.is_conditional
        ]

    def block_execution_counts(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> Dict[int, int]:
        """How many times each static block executed in a section."""
        counts: Dict[int, int] = {}
        for event in self.block_events(section):
            counts[event.block_id] = counts.get(event.block_id, 0) + 1
        return counts

    def mpki(self, misses: int, section: CodeSection = CodeSection.TOTAL) -> float:
        """Convert a miss count to misses per kilo-instruction."""
        instructions = self.instruction_count(section)
        if instructions == 0:
            return 0.0
        return misses * 1000.0 / instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, events={len(self.events)}, "
            f"instructions={self.instruction_count()})"
        )
