"""Dynamic trace containers.

The executor emits a stream of block executions; the :class:`Trace`
stores that stream **columnar** (structure-of-arrays): one NumPy array
each for block ids, branch outcomes, dynamic targets, and code
sections.  Together with the static per-block lookup arrays of
:mod:`repro.trace.columns` this makes the derived views the front-end
simulators consume -- instruction counts, per-branch records, block
execution counts -- O(1) vectorized gathers instead of per-event Python
loops, while the original event-object API (:class:`BlockEvent`
iteration, :class:`BranchRecord` lists) is synthesized on demand and
stays available for tests and external tooling.

This is the exact information a Pin instruction trace exposes to the
paper's pintools: instruction addresses and sizes, branch kinds,
outcomes, targets, and the serial/parallel section tag.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, NamedTuple, Optional, Sequence

import numpy as np

from repro.trace.basic_block import BasicBlock
from repro.trace.columns import NO_TARGET, program_columns
from repro.trace.instruction import BranchKind, CodeSection
from repro.trace.program import Program

#: Enum lookup tables so row materialization avoids Enum.__call__.
_KIND_BY_CODE = {int(kind): kind for kind in BranchKind}
_SECTION_BY_CODE = {int(section): section for section in CodeSection}


class BlockEvent(NamedTuple):
    """One dynamic execution of a static basic block."""

    block_id: int
    taken: bool
    target: Optional[int]
    section: CodeSection


class BranchRecord(NamedTuple):
    """One dynamic branch instruction, fully resolved.

    Attributes
    ----------
    address:
        Address of the branch instruction itself.
    kind:
        The :class:`BranchKind` of the instruction.
    taken:
        Dynamic outcome (unconditional branches, calls, and returns are
        always taken).
    target:
        Target address when taken (``None`` only for syscalls).
    fallthrough:
        Address of the next sequential instruction.
    section:
        Serial or parallel code section.
    """

    address: int
    kind: BranchKind
    taken: bool
    target: Optional[int]
    fallthrough: int
    section: CodeSection

    @property
    def is_backward(self) -> bool:
        """Whether the taken target lies before the branch."""
        return self.target is not None and self.target < self.address

    @property
    def is_forward(self) -> bool:
        """Whether the taken target lies after the branch."""
        return self.target is not None and self.target >= self.address


class BranchColumns(NamedTuple):
    """Columnar view of the dynamic branches of one trace section.

    ``targets`` uses :data:`~repro.trace.columns.NO_TARGET` (-1) where a
    branch has no resolvable target (syscalls); otherwise dynamic
    targets take precedence over the statically-known taken target,
    exactly as in :class:`BranchRecord` materialization.
    """

    addresses: np.ndarray
    kinds: np.ndarray
    taken: np.ndarray
    targets: np.ndarray
    fallthroughs: np.ndarray
    sections: np.ndarray
    is_conditional: np.ndarray

    def __len__(self) -> int:
        return int(self.addresses.shape[0])


class Trace(object):
    """A dynamic instruction trace of one workload execution.

    The trace stores block-granularity events as NumPy columns
    (compact) and offers the per-branch and per-instruction views that
    the analysis tools and the hardware-structure simulators need.
    Filtering by :class:`CodeSection` reproduces the paper's total /
    serial / parallel split.
    """

    def __init__(
        self,
        program: Program,
        events: Optional[Sequence[BlockEvent]] = None,
        name: str = "",
        *,
        columns: Optional[tuple] = None,
    ) -> None:
        self.program = program
        self.name = name or program.name
        if columns is not None:
            block_ids, taken, targets, sections = columns
            self._block_ids = np.asarray(block_ids, dtype=np.int64)
            self._taken = np.asarray(taken, dtype=np.bool_)
            self._targets = np.asarray(targets, dtype=np.int64)
            self._section_codes = np.asarray(sections, dtype=np.uint8)
        else:
            events = list(events or [])
            n = len(events)
            self._block_ids = np.fromiter(
                (e.block_id for e in events), dtype=np.int64, count=n
            )
            self._taken = np.fromiter(
                (e.taken for e in events), dtype=np.bool_, count=n
            )
            self._targets = np.fromiter(
                (NO_TARGET if e.target is None else e.target for e in events),
                dtype=np.int64,
                count=n,
            )
            self._section_codes = np.fromiter(
                (int(e.section) for e in events), dtype=np.uint8, count=n
            )
        self._events: Optional[tuple] = None
        self._instruction_counts: Optional[Dict[CodeSection, int]] = None
        self._branch_cache: Dict[CodeSection, List[BranchRecord]] = {}
        self._branch_columns: Dict[CodeSection, BranchColumns] = {}
        self._event_masks: Dict[CodeSection, Optional[np.ndarray]] = {}

    @classmethod
    def from_columns(
        cls,
        program: Program,
        block_ids,
        taken,
        targets,
        sections,
        name: str = "",
    ) -> "Trace":
        """Build a trace directly from event columns (the fast path)."""
        return cls(program, name=name, columns=(block_ids, taken, targets, sections))

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    @property
    def block_ids(self) -> np.ndarray:
        """Per-event static block ids (int64)."""
        return self._block_ids

    @property
    def taken_column(self) -> np.ndarray:
        """Per-event branch outcomes (bool)."""
        return self._taken

    @property
    def target_column(self) -> np.ndarray:
        """Per-event dynamic targets (int64, -1 for none)."""
        return self._targets

    @property
    def section_column(self) -> np.ndarray:
        """Per-event section codes (uint8)."""
        return self._section_codes

    def _section_mask(self, section: CodeSection) -> Optional[np.ndarray]:
        """Boolean event mask of a section (None means all events)."""
        if section is CodeSection.TOTAL:
            return None
        if section not in self._event_masks:
            self._event_masks[section] = self._section_codes == int(section)
        return self._event_masks[section]

    def event_columns(self, section: CodeSection = CodeSection.TOTAL):
        """Event columns ``(block_ids, taken, targets, sections)`` of a section."""
        mask = self._section_mask(section)
        if mask is None:
            return self._block_ids, self._taken, self._targets, self._section_codes
        return (
            self._block_ids[mask],
            self._taken[mask],
            self._targets[mask],
            self._section_codes[mask],
        )

    # ------------------------------------------------------------------
    # Basic accounting
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self._block_ids.shape[0])

    def instruction_count(self, section: CodeSection = CodeSection.TOTAL) -> int:
        """Dynamic instruction count of a code section."""
        counts = self._count_instructions()
        if section is CodeSection.TOTAL:
            return counts[CodeSection.SERIAL] + counts[CodeSection.PARALLEL]
        return counts[section]

    def _count_instructions(self) -> Dict[CodeSection, int]:
        if self._instruction_counts is None:
            if len(self) == 0:
                self._instruction_counts = {
                    CodeSection.SERIAL: 0,
                    CodeSection.PARALLEL: 0,
                }
                return self._instruction_counts
            per_event = program_columns(self.program).num_instructions[self._block_ids]
            total = int(per_event.sum())
            serial = int(
                per_event[self._section_codes == int(CodeSection.SERIAL)].sum()
            )
            self._instruction_counts = {
                CodeSection.SERIAL: serial,
                CodeSection.PARALLEL: total - serial,
            }
        return self._instruction_counts

    def section_fraction(self, section: CodeSection) -> float:
        """Fraction of dynamic instructions executed in a section."""
        total = self.instruction_count(CodeSection.TOTAL)
        if total == 0:
            return 0.0
        return self.instruction_count(section) / total

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple:
        """Event-object view, synthesized lazily from the columns.

        Read-only: the columns are the source of truth, so the view is
        a tuple -- mutating it (the old ``List[BlockEvent]`` allowed
        appends that now would silently diverge from the columns)
        raises instead.
        """
        if self._events is None:
            sections = [_SECTION_BY_CODE[s] for s in self._section_codes.tolist()]
            self._events = tuple(
                BlockEvent(b, t, None if g == NO_TARGET else g, s)
                for b, t, g, s in zip(
                    self._block_ids.tolist(),
                    self._taken.tolist(),
                    self._targets.tolist(),
                    sections,
                )
            )
        return self._events

    def block_events(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> Iterator[BlockEvent]:
        """Iterate block events, optionally restricted to one section."""
        if section is CodeSection.TOTAL:
            yield from self.events
        else:
            for event in self.events:
                if event.section is section:
                    yield event

    def blocks_for(self, event: BlockEvent) -> BasicBlock:
        """The static block an event refers to."""
        return self.program.blocks[event.block_id]

    def branch_columns(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> BranchColumns:
        """Columnar view of the dynamic branches of a section, in order."""
        if section not in self._branch_columns:
            block_ids, taken, targets, sections = self.event_columns(section)
            static = program_columns(self.program)
            mask = static.is_branch[block_ids]
            branch_ids = block_ids[mask]
            dynamic_targets = targets[mask]
            static_targets = static.taken_targets[branch_ids]
            resolved = np.where(
                dynamic_targets != NO_TARGET, dynamic_targets, static_targets
            )
            self._branch_columns[section] = BranchColumns(
                addresses=static.branch_addresses[branch_ids],
                kinds=static.terminators[branch_ids],
                taken=taken[mask],
                targets=resolved,
                fallthroughs=static.fallthrough_addresses[branch_ids],
                sections=sections[mask],
                is_conditional=static.is_conditional[branch_ids],
            )
        return self._branch_columns[section]

    def branch_records(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> List[BranchRecord]:
        """All dynamic branch instructions of a section, in order."""
        if section not in self._branch_cache:
            cols = self.branch_columns(section)
            kinds = [_KIND_BY_CODE[k] for k in cols.kinds.tolist()]
            sections = [_SECTION_BY_CODE[s] for s in cols.sections.tolist()]
            self._branch_cache[section] = [
                BranchRecord(
                    address=address,
                    kind=kind,
                    taken=taken,
                    target=None if target == NO_TARGET else target,
                    fallthrough=fallthrough,
                    section=sec,
                )
                for address, kind, taken, target, fallthrough, sec in zip(
                    cols.addresses.tolist(),
                    kinds,
                    cols.taken.tolist(),
                    cols.targets.tolist(),
                    cols.fallthroughs.tolist(),
                    sections,
                )
            ]
        return self._branch_cache[section]

    def branch_count(self, section: CodeSection = CodeSection.TOTAL) -> int:
        """Number of dynamic branch instructions in a section."""
        return len(self.branch_columns(section))

    def conditional_branches(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> List[BranchRecord]:
        """Only the conditional direct branches of a section."""
        return [
            record
            for record in self.branch_records(section)
            if record.kind.is_conditional
        ]

    def block_execution_counts(
        self, section: CodeSection = CodeSection.TOTAL
    ) -> Dict[int, int]:
        """How many times each static block executed in a section.

        The mapping preserves first-execution order, matching the
        insertion order the event-walking implementation produced.
        """
        block_ids, _, _, _ = self.event_columns(section)
        if block_ids.shape[0] == 0:
            return {}
        unique, first_seen, counts = np.unique(
            block_ids, return_index=True, return_counts=True
        )
        order = np.argsort(first_seen, kind="stable")
        unique_list = unique[order].tolist()
        count_list = counts[order].tolist()
        return dict(zip(unique_list, count_list))

    def mpki(self, misses: int, section: CodeSection = CodeSection.TOTAL) -> float:
        """Convert a miss count to misses per kilo-instruction."""
        instructions = self.instruction_count(section)
        if instructions == 0:
            return 0.0
        return misses * 1000.0 / instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace({self.name!r}, events={len(self)}, "
            f"instructions={self.instruction_count()})"
        )
