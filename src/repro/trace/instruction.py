"""Instruction-level vocabulary shared across the package.

The paper classifies dynamic branch instructions into the categories
shown in Figure 1 (calls, indirect calls, direct branches, indirect
branches, syscalls, and returns) and tags every instruction with the
code section it belongs to (serial or parallel).  These enumerations are
that vocabulary.
"""

from __future__ import annotations

import enum


class BranchKind(enum.IntEnum):
    """Terminator type of a basic block.

    ``NONE`` marks a block that simply falls through to the next block
    (no control-flow instruction at its end).  The remaining members
    match the dynamic branch categories of Figure 1 in the paper, with
    conditional and unconditional direct branches kept separate because
    only conditional branches consult the branch predictor's direction
    logic.
    """

    NONE = 0
    CONDITIONAL_DIRECT = 1
    UNCONDITIONAL_DIRECT = 2
    CALL = 3
    RETURN = 4
    INDIRECT_CALL = 5
    INDIRECT_BRANCH = 6
    SYSCALL = 7

    @property
    def is_branch(self) -> bool:
        """Whether this terminator is a branch instruction at all."""
        return self is not BranchKind.NONE

    @property
    def is_conditional(self) -> bool:
        """Whether the branch consults the direction predictor."""
        return self is BranchKind.CONDITIONAL_DIRECT

    @property
    def is_indirect(self) -> bool:
        """Whether the branch target comes from a register/memory value."""
        return self in (BranchKind.INDIRECT_CALL, BranchKind.INDIRECT_BRANCH)

    @property
    def is_call(self) -> bool:
        """Whether the branch pushes a return address."""
        return self in (BranchKind.CALL, BranchKind.INDIRECT_CALL)

    @property
    def figure1_category(self) -> str:
        """Label used by the Figure 1 breakdown for this branch kind."""
        labels = {
            BranchKind.CONDITIONAL_DIRECT: "direct branch",
            BranchKind.UNCONDITIONAL_DIRECT: "direct branch",
            BranchKind.CALL: "call",
            BranchKind.RETURN: "return",
            BranchKind.INDIRECT_CALL: "indirect call",
            BranchKind.INDIRECT_BRANCH: "indirect branch",
            BranchKind.SYSCALL: "syscall",
        }
        if self is BranchKind.NONE:
            raise ValueError("fall-through blocks have no branch category")
        return labels[self]


#: The branch categories of Figure 1, in the order the paper stacks them.
FIGURE1_CATEGORIES = (
    "call",
    "indirect call",
    "direct branch",
    "indirect branch",
    "syscall",
    "return",
)


class CodeSection(enum.IntEnum):
    """Which section of the application an instruction executes in.

    The paper separates serial code (executed by the master thread
    between parallel regions) from parallel code (executed inside
    OpenMP/MPI parallel regions).  ``TOTAL`` is used by analysis entry
    points to request the union of both.
    """

    SERIAL = 0
    PARALLEL = 1
    TOTAL = 2

    @property
    def label(self) -> str:
        """Human-readable label used in reports."""
        return self.name.lower()


#: Average x86-64 instruction length in bytes used when synthesising
#: block byte sizes.  SPEC-class binaries average roughly 3.7-4.0 bytes
#: per instruction; the exact value only shifts every byte-denominated
#: metric by the same factor and does not change any comparison.
DEFAULT_INSTRUCTION_BYTES = 4.0

#: Base virtual address of the synthetic text segment (mirrors the
#: default load address of a non-PIE x86-64 ELF binary).
TEXT_BASE_ADDRESS = 0x400000
