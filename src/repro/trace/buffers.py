"""Growable preallocated NumPy buffers for dynamic event columns.

The reference tree-walk executor (:mod:`repro.trace.execution`) emits
its event stream through a :class:`ColumnBuffer`, which keeps the four
event columns (block ids, branch outcomes, dynamic targets, section
codes) as preallocated NumPy arrays that double in capacity when full.
(The compiled segment engine stamps directly into its own output
columns; see :mod:`repro.trace.compiler`.)

Scalar appends stage in short fixed-size Python lists and flush into
the arrays in vectorized chunks: per-event work stays a cheap list
append (a per-event NumPy scalar store measures *slower* than a list
append), while the staging never grows past one chunk and finishing a
trace is a view of the preallocated columns instead of an O(n)
list-to-array conversion of the whole stream.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Smallest capacity a buffer starts with, even for tiny traces.
_MIN_CAPACITY = 256

#: Largest capacity a hint may preallocate; callers sometimes pass an
#: effectively-unbounded instruction budget (e.g. "run one full pass"),
#: and growth handles anything beyond this.
_MAX_HINT_CAPACITY = 1 << 22

#: Scalar appends are staged in lists of at most this many events
#: before being flushed into the NumPy columns in one vectorized copy.
_STAGE_CHUNK = 4096


class ColumnBuffer:
    """Structure-of-arrays event buffer with amortized O(1) growth."""

    __slots__ = (
        "block_ids",
        "taken",
        "targets",
        "sections",
        "size",
        "capacity",
        "_stage_block_ids",
        "_stage_taken",
        "_stage_targets",
        "_stage_sections",
    )

    def __init__(self, capacity_hint: int = 0) -> None:
        capacity = min(_MAX_HINT_CAPACITY, max(_MIN_CAPACITY, int(capacity_hint)))
        self.block_ids = np.empty(capacity, dtype=np.int64)
        self.taken = np.empty(capacity, dtype=np.bool_)
        self.targets = np.empty(capacity, dtype=np.int64)
        self.sections = np.empty(capacity, dtype=np.uint8)
        self.size = 0
        self.capacity = capacity
        self._stage_block_ids: list = []
        self._stage_taken: list = []
        self._stage_targets: list = []
        self._stage_sections: list = []

    def __len__(self) -> int:
        return self.size + len(self._stage_block_ids)

    def _grow(self, needed: int) -> None:
        capacity = self.capacity
        while capacity < needed:
            capacity *= 2
        for name in ("block_ids", "taken", "targets", "sections"):
            old = getattr(self, name)
            new = np.empty(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)
        self.capacity = capacity

    def flush(self) -> None:
        """Copy any staged scalar appends into the column arrays."""
        staged = self._stage_block_ids
        count = len(staged)
        if not count:
            return
        start = self.size
        end = start + count
        if end > self.capacity:
            self._grow(end)
        self.block_ids[start:end] = staged
        self.taken[start:end] = self._stage_taken
        self.targets[start:end] = self._stage_targets
        self.sections[start:end] = self._stage_sections
        self.size = end
        staged.clear()
        self._stage_taken.clear()
        self._stage_targets.clear()
        self._stage_sections.clear()

    def append(self, block_id: int, taken: bool, target: int, section: int) -> None:
        """Append one event (the reference tree-walk path)."""
        self._stage_block_ids.append(block_id)
        self._stage_taken.append(taken)
        self._stage_targets.append(target)
        self._stage_sections.append(section)
        if len(self._stage_block_ids) >= _STAGE_CHUNK:
            self.flush()

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The filled portion of the four columns, as views."""
        self.flush()
        n = self.size
        return (
            self.block_ids[:n],
            self.taken[:n],
            self.targets[:n],
            self.sections[:n],
        )
