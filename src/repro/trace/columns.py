"""Columnar (structure-of-arrays) views of static program metadata.

The trace layer stores dynamic events as NumPy columns; to turn those
into per-branch or per-instruction quantities it needs the static
properties of every basic block as lookup arrays indexed by block id.
:class:`ProgramColumns` precomputes those arrays once per
:class:`~repro.trace.program.Program` so every downstream accessor is a
vectorized gather instead of a per-event Python loop.

The arrays mirror the scalar :class:`~repro.trace.basic_block.BasicBlock`
properties exactly (including the ``branch_address`` approximation), so
columnar results are bit-identical to walking the block objects.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.trace.instruction import BranchKind

#: Sentinel used in target columns for "no statically-known target".
NO_TARGET = -1


class ProgramColumns:
    """Static per-block metadata of a program as dense NumPy arrays.

    All arrays are indexed by ``block_id`` (the dense identifiers a
    :class:`Program` assigns), so gathering per-event values is
    ``array[trace_block_ids]``.
    """

    __slots__ = (
        "num_blocks",
        "num_instructions",
        "size_bytes",
        "addresses",
        "end_addresses",
        "fallthrough_addresses",
        "branch_addresses",
        "terminators",
        "taken_targets",
        "is_branch",
        "is_conditional",
    )

    def __init__(self, program) -> None:
        blocks = program.blocks
        n = len(blocks)
        self.num_blocks = n
        self.num_instructions = np.fromiter(
            (b.num_instructions for b in blocks), dtype=np.int64, count=n
        )
        self.size_bytes = np.fromiter(
            (b.size_bytes for b in blocks), dtype=np.int64, count=n
        )
        self.addresses = np.fromiter(
            (b.address for b in blocks), dtype=np.int64, count=n
        )
        self.terminators = np.fromiter(
            (int(b.terminator) for b in blocks), dtype=np.uint8, count=n
        )
        self.taken_targets = np.fromiter(
            (
                NO_TARGET if b.taken_target is None else b.taken_target
                for b in blocks
            ),
            dtype=np.int64,
            count=n,
        )
        self.end_addresses = self.addresses + self.size_bytes
        self.fallthrough_addresses = self.end_addresses
        # Mirrors BasicBlock.branch_address: the terminator occupies the
        # final average-sized instruction slot of the block.
        average_size = np.maximum(1, self.size_bytes // self.num_instructions)
        self.branch_addresses = self.end_addresses - average_size
        self.is_branch = self.terminators != int(BranchKind.NONE)
        self.is_conditional = self.terminators == int(BranchKind.CONDITIONAL_DIRECT)


def program_columns(program) -> ProgramColumns:
    """Return (building lazily) the cached static columns of a program."""
    cached: Optional[ProgramColumns] = getattr(program, "_repro_columns", None)
    if cached is None:
        cached = ProgramColumns(program)
        program._repro_columns = cached
    return cached


def invalidate_program_columns(program) -> None:
    """Drop cached columns (call after mutating block addresses/targets)."""
    if getattr(program, "_repro_columns", None) is not None:
        program._repro_columns = None
