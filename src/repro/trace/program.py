"""Structured synthetic program model.

A :class:`Program` is a collection of :class:`Function` objects, each of
which owns a tree of :class:`Region` nodes.  Regions model the control
structures a compiler emits for scientific and integer codes: straight
line code, counted and data-dependent loops, conditionals, direct and
indirect calls, indirect jumps (switch dispatch), and system calls.

Executing the tree (see :mod:`repro.trace.execution`) produces the
dynamic basic-block stream from which every workload characteristic in
the paper is measured.  Crucially, the characteristics *emerge* from the
program structure -- loop back-edges produce backward-taken biased
branches, loop-resident hot code produces small dynamic footprints, long
loop bodies produce long basic blocks -- rather than being injected into
the analysis results directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence as Seq

from repro.trace.basic_block import BasicBlock
from repro.trace.instruction import BranchKind


class TripCountModel(abc.ABC):
    """Model of how many iterations a loop executes per invocation."""

    @abc.abstractmethod
    def draw(self, rng) -> int:
        """Number of iterations for one invocation of the loop."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected iterations per invocation."""

    @property
    def is_regular(self) -> bool:
        """Whether the trip count is the same on every invocation."""
        return False


class FixedTripCount(TripCountModel):
    """Loop that always runs the same number of iterations.

    These are the loops a loop branch predictor captures exactly.
    """

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("trip count must be at least 1")
        self.count = int(count)

    def draw(self, rng) -> int:
        return self.count

    @property
    def mean(self) -> float:
        return float(self.count)

    @property
    def is_regular(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedTripCount({self.count})"


class UniformTripCount(TripCountModel):
    """Loop whose trip count is drawn uniformly per invocation."""

    def __init__(self, low: int, high: int) -> None:
        if low < 1 or high < low:
            raise ValueError("need 1 <= low <= high")
        self.low = int(low)
        self.high = int(high)

    def draw(self, rng) -> int:
        return int(rng.integers(self.low, self.high + 1))

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UniformTripCount({self.low}, {self.high})"


class GeometricTripCount(TripCountModel):
    """Loop whose trip count follows a (shifted) geometric distribution.

    Models data-dependent while-loops whose exit condition is hard for a
    loop predictor to learn.
    """

    def __init__(self, mean_iterations: float, minimum: int = 1) -> None:
        if mean_iterations < minimum:
            raise ValueError("mean must be at least the minimum trip count")
        self.mean_iterations = float(mean_iterations)
        self.minimum = int(minimum)

    def draw(self, rng) -> int:
        extra_mean = self.mean_iterations - self.minimum
        if extra_mean <= 0:
            return self.minimum
        p = 1.0 / (extra_mean + 1.0)
        return self.minimum + int(rng.geometric(p)) - 1

    @property
    def mean(self) -> float:
        return self.mean_iterations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GeometricTripCount({self.mean_iterations}, min={self.minimum})"


class Region(abc.ABC):
    """A node of the structured control-flow tree."""

    @abc.abstractmethod
    def blocks(self) -> Iterator[BasicBlock]:
        """All basic blocks owned by this region, in layout order."""

    @abc.abstractmethod
    def execute(self, ctx) -> None:
        """Emit the dynamic block events for one execution of the region.

        ``ctx`` is an :class:`repro.trace.execution.ExecutionContext`.
        """

    def code_bytes(self) -> int:
        """Static code size of the region (excluding called functions)."""
        return sum(block.size_bytes for block in self.blocks())

    def instruction_count(self) -> int:
        """Static instruction count of the region."""
        return sum(block.num_instructions for block in self.blocks())


class CodeRegion(Region):
    """Straight-line code: a single fall-through basic block."""

    def __init__(self, num_instructions: int, bytes_per_instruction: float = 4.0) -> None:
        size = max(num_instructions, int(round(num_instructions * bytes_per_instruction)))
        self.block = BasicBlock(
            num_instructions=num_instructions,
            size_bytes=size,
            terminator=BranchKind.NONE,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.block

    def execute(self, ctx) -> None:
        ctx.emit(self.block, taken=False)


class Sequence(Region):
    """A sequence of regions executed one after the other."""

    def __init__(self, regions: Seq[Region]) -> None:
        self.regions = list(regions)

    def blocks(self) -> Iterator[BasicBlock]:
        for region in self.regions:
            yield from region.blocks()

    def execute(self, ctx) -> None:
        for region in self.regions:
            region.execute(ctx)
            if ctx.exhausted:
                return


class Loop(Region):
    """A natural loop: body followed by a conditional backward branch.

    The latch block models the compare-and-branch at the bottom of the
    loop; its taken target is the first block of the body, which the
    layout pass places *before* the latch, making the taken branch a
    backward branch exactly as in compiled loop code.
    """

    def __init__(
        self,
        body: Region,
        trip_count: TripCountModel,
        latch_instructions: int = 3,
        bytes_per_instruction: float = 4.0,
    ) -> None:
        self.body = body
        self.trip_count = trip_count
        size = max(
            latch_instructions,
            int(round(latch_instructions * bytes_per_instruction)),
        )
        self.latch = BasicBlock(
            num_instructions=latch_instructions,
            size_bytes=size,
            terminator=BranchKind.CONDITIONAL_DIRECT,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield from self.body.blocks()
        yield self.latch

    def execute(self, ctx) -> None:
        iterations = self.trip_count.draw(ctx.rng)
        for index in range(iterations):
            self.body.execute(ctx)
            ctx.emit(self.latch, taken=index < iterations - 1)
            if ctx.exhausted:
                return


class If(Region):
    """A conditional region (``if``/``else``).

    ``probability_then`` is the probability that the *then* region
    executes.  The generated conditional branch is taken when the then
    region is skipped, matching the usual compiler idiom of branching
    forward over the body; a strongly biased source-level condition thus
    produces a strongly biased (mostly not-taken or mostly taken)
    dynamic branch.

    When ``pattern`` is given (a sequence of booleans meaning "then
    executes"), outcomes cycle through it deterministically instead of
    being drawn independently.  Patterned conditionals model branches
    whose outcome correlates with recent history (e.g. boundary checks
    inside regular grids), which history-based predictors can learn but
    a simple bimodal counter cannot.
    """

    def __init__(
        self,
        probability_then: float,
        then: Region,
        orelse: Optional[Region] = None,
        condition_instructions: int = 2,
        bytes_per_instruction: float = 4.0,
        pattern: Optional[Seq[bool]] = None,
    ) -> None:
        if not 0.0 <= probability_then <= 1.0:
            raise ValueError("probability_then must be within [0, 1]")
        self.probability_then = probability_then
        self.then = then
        self.orelse = orelse
        self.pattern = list(pattern) if pattern is not None else None
        if self.pattern is not None and not self.pattern:
            raise ValueError("pattern must contain at least one outcome")
        size = max(
            condition_instructions,
            int(round(condition_instructions * bytes_per_instruction)),
        )
        self.condition = BasicBlock(
            num_instructions=condition_instructions,
            size_bytes=size,
            terminator=BranchKind.CONDITIONAL_DIRECT,
        )
        self.skip_else: Optional[BasicBlock] = None
        if orelse is not None:
            self.skip_else = BasicBlock(
                num_instructions=1,
                size_bytes=max(1, int(round(bytes_per_instruction))),
                terminator=BranchKind.UNCONDITIONAL_DIRECT,
            )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.condition
        yield from self.then.blocks()
        if self.skip_else is not None:
            yield self.skip_else
        if self.orelse is not None:
            yield from self.orelse.blocks()

    def execute(self, ctx) -> None:
        if self.pattern is not None:
            # Pattern progress lives in the execution context so repeated
            # trace generations from the same program stay reproducible.
            index = ctx.next_pattern_index(self, len(self.pattern))
            take_then = self.pattern[index]
        else:
            take_then = ctx.rng.random() < self.probability_then
        ctx.emit(self.condition, taken=not take_then)
        if take_then:
            self.then.execute(ctx)
            if self.skip_else is not None:
                ctx.emit(self.skip_else, taken=True)
        elif self.orelse is not None:
            self.orelse.execute(ctx)


class CallRegion(Region):
    """A direct call site to another function."""

    def __init__(
        self,
        callee: "Function",
        call_instructions: int = 2,
        bytes_per_instruction: float = 4.0,
    ) -> None:
        self.callee = callee
        size = max(
            call_instructions,
            int(round(call_instructions * bytes_per_instruction)),
        )
        self.call_block = BasicBlock(
            num_instructions=call_instructions,
            size_bytes=size,
            terminator=BranchKind.CALL,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.call_block

    def execute(self, ctx) -> None:
        ctx.emit(self.call_block, taken=True, target=self.callee.entry_address)
        ctx.call(self.callee, return_to=self.call_block.fallthrough_address)


class IndirectCallRegion(Region):
    """An indirect call site that dispatches among several callees."""

    def __init__(
        self,
        callees: Seq["Function"],
        weights: Optional[Seq[float]] = None,
        call_instructions: int = 2,
        bytes_per_instruction: float = 4.0,
    ) -> None:
        if not callees:
            raise ValueError("an indirect call needs at least one callee")
        self.callees = list(callees)
        self.weights = _normalise_weights(weights, len(self.callees))
        size = max(
            call_instructions,
            int(round(call_instructions * bytes_per_instruction)),
        )
        self.call_block = BasicBlock(
            num_instructions=call_instructions,
            size_bytes=size,
            terminator=BranchKind.INDIRECT_CALL,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.call_block

    def execute(self, ctx) -> None:
        index = _weighted_choice(ctx.rng, self.weights)
        callee = self.callees[index]
        ctx.emit(self.call_block, taken=True, target=callee.entry_address)
        ctx.call(callee, return_to=self.call_block.fallthrough_address)


class IndirectJumpRegion(Region):
    """Switch-style dispatch through an indirect jump."""

    def __init__(
        self,
        cases: Seq[Region],
        weights: Optional[Seq[float]] = None,
        dispatch_instructions: int = 3,
        bytes_per_instruction: float = 4.0,
    ) -> None:
        if not cases:
            raise ValueError("an indirect jump needs at least one case")
        self.cases = list(cases)
        self.weights = _normalise_weights(weights, len(self.cases))
        size = max(
            dispatch_instructions,
            int(round(dispatch_instructions * bytes_per_instruction)),
        )
        self.dispatch = BasicBlock(
            num_instructions=dispatch_instructions,
            size_bytes=size,
            terminator=BranchKind.INDIRECT_BRANCH,
        )
        jump_bytes = max(1, int(round(bytes_per_instruction)))
        self.case_exits = [
            BasicBlock(
                num_instructions=1,
                size_bytes=jump_bytes,
                terminator=BranchKind.UNCONDITIONAL_DIRECT,
            )
            for _ in self.cases
        ]

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.dispatch
        for case, exit_block in zip(self.cases, self.case_exits):
            yield from case.blocks()
            yield exit_block

    def execute(self, ctx) -> None:
        index = _weighted_choice(ctx.rng, self.weights)
        case = self.cases[index]
        case_entry = _first_block(case)
        target = case_entry.address if case_entry is not None else None
        ctx.emit(self.dispatch, taken=True, target=target)
        case.execute(ctx)
        ctx.emit(self.case_exits[index], taken=True)


class JumpRegion(Region):
    """An unconditional direct jump.

    Models the jumps compilers emit at join points and block reorderings;
    the jump target is the next sequential address, i.e. a short forward
    jump, which is how such jumps overwhelmingly resolve in compiled
    code.
    """

    def __init__(self, bytes_per_instruction: float = 4.0) -> None:
        self.block = BasicBlock(
            num_instructions=1,
            size_bytes=max(1, int(round(bytes_per_instruction))),
            terminator=BranchKind.UNCONDITIONAL_DIRECT,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.block

    def execute(self, ctx) -> None:
        ctx.emit(self.block, taken=True)


class SyscallRegion(Region):
    """A system call (counted as a branch-class instruction by Pin)."""

    def __init__(self, instructions: int = 2, bytes_per_instruction: float = 4.0) -> None:
        size = max(instructions, int(round(instructions * bytes_per_instruction)))
        self.block = BasicBlock(
            num_instructions=instructions,
            size_bytes=size,
            terminator=BranchKind.SYSCALL,
        )

    def blocks(self) -> Iterator[BasicBlock]:
        yield self.block

    def execute(self, ctx) -> None:
        ctx.emit(self.block, taken=True)


@dataclass
class Function:
    """A function: a named region plus its return instruction."""

    name: str
    body: Region
    return_block: BasicBlock = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.return_block is None:
            self.return_block = BasicBlock(
                num_instructions=1,
                size_bytes=4,
                terminator=BranchKind.RETURN,
            )

    def blocks(self) -> Iterator[BasicBlock]:
        """All blocks of the function, body first then the return."""
        yield from self.body.blocks()
        yield self.return_block

    @property
    def entry_address(self) -> int:
        """Address of the first block (valid after layout)."""
        first = _first_block(self.body)
        if first is None:
            return self.return_block.address
        return first.address

    def code_bytes(self) -> int:
        """Static code size of the function."""
        return sum(block.size_bytes for block in self.blocks())


class Program:
    """A complete synthetic program: functions plus a block registry."""

    def __init__(self, name: str, functions: Seq[Function]) -> None:
        if not functions:
            raise ValueError("a program needs at least one function")
        self.name = name
        self.functions = list(functions)
        self._blocks: List[BasicBlock] = []
        self._register_blocks()

    def _register_blocks(self) -> None:
        next_id = 0
        for function in self.functions:
            for block in function.blocks():
                if block.block_id >= 0:
                    raise ValueError(
                        f"block {block.block_id} is owned by more than one region"
                    )
                block.block_id = next_id
                block.function_name = function.name
                self._blocks.append(block)
                next_id += 1

    @property
    def blocks(self) -> List[BasicBlock]:
        """All static blocks of the program, in layout order."""
        return self._blocks

    def block(self, block_id: int) -> BasicBlock:
        """Look up a block by its dense identifier."""
        return self._blocks[block_id]

    @property
    def entry_function(self) -> Function:
        """The function executed when the program starts."""
        return self.functions[0]

    def function_named(self, name: str) -> Function:
        """Find a function by name."""
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(f"no function named {name!r} in program {self.name!r}")

    def static_code_bytes(self) -> int:
        """Static code footprint of the whole program in bytes."""
        return sum(block.size_bytes for block in self._blocks)

    def static_instruction_count(self) -> int:
        """Static instruction count of the whole program."""
        return sum(block.num_instructions for block in self._blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Program({self.name!r}, functions={len(self.functions)}, "
            f"blocks={len(self._blocks)}, bytes={self.static_code_bytes()})"
        )


def _first_block(region: Region) -> Optional[BasicBlock]:
    """First block of a region in layout order, or None if empty."""
    for block in region.blocks():
        return block
    return None


def _normalise_weights(weights: Optional[Seq[float]], count: int) -> List[float]:
    """Validate and normalise dispatch weights to sum to one."""
    if weights is None:
        return [1.0 / count] * count
    if len(weights) != count:
        raise ValueError("number of weights must match the number of targets")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return [w / total for w in weights]


def _weighted_choice(rng, weights: Seq[float]) -> int:
    """Draw an index according to normalised weights."""
    draw = rng.random()
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if draw < cumulative:
            return index
    return len(weights) - 1
