"""Program execution: turn a static program into a dynamic trace.

The :class:`TraceGenerator` plays the role Pin plays in the paper: it
"runs" the workload and observes every executed basic block and branch.
Execution is driven by an :class:`ExecutionSchedule`, a list of phases
(setup phases run once, steady-state phases repeat) each tagged with the
code section it belongs to, which reproduces the serial / parallel
structure of an OpenMP or MPI+OpenMP application as seen from the first
processing element.

Events are recorded directly into growable preallocated NumPy column
buffers (:class:`~repro.trace.buffers.ColumnBuffer`) the columnar
:class:`~repro.trace.events.Trace` consumes; the event-object view
(``ctx.events``) is synthesized on demand for tests and debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.trace.buffers import ColumnBuffer
from repro.trace.columns import NO_TARGET
from repro.trace.events import BlockEvent, Trace
from repro.trace.instruction import CodeSection
from repro.trace.basic_block import BasicBlock
from repro.trace.program import Function, Program


@dataclass
class Phase:
    """One scheduled phase of execution.

    Attributes
    ----------
    function:
        Function invoked for this phase.
    section:
        Code section the phase's instructions are attributed to.
    repeat:
        Number of back-to-back invocations per schedule pass.
    """

    function: Function
    section: CodeSection
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 1:
            raise ValueError("a phase must be invoked at least once per pass")
        if self.section is CodeSection.TOTAL:
            raise ValueError("phases must be tagged SERIAL or PARALLEL")


@dataclass
class ExecutionSchedule:
    """Setup phases (run once) followed by repeating steady-state phases."""

    setup: List[Phase] = field(default_factory=list)
    steady: List[Phase] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.setup and not self.steady:
            raise ValueError("a schedule needs at least one phase")


class ExecutionContext:
    """Mutable state threaded through region execution."""

    def __init__(self, rng: np.random.Generator, max_instructions: int, max_call_depth: int = 64) -> None:
        self.rng = rng
        self.max_instructions = max_instructions
        self.max_call_depth = max_call_depth
        self.instructions_emitted = 0
        # Events land in preallocated NumPy columns; an average block
        # carries several instructions, so the instruction budget over 8
        # is a conservative initial event capacity.
        self._buffer = ColumnBuffer(capacity_hint=max_instructions // 8)
        self._call_depth = 0
        # Pattern state keyed by the owning region object itself.  The
        # dictionary holds a strong reference to each owner, so owners
        # cannot be garbage-collected mid-run and the keying is stable
        # (unlike id(), whose values can be reused after collection).
        self._pattern_positions: dict = {}
        self._section = CodeSection.SERIAL
        self._section_code = int(CodeSection.SERIAL)

    @property
    def section(self) -> CodeSection:
        """Code section newly emitted events are attributed to."""
        return self._section

    @section.setter
    def section(self, value: CodeSection) -> None:
        self._section = value
        self._section_code = int(value)

    def next_pattern_index(self, owner: object, length: int) -> int:
        """Advance and return the pattern position of a patterned region."""
        position = self._pattern_positions.get(owner, 0)
        self._pattern_positions[owner] = (position + 1) % length
        return position

    @property
    def exhausted(self) -> bool:
        """Whether the instruction budget has been consumed."""
        return self.instructions_emitted >= self.max_instructions

    @property
    def events(self) -> List[BlockEvent]:
        """Event-object view of what has been emitted so far."""
        block_ids, taken, targets, sections = self._buffer.columns()
        return [
            BlockEvent(b, t, None if g == NO_TARGET else g, CodeSection(s))
            for b, t, g, s in zip(
                block_ids.tolist(), taken.tolist(), targets.tolist(), sections.tolist()
            )
        ]

    def emit(self, block: BasicBlock, taken: bool, target: Optional[int] = None) -> None:
        """Record one dynamic execution of a block."""
        self._buffer.append(
            block.block_id,
            taken,
            NO_TARGET if target is None else target,
            self._section_code,
        )
        self.instructions_emitted += block.num_instructions

    def call(self, callee: Function, return_to: int) -> None:
        """Execute a callee function and its return instruction."""
        if self._call_depth >= self.max_call_depth:
            # Refuse to recurse deeper; emit just the return so the
            # call/return counts stay paired.
            self.emit(callee.return_block, taken=True, target=return_to)
            return
        self._call_depth += 1
        try:
            callee.body.execute(self)
        finally:
            self._call_depth -= 1
        self.emit(callee.return_block, taken=True, target=return_to)

    def build_trace(self, program: Program, name: str = "") -> Trace:
        """Wrap the emitted columns into a :class:`Trace`."""
        return Trace.from_columns(program, *self._buffer.columns(), name=name)


class TraceGenerator:
    """Generates dynamic traces from a program and a schedule."""

    def __init__(
        self,
        program: Program,
        schedule: ExecutionSchedule,
        seed: int = 0,
        max_call_depth: int = 64,
    ) -> None:
        self.program = program
        self.schedule = schedule
        self.seed = seed
        self.max_call_depth = max_call_depth

    def run(self, max_instructions: int, name: str = "") -> Trace:
        """Execute the schedule until the instruction budget is reached."""
        if max_instructions < 1:
            raise ValueError("max_instructions must be positive")
        rng = np.random.default_rng(self.seed)
        ctx = ExecutionContext(rng, max_instructions, self.max_call_depth)

        for phase in self.schedule.setup:
            self._run_phase(ctx, phase)
            if ctx.exhausted:
                break

        if self.schedule.steady:
            while not ctx.exhausted:
                for phase in self.schedule.steady:
                    self._run_phase(ctx, phase)
                    if ctx.exhausted:
                        break

        return ctx.build_trace(self.program, name=name or self.program.name)

    def _run_phase(self, ctx: ExecutionContext, phase: Phase) -> None:
        ctx.section = phase.section
        for _ in range(phase.repeat):
            phase.function.body.execute(ctx)
            ctx.emit(phase.function.return_block, taken=True, target=None)
            if ctx.exhausted:
                return


def generate_trace(
    program: Program,
    schedule: ExecutionSchedule,
    max_instructions: int,
    seed: int = 0,
    name: str = "",
) -> Trace:
    """Convenience wrapper: build a generator and run it once."""
    generator = TraceGenerator(program, schedule, seed=seed)
    return generator.run(max_instructions, name=name)
