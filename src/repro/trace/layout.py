"""Code layout: assign text-segment addresses and static branch targets.

The layout pass mimics what a compiler and linker do to the text
segment: functions are placed one after another (16-byte aligned) and
the blocks inside a function are laid out in the order the region tree
yields them.  A second pass resolves the statically-known branch
targets so that loop back-edges become *backward* branches and
conditional branches that skip over code become *forward* branches,
exactly the property the paper's backward/forward taken analysis
(Table I) measures.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.columns import invalidate_program_columns
from repro.trace.instruction import TEXT_BASE_ADDRESS
from repro.trace.program import (
    CallRegion,
    CodeRegion,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Program,
    Region,
    Sequence,
    SyscallRegion,
    _first_block,
)


def layout_program(
    program: Program,
    base_address: int = TEXT_BASE_ADDRESS,
    function_alignment: int = 16,
) -> Program:
    """Assign addresses to every block and resolve static branch targets.

    Returns the same program object for call chaining.
    """
    _assign_addresses(program, base_address, function_alignment)
    for function in program.functions:
        _resolve_region_targets(function.body)
    invalidate_program_columns(program)
    return program


def _assign_addresses(
    program: Program, base_address: int, function_alignment: int
) -> None:
    """Place functions back to back and blocks contiguously inside them."""
    cursor = base_address
    for function in program.functions:
        cursor = _align(cursor, function_alignment)
        for block in function.blocks():
            block.address = cursor
            cursor += block.size_bytes


def _align(address: int, alignment: int) -> int:
    """Round an address up to the requested alignment."""
    if alignment <= 1:
        return address
    remainder = address % alignment
    if remainder == 0:
        return address
    return address + (alignment - remainder)


def _resolve_region_targets(region: Region) -> None:
    """Fill in the statically-known taken targets of a region tree."""
    if isinstance(region, Sequence):
        for child in region.regions:
            _resolve_region_targets(child)
    elif isinstance(region, Loop):
        _resolve_loop(region)
    elif isinstance(region, If):
        _resolve_if(region)
    elif isinstance(region, CallRegion):
        region.call_block.taken_target = region.callee.entry_address
    elif isinstance(region, IndirectJumpRegion):
        _resolve_indirect_jump(region)
    elif isinstance(region, JumpRegion):
        region.block.taken_target = region.block.end_address
    elif isinstance(region, (CodeRegion, SyscallRegion, IndirectCallRegion)):
        # Fall-through code, syscalls and indirect calls have no
        # statically-known taken target.
        pass
    else:  # pragma: no cover - guards against new region types
        raise TypeError(f"unknown region type {type(region).__name__}")


def _resolve_loop(loop: Loop) -> None:
    """Point the latch back-edge at the start of the loop body."""
    _resolve_region_targets(loop.body)
    body_entry = _first_block(loop.body)
    if body_entry is None:
        # Degenerate empty-body loop: branch to the latch itself.
        loop.latch.taken_target = loop.latch.address
    else:
        loop.latch.taken_target = body_entry.address


def _resolve_if(conditional: If) -> None:
    """Point the condition branch past the then region."""
    _resolve_region_targets(conditional.then)
    if conditional.orelse is not None:
        _resolve_region_targets(conditional.orelse)
        else_entry = _first_block(conditional.orelse)
        join_address = _region_end_address(conditional.orelse)
        if else_entry is None:
            else_entry_address = join_address
        else:
            else_entry_address = else_entry.address
        conditional.condition.taken_target = else_entry_address
        if conditional.skip_else is not None:
            conditional.skip_else.taken_target = join_address
    else:
        conditional.condition.taken_target = _region_end_address(conditional.then)


def _resolve_indirect_jump(region: IndirectJumpRegion) -> None:
    """Point each case's trailing jump at the join after the dispatch."""
    for case in region.cases:
        _resolve_region_targets(case)
    join_address = region.case_exits[-1].end_address
    for exit_block in region.case_exits:
        exit_block.taken_target = join_address


def _region_end_address(region: Region) -> int:
    """Address of the first byte after the last block of a region."""
    last: Optional[int] = None
    for block in region.blocks():
        last = block.end_address
    if last is None:
        raise ValueError("cannot compute the end address of an empty region")
    return last
