"""Static basic blocks of the synthetic program model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.trace.instruction import BranchKind


@dataclass
class BasicBlock:
    """A static basic block in a synthetic program.

    A block is a run of ``num_instructions`` straight-line instructions
    followed (optionally) by a single control-flow instruction whose
    kind is ``terminator``.  The terminator instruction is *included* in
    ``num_instructions`` and in ``size_bytes`` when it exists.

    Attributes
    ----------
    block_id:
        Dense integer identifier, assigned by the :class:`Program` the
        block belongs to.
    num_instructions:
        Number of instructions in the block, including its terminator.
    size_bytes:
        Total code size of the block in bytes.
    terminator:
        The control-flow kind ending the block (``BranchKind.NONE`` for
        a pure fall-through block).
    address:
        Starting byte address, filled in by the layout pass.
    taken_target:
        Statically-known taken-target address for direct branches and
        calls, filled in by the layout pass.  Indirect branches and
        returns resolve their target dynamically and keep ``None``.
    function_name:
        Name of the function the block belongs to (for reports).
    """

    num_instructions: int
    size_bytes: int
    terminator: BranchKind = BranchKind.NONE
    block_id: int = -1
    address: int = 0
    taken_target: Optional[int] = None
    function_name: str = ""

    def __post_init__(self) -> None:
        if self.num_instructions < 1:
            raise ValueError("a basic block must contain at least one instruction")
        if self.size_bytes < self.num_instructions:
            raise ValueError(
                "size_bytes must be at least one byte per instruction "
                f"(got {self.size_bytes} bytes for {self.num_instructions} instructions)"
            )

    @property
    def end_address(self) -> int:
        """Address of the first byte after the block."""
        return self.address + self.size_bytes

    @property
    def branch_address(self) -> int:
        """Address of the terminating branch instruction.

        The terminator is modelled as the last instruction of the block;
        its address is approximated as the start of the final
        average-sized instruction slot.  Only meaningful when the block
        has a branch terminator.
        """
        if not self.terminator.is_branch:
            raise ValueError("fall-through blocks have no branch instruction")
        avg_size = max(1, self.size_bytes // self.num_instructions)
        return self.address + self.size_bytes - avg_size

    @property
    def fallthrough_address(self) -> int:
        """Address executed when the terminator is not taken."""
        return self.end_address

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock(id={self.block_id}, addr=0x{self.address:x}, "
            f"instrs={self.num_instructions}, bytes={self.size_bytes}, "
            f"term={self.terminator.name})"
        )


@dataclass
class BlockSizing:
    """Helper describing how to size freshly created basic blocks.

    The synthesis layer creates many blocks whose instruction counts are
    drawn around a mean; this small value object keeps the knobs
    together so region constructors stay readable.
    """

    mean_instructions: float = 10.0
    min_instructions: int = 1
    bytes_per_instruction: float = 4.0
    spread: float = 0.35

    def draw_instructions(self, rng) -> int:
        """Draw an instruction count for one block."""
        mean = self.mean_instructions
        low = max(self.min_instructions, int(round(mean * (1.0 - self.spread))))
        high = max(low, int(round(mean * (1.0 + self.spread))))
        return int(rng.integers(low, high + 1))

    def size_block(self, rng, terminator: BranchKind = BranchKind.NONE) -> BasicBlock:
        """Create an unregistered block with drawn instruction count."""
        instructions = self.draw_instructions(rng)
        size = max(instructions, int(round(instructions * self.bytes_per_instruction)))
        return BasicBlock(
            num_instructions=instructions,
            size_bytes=size,
            terminator=terminator,
        )


def total_code_bytes(blocks: List[BasicBlock]) -> int:
    """Total static code size of a list of blocks."""
    return sum(block.size_bytes for block in blocks)
