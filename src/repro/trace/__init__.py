"""Instruction-trace substrate.

This subpackage replaces the paper's Pin-based instrumentation of native
benchmark binaries.  It provides:

* a static program model (:mod:`repro.trace.program`) built from
  structured regions (straight-line code, loops, conditionals, calls,
  indirect jumps) that own synthetic basic blocks,
* a code layout pass (:mod:`repro.trace.layout`) that assigns byte
  addresses to every block the way a compiler would lay the code out in
  the text segment,
* an executor (:mod:`repro.trace.execution`) that walks a program with a
  seeded random number generator and emits the dynamic block/branch
  event stream, and
* the :class:`~repro.trace.events.Trace` container consumed by every
  analysis tool and hardware-structure simulator in the package.

All downstream code (analysis, front-end simulation, timing, power)
consumes only the dynamic trace, exactly as the paper's pintools consume
the dynamic instruction stream produced by Pin.
"""

from repro.trace.instruction import BranchKind, CodeSection
from repro.trace.basic_block import BasicBlock
from repro.trace.columns import ProgramColumns, program_columns
from repro.trace.events import BlockEvent, BranchColumns, BranchRecord, Trace
from repro.trace.program import (
    CallRegion,
    CodeRegion,
    Function,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Program,
    Region,
    Sequence,
    SyscallRegion,
    FixedTripCount,
    GeometricTripCount,
    UniformTripCount,
)
from repro.trace.layout import layout_program
from repro.trace.buffers import ColumnBuffer
from repro.trace.execution import (
    ExecutionSchedule,
    Phase,
    TraceGenerator,
    generate_trace,
)
from repro.trace.compiler import (
    CompiledSchedule,
    CompiledTraceGenerator,
    compile_schedule,
    generate_trace_compiled,
)

__all__ = [
    "BranchKind",
    "CodeSection",
    "BasicBlock",
    "BlockEvent",
    "BranchColumns",
    "BranchRecord",
    "Trace",
    "ProgramColumns",
    "program_columns",
    "Region",
    "CodeRegion",
    "Sequence",
    "Loop",
    "If",
    "CallRegion",
    "IndirectCallRegion",
    "IndirectJumpRegion",
    "JumpRegion",
    "SyscallRegion",
    "Function",
    "Program",
    "FixedTripCount",
    "GeometricTripCount",
    "UniformTripCount",
    "layout_program",
    "ExecutionSchedule",
    "Phase",
    "TraceGenerator",
    "generate_trace",
    "ColumnBuffer",
    "CompiledSchedule",
    "CompiledTraceGenerator",
    "compile_schedule",
    "generate_trace_compiled",
]
