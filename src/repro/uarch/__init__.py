"""Core and CMP performance models (the paper's Sniper substitute).

Section V of the paper runs the workloads on an eight-core CMP of
Cortex-A9-like lean cores in the Sniper simulator.  Here the same
evaluation is carried out with an interval-style analytical model: a
core's CPI is a stack of a base component plus penalties proportional
to the front-end miss rates measured on the workload's trace, and a
CMP's execution time follows from scheduling the serial sections on the
master core and dividing the parallel sections over the worker cores.
"""

from repro.uarch.core import (
    BASELINE_CORE,
    TAILORED_CORE,
    CoreModel,
)
from repro.uarch.cpi import CpiStack, cpi_for_section
from repro.uarch.cmp import (
    ASYMMETRIC_CMP,
    ASYMMETRIC_PLUS_CMP,
    BASELINE_CMP,
    STANDARD_CMP_CONFIGS,
    TAILORED_CMP,
    CmpConfig,
)
from repro.uarch.simulator import (
    CmpRunResult,
    CoreActivity,
    WorkloadFrontendProfile,
    clear_profile_cache,
    profile_cache_info,
    profile_workload_frontend,
    run_on_cmp,
)
from repro.uarch.sweep import (
    SweepScenario,
    cmp_grid,
    core_scaling_scenario,
    get_scenario,
    l2_scaling_scenario,
    mix_config,
    paper_scenario,
    standard_scenarios,
)

__all__ = [
    "CoreModel",
    "BASELINE_CORE",
    "TAILORED_CORE",
    "CpiStack",
    "cpi_for_section",
    "CmpConfig",
    "BASELINE_CMP",
    "TAILORED_CMP",
    "ASYMMETRIC_CMP",
    "ASYMMETRIC_PLUS_CMP",
    "STANDARD_CMP_CONFIGS",
    "WorkloadFrontendProfile",
    "profile_workload_frontend",
    "CoreActivity",
    "CmpRunResult",
    "run_on_cmp",
    "clear_profile_cache",
    "profile_cache_info",
    "SweepScenario",
    "cmp_grid",
    "mix_config",
    "paper_scenario",
    "core_scaling_scenario",
    "l2_scaling_scenario",
    "standard_scenarios",
    "get_scenario",
]
