"""Lean core models (Cortex-A9 class).

The baseline core carries the front-end found in today's lean-core
CMPs; the tailored core applies the paper's downsizing recommendations.
Everything behind the front-end (issue width, execution units, L1D, L2)
is identical between the two, which is exactly the comparison the paper
sets up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.configs import BASELINE_FRONTEND, TAILORED_FRONTEND, FrontEndConfig


@dataclass(frozen=True)
class CoreModel:
    """Analytical model of one lean out-of-order core.

    Attributes
    ----------
    name:
        Short identifier (``"baseline"`` / ``"tailored"``).
    frontend:
        The front-end configuration (I-cache, branch predictor, BTB).
    frequency_ghz:
        Core clock frequency.
    base_cpi:
        Cycles per instruction with a perfect front-end and all data
        accesses hitting in the L1 (captures the issue width and
        pipeline of a dual-issue lean core).
    branch_penalty_cycles:
        Pipeline refill cost of one branch misprediction (the paper's
        McPAT/Sniper setup uses 12 cycles).
    btb_penalty_cycles:
        Fetch bubble when a taken branch misses in the BTB.
    icache_penalty_cycles:
        Stall cycles for an I-cache miss served by the private L2.
    memory_cpi:
        Data-side stall contribution per instruction (identical across
        core flavours because the data path is untouched).
    """

    name: str
    frontend: FrontEndConfig
    frequency_ghz: float = 2.0
    base_cpi: float = 0.8
    branch_penalty_cycles: float = 12.0
    btb_penalty_cycles: float = 2.0
    icache_penalty_cycles: float = 20.0
    memory_cpi: float = 0.35

    def cycles_per_second(self) -> float:
        """Core clock in cycles per second."""
        return self.frequency_ghz * 1e9

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.name} core @ {self.frequency_ghz:.1f} GHz, "
            f"base CPI {self.base_cpi}, {self.frontend.describe()}"
        )


#: The baseline lean core (today's front-end sizing).
BASELINE_CORE = CoreModel(name="baseline", frontend=BASELINE_FRONTEND)

#: The HPC-tailored lean core proposed by the paper.
TAILORED_CORE = CoreModel(name="tailored", frontend=TAILORED_FRONTEND)
