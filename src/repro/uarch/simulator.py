"""Workload execution on a CMP (the Sniper-substitute driver).

``profile_workload_frontend`` measures, once per core flavour and code
section, the front-end miss rates of a workload's trace (pulled from
the shared :mod:`repro.workloads.trace_cache` and simulated with the
batched multi-configuration engine -- see the function docstring for
the cache-routing contract);
``run_on_cmp`` then schedules the workload on a CMP configuration: the
serial sections run on the master core, the parallel sections are
divided evenly over all cores (static scheduling with one thread per
core), and the execution time is the serial time plus the slowest
parallel share.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.api import runtime_config
from repro.frontend.simulation import FrontEndResult, simulate_frontend_many
from repro.trace.instruction import CodeSection
from repro.uarch.cmp import CmpConfig
from repro.uarch.core import BASELINE_CORE, TAILORED_CORE, CoreModel
from repro.uarch.cpi import CpiStack, cpi_for_section
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthesis import SyntheticWorkload
from repro.workloads.trace_cache import (
    default_profile_instructions,
    register_cache_clearer,
    register_stats_provider,
    workload_trace,
)

#: Nominal dynamic instruction count used to convert per-instruction
#: times into seconds.  All Figure 10/11 results are normalized to the
#: Baseline CMP, so the absolute value only sets the reporting scale.
NOMINAL_INSTRUCTIONS = 1_000_000_000


@dataclass
class WorkloadFrontendProfile:
    """Front-end behaviour of one workload on each core flavour."""

    workload_name: str
    serial_fraction: float
    threads: int
    is_sequential: bool
    results: Dict[Tuple[str, CodeSection], FrontEndResult] = field(default_factory=dict)

    def result_for(self, core: CoreModel, section: CodeSection) -> FrontEndResult:
        """Front-end result of a core flavour on a code section."""
        key = (core.frontend.name, section)
        if key not in self.results:
            raise KeyError(
                f"no front-end profile for core {core.name!r} and section {section.name}"
            )
        return self.results[key]

    def cpi(self, core: CoreModel, section: CodeSection) -> CpiStack:
        """CPI stack of a core flavour on a code section."""
        return cpi_for_section(core, self.result_for(core, section))


@dataclass
class CoreActivity:
    """Busy time of one core flavour within a CMP run."""

    core: CoreModel
    count: int
    busy_seconds_per_core: float


@dataclass
class CmpRunResult:
    """Execution-time result of one workload on one CMP configuration."""

    workload_name: str
    cmp: CmpConfig
    serial_seconds: float
    parallel_seconds: float
    activities: List[CoreActivity]

    @property
    def execution_seconds(self) -> float:
        """End-to-end execution time."""
        return self.serial_seconds + self.parallel_seconds


#: Process-wide front-end profile cache: (cache namespace, workload
#: name, instructions, cores) -> WorkloadFrontendProfile.  Namespaced
#: like the trace cache beneath it, so concurrent sessions with
#: distinct ``cache_namespace`` settings never share in-memory
#: profiles.
_PROFILE_CACHE: Dict[tuple, WorkloadFrontendProfile] = {}
_PROFILE_CACHE_LOCK = threading.Lock()
_PROFILE_CACHE_STATS = {"hits": 0, "misses": 0}


def clear_profile_cache() -> None:
    """Drop every cached front-end profile (tests and memory pressure)."""
    with _PROFILE_CACHE_LOCK:
        _PROFILE_CACHE.clear()
        _PROFILE_CACHE_STATS["hits"] = 0
        _PROFILE_CACHE_STATS["misses"] = 0


def profile_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide profile cache."""
    with _PROFILE_CACHE_LOCK:
        return {
            "hits": _PROFILE_CACHE_STATS["hits"],
            "misses": _PROFILE_CACHE_STATS["misses"],
            "entries": len(_PROFILE_CACHE),
        }


# Profiles are derived from cached traces, so dropping the trace cache
# must drop them too (otherwise a cleared-and-regenerated trace could
# coexist with profiles of its predecessor).
register_cache_clearer(clear_profile_cache)
register_stats_provider("profiles", profile_cache_info)


def profile_workload_frontend(
    workload: Union[SyntheticWorkload, WorkloadSpec],
    instructions: Optional[int] = None,
    cores: Tuple[CoreModel, ...] = (BASELINE_CORE, TAILORED_CORE),
) -> WorkloadFrontendProfile:
    """Measure front-end miss rates per core flavour and code section.

    Cache-routing contract
    ----------------------
    The trace is obtained through the shared
    :func:`repro.workloads.trace_cache.workload_trace` cache -- never
    by calling ``workload.trace`` directly -- so the Section V stack
    (Figures 10/11) reuses the very same trace objects the Section IV
    sweeps generated, in process and on disk (parallel sweeps default
    ``REPRO_TRACE_CACHE_DIR`` to the per-user shared directory; cold
    traces themselves come from the compiled segment engine).  When
    ``instructions`` is omitted it resolves through
    :func:`repro.workloads.trace_cache.default_profile_instructions`
    (active session budget > ``REPRO_INSTRUCTIONS`` > the
    150k default).  The resulting
    profile is itself memoized process-wide, keyed by ``(workload
    name, instructions, cores)``; repeated calls return the *same*
    object, which callers must treat as read-only.  Clearing the trace
    cache clears the profile cache with it.

    ``workload`` may be a built :class:`SyntheticWorkload` or a bare
    :class:`WorkloadSpec`; only the spec is used.

    All core flavours are simulated through the batched
    :func:`repro.frontend.simulation.simulate_frontend_many` engine,
    which decodes each section's branch/line streams once and runs
    every front-end configuration over the shared columnar views.
    """
    spec = workload.spec if isinstance(workload, SyntheticWorkload) else workload
    if instructions is None:
        instructions = default_profile_instructions()
    # Resolve the trace before consulting the profile cache: on a warm
    # run this is a dictionary lookup, and it keeps the shared trace
    # cache the single source of truth (its hit counters account every
    # profiling pass, cached or not).
    trace = workload_trace(spec, instructions)
    key = (
        runtime_config.current_cache_namespace(),
        spec.name,
        int(instructions),
        tuple(cores),
    )
    with _PROFILE_CACHE_LOCK:
        cached = _PROFILE_CACHE.get(key)
        if cached is not None:
            _PROFILE_CACHE_STATS["hits"] += 1
            return cached
        _PROFILE_CACHE_STATS["misses"] += 1
    profile = WorkloadFrontendProfile(
        workload_name=spec.name,
        serial_fraction=spec.serial_fraction,
        threads=spec.threads,
        is_sequential=spec.is_sequential,
    )
    if spec.is_sequential:
        sections = [CodeSection.TOTAL]
    else:
        sections = [CodeSection.SERIAL, CodeSection.PARALLEL]
    batched = simulate_frontend_many(
        trace, [core.frontend for core in cores], sections
    )
    for core in cores:
        for section in sections:
            profile.results[(core.frontend.name, section)] = batched[
                (core.frontend.name, section)
            ]
    with _PROFILE_CACHE_LOCK:
        _PROFILE_CACHE[key] = profile
    return profile


def run_on_cmp(
    profile: WorkloadFrontendProfile,
    cmp: CmpConfig,
    instructions: int = NOMINAL_INSTRUCTIONS,
) -> CmpRunResult:
    """Schedule a profiled workload on a CMP and compute execution time."""
    master = cmp.master_core

    if profile.is_sequential:
        cpi = profile.cpi(master, CodeSection.TOTAL).total
        serial_seconds = instructions * cpi / master.cycles_per_second()
        activities = _activities(cmp, master_busy=serial_seconds, parallel_share=0.0)
        return CmpRunResult(
            workload_name=profile.workload_name,
            cmp=cmp,
            serial_seconds=serial_seconds,
            parallel_seconds=0.0,
            activities=activities,
        )

    serial_instructions = instructions * profile.serial_fraction
    parallel_instructions = instructions - serial_instructions

    serial_cpi = profile.cpi(master, CodeSection.SERIAL).total
    serial_seconds = serial_instructions * serial_cpi / master.cycles_per_second()

    # Parallel sections: one thread per core, static partitioning, so
    # every core receives an equal instruction share and the section
    # finishes when the slowest flavour finishes.
    share = parallel_instructions / cmp.total_cores
    parallel_seconds = 0.0
    per_flavour_busy: Dict[str, float] = {}
    for core, count in cmp.worker_cores:
        cpi = profile.cpi(core, CodeSection.PARALLEL).total
        busy = share * cpi / core.cycles_per_second()
        per_flavour_busy[core.name] = busy
        parallel_seconds = max(parallel_seconds, busy)

    activities = []
    for core, count in cmp.worker_cores:
        busy = per_flavour_busy[core.name]
        if core.name == master.name:
            # One of these cores is the master and also runs the serial
            # sections; spread the serial time over the flavour's
            # per-core average for power accounting.
            busy = busy + serial_seconds / count
        activities.append(
            CoreActivity(core=core, count=count, busy_seconds_per_core=busy)
        )

    return CmpRunResult(
        workload_name=profile.workload_name,
        cmp=cmp,
        serial_seconds=serial_seconds,
        parallel_seconds=parallel_seconds,
        activities=activities,
    )


def _activities(
    cmp: CmpConfig, master_busy: float, parallel_share: float
) -> List[CoreActivity]:
    """Core activities for a sequential run (only the master is busy)."""
    activities: List[CoreActivity] = []
    master = cmp.master_core
    for core, count in cmp.worker_cores:
        if core.name == master.name:
            busy = (master_busy + parallel_share * (count - 1)) / count
        else:
            busy = parallel_share
        activities.append(
            CoreActivity(core=core, count=count, busy_seconds_per_core=busy)
        )
    return activities
