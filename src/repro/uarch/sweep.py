"""CMP design-space sweep scenarios (the Lumos-style grid layer).

Section V compares four hand-picked chip configurations.  This module
generalizes that comparison into *scenarios*: named grids of
:class:`~repro.uarch.cmp.CmpConfig` points spanning core counts (1-64),
baseline/tailored core mixes, and private-L2 sizes.  A scenario is pure
data -- the experiment driver (:mod:`repro.experiments.cmp_sweep`, CLI
command ``repro-frontend cmpsweep``) evaluates every point against the
workload profiles and reports time/power/energy normalized to the
scenario's first configuration.

Grid *construction* now lives in :class:`repro.explore.grid.GridSpec`
(``GridSpec.cmp(...)``); the scenarios here compile through it, and the
historical :func:`cmp_grid` survives only as a deprecated wrapper.
:mod:`repro.explore` imports :func:`mix_config` from this module, so
this module must import :mod:`repro.explore` lazily (inside functions)
to keep the import graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.uarch.cmp import STANDARD_CMP_CONFIGS, CmpConfig

#: Bounds on the per-chip core count a sweep may request.
MIN_SWEEP_CORES = 1
MAX_SWEEP_CORES = 64

#: Core-mix labels understood by :func:`cmp_grid`.
CMP_MIXES = ("baseline", "tailored", "asymmetric", "asymmetric++")


@dataclass(frozen=True)
class SweepScenario:
    """A named grid of CMP configurations evaluated together.

    The first configuration is the normalization reference of every
    per-workload table the sweep reports.
    """

    name: str
    description: str
    cmps: Tuple[CmpConfig, ...]

    def __post_init__(self) -> None:
        if not self.cmps:
            raise ValueError("a sweep scenario needs at least one CMP")
        names = [cmp.name for cmp in self.cmps]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate CMP names")

    @property
    def reference(self) -> CmpConfig:
        """The configuration every metric is normalized to."""
        return self.cmps[0]


def mix_config(
    mix: str, total_cores: int, l2_kb_per_core: int = 256
) -> Optional[CmpConfig]:
    """One grid point: a core mix at a total core count and L2 size.

    Returns ``None`` for mixes that do not exist at the requested core
    count (an asymmetric chip needs at least one tailored core next to
    its baseline master).
    """
    if not MIN_SWEEP_CORES <= total_cores <= MAX_SWEEP_CORES:
        raise ValueError(
            f"total_cores must be within [{MIN_SWEEP_CORES}, {MAX_SWEEP_CORES}], "
            f"got {total_cores}"
        )
    if mix == "baseline":
        baseline, tailored = total_cores, 0
    elif mix == "tailored":
        baseline, tailored = 0, total_cores
    elif mix == "asymmetric":
        if total_cores < 2:
            return None
        baseline, tailored = 1, total_cores - 1
    elif mix == "asymmetric++":
        # Same area budget as `total_cores` baseline cores: the per-core
        # tailoring savings pay for one extra tailored core.
        if total_cores < 2:
            return None
        baseline, tailored = 1, total_cores
    else:
        raise ValueError(f"unknown core mix {mix!r}; expected one of {CMP_MIXES}")
    suffix = "" if l2_kb_per_core == 256 else f" {l2_kb_per_core}KB-L2"
    name = f"{baseline}B+{tailored}T{suffix}"
    return CmpConfig(
        name=name,
        baseline_cores=baseline,
        tailored_cores=tailored,
        l2_kb_per_core=l2_kb_per_core,
    )


def cmp_grid(
    core_counts: Sequence[int],
    mixes: Sequence[str] = ("baseline", "tailored", "asymmetric"),
    l2_sizes_kb: Sequence[int] = (256,),
) -> List[CmpConfig]:
    """Deprecated: build grids through :class:`repro.explore.GridSpec`.

    Thin compatibility wrapper over ``GridSpec.cmp(core_counts, mixes,
    l2_sizes_kb).configs()``, which reproduces the historical product
    bit-identically: iteration order ``l2 x count x mix``, nonexistent
    points (asymmetric single-core chips) skipped, and identical chips
    reachable through two mixes (an ``asymmetric++`` N-core point is
    the ``asymmetric`` point at N+1 cores) emitted once.
    """
    import warnings

    from repro.explore.grid import GridSpec

    warnings.warn(
        "cmp_grid() is deprecated; use "
        "repro.explore.GridSpec.cmp(...).configs() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return list(GridSpec.cmp(core_counts, mixes, l2_sizes_kb).configs())


def paper_scenario() -> SweepScenario:
    """The four Section V chips (Figures 10/11), as a scenario."""
    return SweepScenario(
        name="paper",
        description="the four Section V chips (Baseline/Tailored/Asymmetric/Asymmetric++)",
        cmps=tuple(STANDARD_CMP_CONFIGS),
    )


def core_scaling_scenario(
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    mixes: Sequence[str] = ("baseline", "tailored", "asymmetric"),
) -> SweepScenario:
    """Baseline/tailored/asymmetric mixes across chip core counts."""
    from repro.explore.grid import GridSpec

    return SweepScenario(
        name="core-scaling",
        description=f"core mixes {tuple(mixes)} at {tuple(core_counts)} cores per chip",
        cmps=GridSpec.cmp(core_counts, mixes).configs(),
    )


def l2_scaling_scenario(
    l2_sizes_kb: Sequence[int] = (128, 256, 512, 1024),
    total_cores: int = 8,
) -> SweepScenario:
    """Private-L2 sizes for the asymmetric mix at one core count.

    The reference point keeps the paper's 256KB slices on the baseline
    mix, so the table reads as "what does resizing the L2 slices of an
    asymmetric chip buy over today's chip".
    """
    cmps: List[CmpConfig] = [mix_config("baseline", total_cores, 256)]
    for l2_kb in l2_sizes_kb:
        cmps.append(mix_config("asymmetric", total_cores, l2_kb))
    return SweepScenario(
        name="l2-scaling",
        description=(
            f"asymmetric {total_cores}-core chip with "
            f"{tuple(l2_sizes_kb)}KB L2 slices vs the baseline chip"
        ),
        cmps=tuple(cmps),
    )


def standard_scenarios() -> Dict[str, SweepScenario]:
    """The built-in scenarios, keyed by name."""
    scenarios = (paper_scenario(), core_scaling_scenario(), l2_scaling_scenario())
    return {scenario.name: scenario for scenario in scenarios}


def get_scenario(name: str) -> SweepScenario:
    """Look up a built-in scenario by name."""
    scenarios = standard_scenarios()
    if name not in scenarios:
        known = ", ".join(sorted(scenarios))
        raise KeyError(f"unknown sweep scenario {name!r}; expected one of {known}")
    return scenarios[name]
