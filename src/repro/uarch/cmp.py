"""CMP configurations evaluated in Section V.

Four chip configurations are compared:

* **Baseline CMP** -- eight baseline cores,
* **Tailored CMP** -- eight tailored cores,
* **Asymmetric CMP** -- one baseline core (running the master thread and
  all sequential code) plus seven tailored cores,
* **Asymmetric++ CMP** -- one baseline core plus eight tailored cores;
  the extra core fits in the area freed by tailoring (same area budget
  as the Baseline CMP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.uarch.core import BASELINE_CORE, TAILORED_CORE, CoreModel


@dataclass(frozen=True)
class CmpConfig:
    """A chip multiprocessor built from baseline and tailored cores."""

    name: str
    baseline_cores: int
    tailored_cores: int
    l2_kb_per_core: int = 256

    def __post_init__(self) -> None:
        if self.baseline_cores < 0 or self.tailored_cores < 0:
            raise ValueError("core counts cannot be negative")
        if self.total_cores == 0:
            raise ValueError("a CMP needs at least one core")

    @property
    def total_cores(self) -> int:
        """Number of cores on the chip."""
        return self.baseline_cores + self.tailored_cores

    @property
    def master_core(self) -> CoreModel:
        """The core that runs the master thread and all serial code.

        A baseline core is preferred when present (the asymmetric
        designs pin the master thread there); otherwise the master runs
        on a tailored core.
        """
        if self.baseline_cores > 0:
            return BASELINE_CORE
        return TAILORED_CORE

    @property
    def worker_cores(self) -> List[Tuple[CoreModel, int]]:
        """Core flavours participating in parallel sections, with counts."""
        flavours: List[Tuple[CoreModel, int]] = []
        if self.baseline_cores > 0:
            flavours.append((BASELINE_CORE, self.baseline_cores))
        if self.tailored_cores > 0:
            flavours.append((TAILORED_CORE, self.tailored_cores))
        return flavours

    def describe(self) -> str:
        """One-line human readable description."""
        parts = []
        if self.baseline_cores:
            parts.append(f"{self.baseline_cores}B")
        if self.tailored_cores:
            parts.append(f"{self.tailored_cores}T")
        return f"{self.name} ({'+'.join(parts)} cores)"


#: Eight baseline cores (today's design point).
BASELINE_CMP = CmpConfig(name="Baseline CMP", baseline_cores=8, tailored_cores=0)

#: Eight tailored cores (naive downsizing of every core).
TAILORED_CMP = CmpConfig(name="Tailored CMP", baseline_cores=0, tailored_cores=8)

#: One baseline core plus seven tailored cores (same core count).
ASYMMETRIC_CMP = CmpConfig(name="Asymmetric CMP", baseline_cores=1, tailored_cores=7)

#: One baseline core plus eight tailored cores (same area budget as the
#: Baseline CMP thanks to the per-core area savings).
ASYMMETRIC_PLUS_CMP = CmpConfig(
    name="Asymmetric++ CMP", baseline_cores=1, tailored_cores=8
)

#: The four configurations of Figures 10 and 11, in presentation order.
STANDARD_CMP_CONFIGS = (
    BASELINE_CMP,
    TAILORED_CMP,
    ASYMMETRIC_CMP,
    ASYMMETRIC_PLUS_CMP,
)
