"""CPI stack model.

The interval model approximates a core's cycles per instruction as a
base component plus independent penalty terms proportional to the
front-end event rates measured on the trace.  This is the level of
abstraction at which the paper's performance argument operates: the
tailored front-end is acceptable exactly when its extra misses per
kilo-instruction translate into a negligible CPI increase.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.simulation import FrontEndResult
from repro.uarch.core import CoreModel


@dataclass(frozen=True)
class CpiStack:
    """Per-instruction cycle breakdown of one code section on one core."""

    base: float
    memory: float
    branch: float
    btb: float
    icache: float

    @property
    def total(self) -> float:
        """Total cycles per instruction."""
        return self.base + self.memory + self.branch + self.btb + self.icache

    @property
    def frontend(self) -> float:
        """Cycles per instruction lost to front-end events."""
        return self.branch + self.btb + self.icache

    def as_dict(self) -> dict:
        """Stack components keyed by name (for reports)."""
        return {
            "base": self.base,
            "memory": self.memory,
            "branch": self.branch,
            "btb": self.btb,
            "icache": self.icache,
            "total": self.total,
        }


def cpi_for_section(core: CoreModel, frontend_result: FrontEndResult) -> CpiStack:
    """Build the CPI stack of one code section running on one core."""
    branch_cpi = frontend_result.branch.mpki / 1000.0 * core.branch_penalty_cycles
    btb_cpi = frontend_result.btb.mpki / 1000.0 * core.btb_penalty_cycles
    icache_cpi = frontend_result.icache.mpki / 1000.0 * core.icache_penalty_cycles
    return CpiStack(
        base=core.base_cpi,
        memory=core.memory_cpi,
        branch=branch_cpi,
        btb=btb_cpi,
        icache=icache_cpi,
    )
