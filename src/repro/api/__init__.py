"""``repro.api``: the unified, typed entry point to the reproduction.

One import surface for the whole pipeline -- workloads -> traces ->
front-end simulations -> experiments::

    from repro.api import Session

    session = Session(instructions=60_000)
    frame = session.sweep(workloads=["FT", "LU"]).execute()
    print(frame.to_csv())

The pieces:

:class:`RuntimeConfig`
    Every ``REPRO_*`` knob, resolved once (explicit > env > default).
:class:`Session`
    Owns a config; typed methods for every pipeline stage.
:class:`Plan` / :class:`FrontendSweepPlan` / :class:`ExperimentPlan` /
:class:`ExplorePlan`
    Declarative descriptions of work; ``execute()`` runs them, and
    every plan shares the ``execute()``/``frame()``/``outcome()``
    protocol (see :mod:`repro.api.plan`).
:class:`GridSpec` / :class:`ParetoFrontier`
    Declarative design-space grids and their non-dominated subsets
    (see :mod:`repro.explore`).
:class:`ResultFrame`
    The columnar result every plan yields.

Attributes load lazily (PEP 562) so the light pieces --
``RuntimeConfig``, ``ResultFrame`` -- are importable from the bottom of
the package without dragging in the session machinery.
"""

from typing import TYPE_CHECKING

__all__ = [
    "ENVIRONMENT_VARIABLES",
    "ExperimentPlan",
    "ExplorePlan",
    "FrontendSweepPlan",
    "GridSpec",
    "ParetoFrontier",
    "Plan",
    "PlanOutcome",
    "ResultFrame",
    "RuntimeConfig",
    "Session",
    "current_session",
    "default_session",
]

#: Where each public name lives; ``__getattr__`` resolves through this.
_EXPORTS = {
    "ENVIRONMENT_VARIABLES": "repro.api.runtime_config",
    "RuntimeConfig": "repro.api.runtime_config",
    "ResultFrame": "repro.api.frame",
    "Plan": "repro.api.plan",
    "PlanOutcome": "repro.api.plan",
    "FrontendSweepPlan": "repro.api.plan",
    "ExperimentPlan": "repro.api.plan",
    "ExplorePlan": "repro.explore.plan",
    "GridSpec": "repro.explore.grid",
    "ParetoFrontier": "repro.explore.pareto",
    "Session": "repro.api.session",
    "current_session": "repro.api.session",
    "default_session": "repro.api.session",
}

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.api.frame import ResultFrame
    from repro.api.plan import ExperimentPlan, FrontendSweepPlan, Plan, PlanOutcome
    from repro.api.runtime_config import ENVIRONMENT_VARIABLES, RuntimeConfig
    from repro.api.session import Session, current_session, default_session
    from repro.explore.grid import GridSpec
    from repro.explore.pareto import ParetoFrontier
    from repro.explore.plan import ExplorePlan


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
