"""Runtime configuration: the single owner of every ``REPRO_*`` knob.

This module is the **only** place in the package that reads a
``REPRO_*`` environment variable.  Everything the environment used to
configure at scattered call sites -- the trace engine choice, the two
cache directories, sweep parallelism, and the default instruction
budget -- is captured by one frozen :class:`RuntimeConfig` dataclass,
resolved with *explicit argument > environment variable > default*
precedence.

Two consumption modes coexist:

* **Session mode** (:class:`repro.api.session.Session`): a config is
  resolved once at construction and *activated* around plan execution,
  so the lower layers see one consistent snapshot for the whole run.
* **Legacy mode** (no active config): the ``current_*`` accessors fall
  back to reading the environment on every call, preserving the
  historical behaviour of the module-level entry points
  (``workload_trace`` and friends) bit for bit.

The module deliberately imports nothing from the rest of the package,
so every layer -- down to :mod:`repro.trace.compiler` -- can consult it
without creating an import cycle.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union

#: Environment variable selecting the trace generation engine
#: (``compiled``, the default, or ``reference`` for the tree walk).
TRACE_ENGINE_VARIABLE = "REPRO_TRACE_ENGINE"

#: Environment variable selecting the on-disk trace-cache directory
#: (unset: no disk layer; ``none``/``off``/``0``/empty: disabled).
TRACE_CACHE_DIR_VARIABLE = "REPRO_TRACE_CACHE_DIR"

#: Environment variable selecting the on-disk result-store directory
#: (same unset/disable semantics as the trace cache).
RESULT_CACHE_DIR_VARIABLE = "REPRO_RESULT_CACHE_DIR"

#: Environment variable turning sweep parallelism on by default
#: (truthy values: ``1``/``true``/``yes``/``on``).
PARALLEL_VARIABLE = "REPRO_PARALLEL"

#: Environment variable fixing the worker-process count of parallel
#: sweeps (unset: the CPU count).
PROCESSES_VARIABLE = "REPRO_PROCESSES"

#: Environment variable overriding the default dynamic trace length.
INSTRUCTIONS_VARIABLE = "REPRO_INSTRUCTIONS"

#: Environment variable selecting the sweep executor (``auto``,
#: ``serial``, ``processes``, or a ``module:attribute`` entry point).
EXECUTOR_VARIABLE = "REPRO_EXECUTOR"

#: Environment variable fixing the per-item retry count of supervised
#: sweeps (transient failures and worker deaths).
RETRIES_VARIABLE = "REPRO_RETRIES"

#: Environment variable fixing the per-item timeout (seconds) of
#: supervised sweeps (unset or non-positive: unlimited).
ITEM_TIMEOUT_VARIABLE = "REPRO_ITEM_TIMEOUT"

#: Environment variable fixing the base retry backoff delay (seconds).
RETRY_DELAY_VARIABLE = "REPRO_RETRY_DELAY"

#: Environment variable carrying a deterministic fault-injection plan
#: (inline JSON or a path to a JSON file; see :mod:`repro.exec.faults`).
FAULT_PLAN_VARIABLE = "REPRO_FAULT_PLAN"

#: Environment variable naming a cache namespace: a single path
#: component appended to both disk-cache directories (trace cache and
#: result store), so concurrent sessions pointed at the same roots
#: cannot collide (unset/blank: no namespace).
CACHE_NAMESPACE_VARIABLE = "REPRO_CACHE_NAMESPACE"

#: Environment variable naming the durable work-queue directory used by
#: the ``queue`` executor (unset/``none``: a private per-campaign
#: temporary directory; a shared path is what lets external workers
#: cooperate on the same campaign).
QUEUE_DIR_VARIABLE = "REPRO_QUEUE_DIR"

#: Environment variable fixing the queue lease time-to-live in seconds:
#: how long a claimed item's heartbeat may go silent before the reaper
#: reclaims it from a presumed-dead worker.
LEASE_TTL_VARIABLE = "REPRO_LEASE_TTL"

#: Environment variable fixing the queue heartbeat renewal interval in
#: seconds (must be smaller than the lease TTL).
HEARTBEAT_INTERVAL_VARIABLE = "REPRO_HEARTBEAT_INTERVAL"

#: Environment variable fixing the bind address of the results service
#: (``repro-frontend serve``).  Deployment-local: never folded into
#: result keys.
SERVE_HOST_VARIABLE = "REPRO_SERVE_HOST"

#: Environment variable fixing the TCP port of the results service
#: (``0``: an ephemeral OS-assigned port, the test-friendly default).
SERVE_PORT_VARIABLE = "REPRO_SERVE_PORT"

#: Every environment variable the runtime honours, in documentation
#: order.  The API-surface test pins this tuple: growing it is an API
#: change.
ENVIRONMENT_VARIABLES: Tuple[str, ...] = (
    TRACE_ENGINE_VARIABLE,
    TRACE_CACHE_DIR_VARIABLE,
    RESULT_CACHE_DIR_VARIABLE,
    PARALLEL_VARIABLE,
    PROCESSES_VARIABLE,
    INSTRUCTIONS_VARIABLE,
    EXECUTOR_VARIABLE,
    RETRIES_VARIABLE,
    ITEM_TIMEOUT_VARIABLE,
    RETRY_DELAY_VARIABLE,
    FAULT_PLAN_VARIABLE,
    CACHE_NAMESPACE_VARIABLE,
    QUEUE_DIR_VARIABLE,
    LEASE_TTL_VARIABLE,
    HEARTBEAT_INTERVAL_VARIABLE,
    SERVE_HOST_VARIABLE,
    SERVE_PORT_VARIABLE,
)

#: Default dynamic trace length used by the profiling layers.  Scaled
#: down from the paper's multi-billion-instruction runs so the full
#: 41-workload sweeps finish in minutes on a laptop; every caller
#: accepts an ``instructions`` override.
DEFAULT_INSTRUCTIONS = 150_000

#: The default trace generation engine (bit-identical to ``reference``;
#: see :mod:`repro.trace.compiler`).
DEFAULT_TRACE_ENGINE = "compiled"

#: The default sweep executor: ``auto`` resolves to ``processes`` for
#: parallel sweeps and ``serial`` otherwise (see :mod:`repro.exec`).
DEFAULT_EXECUTOR = "auto"

#: Default per-item retry count of supervised sweeps.
DEFAULT_RETRIES = 2

#: Default base backoff delay between retries, in seconds.
DEFAULT_RETRY_DELAY = 0.05

#: Default queue lease time-to-live, in seconds.  Generous on purpose:
#: a reclaim re-runs the item, so false positives (a live worker merely
#: stalled past the TTL) cost duplicated work, while a true dead worker
#: only delays its items by the TTL.
DEFAULT_LEASE_TTL = 30.0

#: Default queue heartbeat renewal interval, in seconds.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Default bind address of the results service: loopback only, so a
#: bare ``repro-frontend serve`` never exposes itself off-host.
DEFAULT_SERVE_HOST = "127.0.0.1"

#: Default results-service port.
DEFAULT_SERVE_PORT = 8757

#: The recognised trace engines.
TRACE_ENGINES = ("compiled", "reference")

#: Cache-directory values that disable a disk layer outright
#: (case-insensitive), shared by the trace cache and the result store.
CACHE_DISABLE_VALUES = frozenset({"", "0", "none", "off", "disabled"})

#: Truthy spellings accepted by boolean variables.
_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})

#: Sentinel distinguishing "argument not passed" from an explicit
#: ``None`` (which, for the cache directories, means *disabled*).
_UNSET: Any = object()


def read_environment(name: str) -> Optional[str]:
    """Read one ``REPRO_*`` variable (the package's only such read).

    Every other module resolves runtime knobs through
    :class:`RuntimeConfig` or the ``current_*`` accessors, which funnel
    through here; grep for ``os.environ`` to verify.
    """
    return os.environ.get(name)


def export_environment_default(name: str, value: str) -> None:
    """Export a variable into the process environment when it is unset.

    The parallel-sweep helpers use this to hand the shared cache
    directories to worker processes on spawn platforms; an explicitly
    set (or explicitly disabled) variable is left untouched.
    """
    if os.environ.get(name) is None:
        os.environ[name] = value


def default_trace_cache_dir() -> str:
    """Per-user shared trace-cache directory (platformdirs-style).

    Honours ``$XDG_CACHE_HOME`` and falls back to ``~/.cache``, the
    conventional per-user cache root on every platform this project
    targets.
    """
    return os.path.join(_cache_home(), "repro-frontend", "traces")


def default_result_cache_dir() -> str:
    """Per-user shared result-store directory (platformdirs-style)."""
    return os.path.join(_cache_home(), "repro-frontend", "results")


def _cache_home() -> str:
    return os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )


def normalize_cache_dir(value: Optional[str]) -> Optional[str]:
    """Map a cache-directory setting to an active path or ``None``.

    ``None`` and the disable spellings (``""``/``0``/``none``/``off``/
    ``disabled``, case-insensitive) mean "no disk layer"; anything else
    is the directory itself.
    """
    if value is None:
        return None
    if value.strip().lower() in CACHE_DISABLE_VALUES:
        return None
    return value


def normalize_cache_namespace(
    value: Optional[str], strict: bool = False
) -> Optional[str]:
    """Map a cache-namespace setting to a path component or ``None``.

    ``None`` and blank mean "no namespace".  A namespace must be a
    single path component -- separators and the ``.``/``..`` traversal
    spellings are rejected, because the namespace is joined under the
    cache roots and must not escape them.  Explicit arguments
    (``strict``) raise on invalid namespaces; environment values stay
    lenient (an invalid spelling means "no namespace").
    """
    if value is None:
        return None
    namespace = str(value).strip()
    if not namespace:
        return None
    if (
        namespace in (".", "..")
        or any(sep in namespace for sep in ("/", "\\", os.sep))
    ):
        if strict:
            raise ValueError(
                f"invalid cache namespace {value!r}: must be a single "
                "path component (no separators, not '.' or '..')"
            )
        return None
    return namespace


def _namespaced(directory: Optional[str], namespace: Optional[str]) -> Optional[str]:
    """Join the cache namespace under an enabled cache directory."""
    if directory is None or namespace is None:
        return directory
    return os.path.join(directory, namespace)


def _resolve_engine(value: str, strict: bool = False) -> str:
    """Normalize a trace-engine spelling.

    Explicit arguments (``strict``) raise on unknown engines -- the
    typed API should not silently swallow a typo -- while environment
    values stay lenient (anything unrecognized means the default),
    matching the historical env-var contract.
    """
    engine = value.strip().lower()
    if engine in TRACE_ENGINES:
        return engine
    if strict:
        raise ValueError(
            f"unknown trace engine {value!r}; expected one of {TRACE_ENGINES}"
        )
    return DEFAULT_TRACE_ENGINE


def _env_bool(name: str, default: bool) -> bool:
    value = read_environment(name)
    if value is None:
        return default
    return value.strip().lower() in _TRUE_VALUES


def _env_int(name: str, default: Optional[int]) -> Optional[int]:
    value = read_environment(name)
    if value is None:
        return default
    try:
        return int(value)
    except ValueError:
        return default


def _env_float(name: str, default: Optional[float]) -> Optional[float]:
    value = read_environment(name)
    if value is None:
        return default
    try:
        return float(value)
    except ValueError:
        return default


@dataclass(frozen=True)
class RuntimeConfig:
    """Frozen snapshot of every runtime knob the package honours.

    Construct via :meth:`from_environment` (explicit keyword beats
    environment variable beats default, field by field) or directly
    with plain values.  Construction validates the engine (unknown
    spellings raise) and normalizes both cache-directory fields to
    their *resolved* setting: ``None`` means "no disk layer", anything
    else is the active directory -- the ``none``-disables spelling is
    applied here, so consumers never re-parse it.
    """

    #: Trace generation engine: ``"compiled"`` or ``"reference"``.
    trace_engine: str = DEFAULT_TRACE_ENGINE
    #: On-disk trace-cache directory, or ``None`` when disabled.
    trace_cache_dir: Optional[str] = None
    #: On-disk result-store directory, or ``None`` when disabled.
    result_cache_dir: Optional[str] = None
    #: Whether sweeps fan out across worker processes by default.
    parallel: bool = False
    #: Worker-process count for parallel sweeps (``None``: CPU count).
    processes: Optional[int] = None
    #: Default dynamic trace length per workload.
    instructions: int = DEFAULT_INSTRUCTIONS
    #: Sweep executor: ``"auto"``, a registry name (``"serial"``,
    #: ``"processes"``), or a ``"module:attribute"`` entry point.
    executor: str = DEFAULT_EXECUTOR
    #: Per-item retries of supervised sweeps (0 disables retrying).
    retries: int = DEFAULT_RETRIES
    #: Per-item timeout in seconds (``None``/non-positive: unlimited).
    item_timeout: Optional[float] = None
    #: Base backoff delay between retries, in seconds.
    retry_delay: float = DEFAULT_RETRY_DELAY
    #: Deterministic fault-injection plan: inline JSON or a file path
    #: (``None``: no injection).  Parsed by :mod:`repro.exec.faults`.
    fault_plan: Optional[str] = None
    #: Cache namespace: one path component appended to both disk-cache
    #: directories, isolating concurrent sessions (``None``: none).
    cache_namespace: Optional[str] = None
    #: Durable work-queue directory for the ``queue`` executor
    #: (``None``: a private per-campaign temporary directory).
    queue_dir: Optional[str] = None
    #: Queue lease time-to-live in seconds: heartbeat silence beyond
    #: this and the reaper reclaims the item.
    lease_ttl: float = DEFAULT_LEASE_TTL
    #: Queue heartbeat renewal interval in seconds (< ``lease_ttl``).
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL
    #: Results-service bind address (deployment-local; never keyed).
    serve_host: str = DEFAULT_SERVE_HOST
    #: Results-service TCP port (``0``: OS-assigned ephemeral port).
    serve_port: int = DEFAULT_SERVE_PORT

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "trace_engine", _resolve_engine(str(self.trace_engine), strict=True)
        )
        object.__setattr__(
            self, "trace_cache_dir", normalize_cache_dir(self.trace_cache_dir)
        )
        object.__setattr__(
            self, "result_cache_dir", normalize_cache_dir(self.result_cache_dir)
        )
        executor = str(self.executor).strip() or DEFAULT_EXECUTOR
        object.__setattr__(self, "executor", executor)
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        timeout = self.item_timeout
        if timeout is not None:
            timeout = float(timeout)
            if timeout <= 0:
                raise ValueError(
                    f"item_timeout must be positive (or None for unlimited), "
                    f"got {self.item_timeout!r}"
                )
        object.__setattr__(self, "item_timeout", timeout)
        retry_delay = float(self.retry_delay)
        if retry_delay <= 0:
            raise ValueError(
                f"retry_delay must be positive, got {self.retry_delay!r}"
            )
        object.__setattr__(self, "retry_delay", retry_delay)
        object.__setattr__(
            self,
            "cache_namespace",
            normalize_cache_namespace(self.cache_namespace, strict=True),
        )
        object.__setattr__(self, "queue_dir", normalize_cache_dir(self.queue_dir))
        lease_ttl = float(self.lease_ttl)
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl!r}")
        heartbeat = float(self.heartbeat_interval)
        if heartbeat <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive, "
                f"got {self.heartbeat_interval!r}"
            )
        if heartbeat >= lease_ttl:
            if heartbeat == DEFAULT_HEARTBEAT_INTERVAL:
                # An untouched default heartbeat scales with a lowered
                # TTL (same ratio as the defaults) instead of raising on
                # a construction that only named the TTL.
                heartbeat = lease_ttl * (DEFAULT_HEARTBEAT_INTERVAL / DEFAULT_LEASE_TTL)
            else:
                raise ValueError(
                    f"heartbeat_interval ({self.heartbeat_interval!r}) must be "
                    f"smaller than lease_ttl ({self.lease_ttl!r})"
                )
        object.__setattr__(self, "lease_ttl", lease_ttl)
        object.__setattr__(self, "heartbeat_interval", heartbeat)
        host = str(self.serve_host).strip() or DEFAULT_SERVE_HOST
        object.__setattr__(self, "serve_host", host)
        port = int(self.serve_port)
        if not 0 <= port <= 65535:
            raise ValueError(
                f"serve_port must be in [0, 65535] (0: ephemeral), "
                f"got {self.serve_port!r}"
            )
        object.__setattr__(self, "serve_port", port)

    @classmethod
    def from_environment(
        cls,
        *,
        trace_engine: Union[str, Any] = _UNSET,
        trace_cache_dir: Union[str, None, Any] = _UNSET,
        result_cache_dir: Union[str, None, Any] = _UNSET,
        parallel: Union[bool, Any] = _UNSET,
        processes: Union[int, None, Any] = _UNSET,
        instructions: Union[int, Any] = _UNSET,
        executor: Union[str, Any] = _UNSET,
        retries: Union[int, Any] = _UNSET,
        item_timeout: Union[float, None, Any] = _UNSET,
        retry_delay: Union[float, Any] = _UNSET,
        fault_plan: Union[str, None, Any] = _UNSET,
        cache_namespace: Union[str, None, Any] = _UNSET,
        queue_dir: Union[str, None, Any] = _UNSET,
        lease_ttl: Union[float, Any] = _UNSET,
        heartbeat_interval: Union[float, Any] = _UNSET,
        serve_host: Union[str, Any] = _UNSET,
        serve_port: Union[int, Any] = _UNSET,
    ) -> "RuntimeConfig":
        """Resolve a config with explicit > environment > default.

        For the cache directories an explicit ``None`` (or any disable
        spelling) disables the disk layer even when the environment
        names a directory; an unset environment variable also means
        "disabled", matching the historical library default -- except
        under ``parallel``, where a fully unset trace-cache setting
        defaults to the per-user shared directory, mirroring the legacy
        ``run_sweep(run_parallel=True)`` auto-enable (an explicit
        disable still wins).  An explicit unknown ``trace_engine``
        raises; an unknown environment spelling falls back to the
        default engine.
        """
        if trace_engine is _UNSET:
            environment_engine = read_environment(TRACE_ENGINE_VARIABLE) or ""
            resolved_engine = _resolve_engine(environment_engine)
        else:
            resolved_engine = _resolve_engine(str(trace_engine), strict=True)
        if parallel is _UNSET:
            resolved_parallel = _env_bool(PARALLEL_VARIABLE, False)
        else:
            resolved_parallel = bool(parallel)
        if trace_cache_dir is _UNSET:
            trace_cache_dir = read_environment(TRACE_CACHE_DIR_VARIABLE)
            if trace_cache_dir is None and resolved_parallel:
                trace_cache_dir = default_trace_cache_dir()
        if result_cache_dir is _UNSET:
            result_cache_dir = read_environment(RESULT_CACHE_DIR_VARIABLE)
        if processes is _UNSET:
            resolved_processes = _env_int(PROCESSES_VARIABLE, None)
        else:
            resolved_processes = None if processes is None else int(processes)
        if instructions is _UNSET:
            resolved_instructions = _env_int(
                INSTRUCTIONS_VARIABLE, DEFAULT_INSTRUCTIONS
            )
            if resolved_instructions is None:
                resolved_instructions = DEFAULT_INSTRUCTIONS
        else:
            resolved_instructions = int(instructions)
        if executor is _UNSET:
            executor = read_environment(EXECUTOR_VARIABLE) or DEFAULT_EXECUTOR
        if retries is _UNSET:
            resolved_retries = _env_int(RETRIES_VARIABLE, DEFAULT_RETRIES)
            if resolved_retries is None or resolved_retries < 0:
                resolved_retries = DEFAULT_RETRIES
        else:
            resolved_retries = int(retries)
        if item_timeout is _UNSET:
            # Environment values stay lenient (the historical env-var
            # contract): a non-positive timeout means "unlimited".
            item_timeout = _env_float(ITEM_TIMEOUT_VARIABLE, None)
            if item_timeout is not None and item_timeout <= 0:
                item_timeout = None
        if retry_delay is _UNSET:
            resolved_retry_delay = _env_float(RETRY_DELAY_VARIABLE, None)
            if resolved_retry_delay is None or resolved_retry_delay <= 0:
                resolved_retry_delay = DEFAULT_RETRY_DELAY
        else:
            resolved_retry_delay = float(retry_delay)
        if fault_plan is _UNSET:
            fault_plan = read_environment(FAULT_PLAN_VARIABLE) or None
        if cache_namespace is _UNSET:
            cache_namespace = normalize_cache_namespace(
                read_environment(CACHE_NAMESPACE_VARIABLE)
            )
        if queue_dir is _UNSET:
            queue_dir = read_environment(QUEUE_DIR_VARIABLE)
        lease_ttl_explicit = lease_ttl is not _UNSET
        heartbeat_explicit = heartbeat_interval is not _UNSET
        if not lease_ttl_explicit:
            lease_ttl = _env_float(LEASE_TTL_VARIABLE, None)
            if lease_ttl is None or lease_ttl <= 0:
                lease_ttl = DEFAULT_LEASE_TTL
        if not heartbeat_explicit:
            heartbeat_interval = _env_float(HEARTBEAT_INTERVAL_VARIABLE, None)
            if heartbeat_interval is None or heartbeat_interval <= 0:
                heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
            if (
                heartbeat_interval >= float(lease_ttl)
                and heartbeat_interval != DEFAULT_HEARTBEAT_INTERVAL
            ):
                # An env-only conflicting pair falls back leniently to
                # the default ratio; explicit arguments raise instead
                # (validated at construction below).
                heartbeat_interval = float(lease_ttl) * (
                    DEFAULT_HEARTBEAT_INTERVAL / DEFAULT_LEASE_TTL
                )
        if serve_host is _UNSET:
            serve_host = read_environment(SERVE_HOST_VARIABLE) or DEFAULT_SERVE_HOST
        if serve_port is _UNSET:
            resolved_serve_port = _env_int(SERVE_PORT_VARIABLE, DEFAULT_SERVE_PORT)
            if resolved_serve_port is None or not 0 <= resolved_serve_port <= 65535:
                resolved_serve_port = DEFAULT_SERVE_PORT
        else:
            resolved_serve_port = int(serve_port)
        return cls(
            trace_engine=resolved_engine,
            trace_cache_dir=normalize_cache_dir(trace_cache_dir),
            result_cache_dir=normalize_cache_dir(result_cache_dir),
            parallel=resolved_parallel,
            processes=resolved_processes,
            instructions=int(resolved_instructions),
            executor=str(executor),
            retries=resolved_retries,
            item_timeout=item_timeout,
            retry_delay=resolved_retry_delay,
            fault_plan=fault_plan,
            cache_namespace=cache_namespace,
            queue_dir=normalize_cache_dir(queue_dir),
            lease_ttl=float(lease_ttl),
            heartbeat_interval=float(heartbeat_interval),
            serve_host=str(serve_host),
            serve_port=resolved_serve_port,
        )

    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with some fields changed (re-validated on construction)."""
        return dataclasses.replace(self, **changes)

    def semantic(self) -> Dict[str, Any]:
        """The fields folded into content-addressed result keys.

        Only knobs that could conceivably change stored numbers belong
        here; execution details (parallelism, worker counts, cache
        locations, executor choice, retry/timeout policy, fault plans,
        the results-service host/port) are deliberately absent because
        serial and supervised parallel sweeps -- and both engines --
        produce bit-identical results.
        The engine is still keyed as defence in depth: if a regression
        ever broke engine equivalence, the two engines' *result-store*
        entries at least stay separate.  (The trace cache underneath is
        engine-agnostic -- it trusts the asserted equivalence -- so
        this is a containment measure, not an isolation guarantee.)
        """
        return {"trace_engine": self.trace_engine}

    def describe(self) -> Dict[str, Any]:
        """Plain-dict form of every field (for logs and manifests)."""
        return dataclasses.asdict(self)


#: The activated config, or ``None`` when the environment rules.  A
#: :class:`~contextvars.ContextVar` so concurrent sessions in separate
#: threads (or async tasks) cannot cross-contaminate; forked sweep
#: workers inherit the forking thread's value, which is exactly the
#: activation they must run under.
_ACTIVE: "contextvars.ContextVar[Optional[RuntimeConfig]]" = contextvars.ContextVar(
    "repro_active_runtime_config", default=None
)


def active_config() -> Optional[RuntimeConfig]:
    """The currently activated config, or ``None`` in legacy mode."""
    return _ACTIVE.get()


def current_config() -> RuntimeConfig:
    """The activated config, or a fresh environment snapshot.

    In legacy mode this re-reads the environment on every call, so
    module-level entry points keep their historical late-binding
    behaviour (tests monkeypatching ``REPRO_*`` variables included).
    """
    active = _ACTIVE.get()
    if active is not None:
        return active
    return RuntimeConfig.from_environment()


@contextlib.contextmanager
def activated(config: RuntimeConfig) -> Iterator[RuntimeConfig]:
    """Make ``config`` the active config for a scope (this context only).

    Scopes nest; the previous active config (usually ``None``, i.e.
    legacy environment mode) is restored on exit.
    """
    token = _ACTIVE.set(config)
    try:
        yield config
    finally:
        _ACTIVE.reset(token)


#: Serializes every window that mutates the ``REPRO_*`` environment
#: (:func:`worker_environment` and the legacy shared-cache export
#: around a parallel pool): ``os.environ`` is process-global, so two
#: threads saving/restoring it concurrently could leave one session's
#: values behind.  Re-entrant in case a nested scope ever runs in the
#: same thread.
_WORKER_ENVIRONMENT_LOCK = threading.RLock()


@contextlib.contextmanager
def locked_environment() -> Iterator[None]:
    """Hold the process-environment lock for a scope.

    Taken by any code path that reads-then-exports ``REPRO_*``
    variables around a worker pool, so it cannot interleave with a
    concurrent :func:`worker_environment` window.
    """
    with _WORKER_ENVIRONMENT_LOCK:
        yield


@contextlib.contextmanager
def worker_environment(config: RuntimeConfig) -> Iterator[None]:
    """Temporarily export a config's trace knobs to the environment.

    Parallel sweeps of an explicit session wrap their worker pool in
    this so the workers -- which resolve knobs from the inherited
    environment (spawn platforms) or the forked activation (fork
    platforms) -- see the session's engine and trace-cache directory.
    The parent's environment is restored on exit, so a session never
    leaks its configuration into later legacy-mode calls.  Windows are
    serialized under a process-wide lock: the environment is global
    state, and interleaved save/restore from two threads would leak
    one session's values permanently.
    """
    with _WORKER_ENVIRONMENT_LOCK:
        trace_cache_dir = _namespaced(config.trace_cache_dir, config.cache_namespace)
        values = {
            TRACE_ENGINE_VARIABLE: config.trace_engine,
            TRACE_CACHE_DIR_VARIABLE: (
                trace_cache_dir if trace_cache_dir is not None else "none"
            ),
            # The exported directory is already namespaced; blank out the
            # namespace variable so spawn-platform workers do not join it
            # a second time.
            CACHE_NAMESPACE_VARIABLE: "",
        }
        previous = {name: os.environ.get(name) for name in values}
        os.environ.update(values)
        try:
            yield
        finally:
            for name, value in previous.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value


def current_trace_engine() -> str:
    """Engine the workload layer should generate traces with."""
    active = _ACTIVE.get()
    if active is not None:
        return active.trace_engine
    return _resolve_engine(read_environment(TRACE_ENGINE_VARIABLE) or "")


def current_cache_namespace() -> Optional[str]:
    """Active cache namespace, or ``None`` when unset."""
    active = _ACTIVE.get()
    if active is not None:
        return active.cache_namespace
    return normalize_cache_namespace(read_environment(CACHE_NAMESPACE_VARIABLE))


def current_trace_cache_dir() -> Optional[str]:
    """Active trace-cache directory (namespaced), or ``None`` when disabled."""
    active = _ACTIVE.get()
    if active is not None:
        return _namespaced(active.trace_cache_dir, active.cache_namespace)
    return _namespaced(
        normalize_cache_dir(read_environment(TRACE_CACHE_DIR_VARIABLE)),
        current_cache_namespace(),
    )


def current_result_cache_dir() -> Optional[str]:
    """Active result-store directory (namespaced), or ``None`` when disabled."""
    active = _ACTIVE.get()
    if active is not None:
        return _namespaced(active.result_cache_dir, active.cache_namespace)
    return _namespaced(
        normalize_cache_dir(read_environment(RESULT_CACHE_DIR_VARIABLE)),
        current_cache_namespace(),
    )


def current_queue_dir() -> Optional[str]:
    """Active work-queue directory, or ``None`` (ephemeral campaigns)."""
    active = _ACTIVE.get()
    if active is not None:
        return active.queue_dir
    return normalize_cache_dir(read_environment(QUEUE_DIR_VARIABLE))


def semantic_runtime() -> Dict[str, Any]:
    """Key material of the current runtime (see :meth:`RuntimeConfig.semantic`)."""
    return current_config().semantic()


def runtime_material(runtime: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Normalize the runtime component of a result key.

    ``None`` means "whatever is current"; an explicit mapping (e.g.
    from a stored :class:`RuntimeConfig`) is passed through, so the
    orchestrator can key results off a session's config instead of
    process-global state.
    """
    if runtime is None:
        return semantic_runtime()
    return dict(runtime)
