"""Declarative plans: what to run, separated from how it runs.

A :class:`Plan` captures a complete description of work -- which
workloads, which front-end configurations, which metrics, which
registered paper experiments, or which exploration grid -- bound to the
:class:`~repro.api.session.Session` that will execute it.  Building a
plan performs no simulation; :meth:`Plan.execute` compiles it onto the
existing engines (the batched
:func:`repro.frontend.simulation.simulate_frontend_many`, the shared
trace cache, the orchestrator's content-addressed store) under the
session's :class:`~repro.api.runtime_config.RuntimeConfig` and yields a
columnar :class:`~repro.api.frame.ResultFrame`.

The Plan protocol
-----------------
Every plan -- :class:`FrontendSweepPlan`, :class:`ExperimentPlan`, and
:class:`~repro.explore.plan.ExplorePlan` -- implements the same
three-method surface, so callers (the CLI, notebooks, higher-level
tooling) can hold any of them behind one interface:

``execute() -> ResultFrame``
    Run the plan and return its canonical columnar result.
``frame() -> ResultFrame``
    The plan's primary frame.  For store-backed plans this is the
    *stored payload* frame (slice with ``select()``/``column()``);
    plans that compute directly alias :meth:`execute`.
``outcome() -> PlanOutcome``
    Run the plan and return the frame together with its provenance:
    the plan kind, the content-addressed store/journal key, and
    whether the result was served from the store (``"cached"``) or
    computed this run.

``describe()`` stays the side-effect-free semantic description used for
logging and content addressing.

The module-level sweep worker is deliberately a plain picklable
function, so plans fan out through the same ``parallel_map`` pool the
experiment drivers use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.frame import ResultFrame, artifact_frames
from repro.frontend.configs import (
    BASELINE_FRONTEND,
    TAILORED_FRONTEND,
    FrontEndConfig,
)
from repro.frontend.simulation import FrontEndResult, simulate_frontend_many
from repro.trace.instruction import CodeSection
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace_cache import workload_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.api.session import Session

#: The front-end metrics a sweep plan can report, in column order.
SWEEP_METRICS: Tuple[str, ...] = ("branch_mpki", "btb_mpki", "icache_mpki")

#: The configurations swept when a plan does not name any: the two
#: Section V core flavours.
DEFAULT_SWEEP_CONFIGS: Tuple[FrontEndConfig, ...] = (
    BASELINE_FRONTEND,
    TAILORED_FRONTEND,
)


def _metric_value(result: FrontEndResult, metric: str) -> float:
    if metric == "branch_mpki":
        return result.branch.mpki
    if metric == "btb_mpki":
        return result.btb.mpki
    if metric == "icache_mpki":
        return result.icache.mpki
    raise KeyError(f"unknown sweep metric {metric!r}; expected one of {SWEEP_METRICS}")


def _sweep_worker(args) -> Dict[Tuple[str, CodeSection], FrontEndResult]:
    """Per-workload worker: every configuration over one shared trace.

    Module-level (and argument-tuple shaped like the driver workers:
    ``(spec, instructions, ...)``) so parallel execution can pickle it
    and the sweep primer recognises and pre-generates its traces.
    """
    spec, instructions, seed, configs, sections = args
    trace = workload_trace(spec, instructions, seed=seed)
    return simulate_frontend_many(trace, configs, sections)


@dataclass(frozen=True)
class PlanOutcome:
    """What one executed plan produced, with provenance.

    ``kind``
        The plan flavour (``"frontend-sweep"``, ``"experiments"``,
        ``"explore"``).
    ``key``
        The plan's content-addressed store/journal key -- the identity
        a rerun would resolve against.
    ``status``
        ``"cached"`` when the result was served entirely from the
        store, ``"computed"`` otherwise (orchestrator statuses such as
        ``"derived"`` pass through).
    ``frame``
        The plan's primary :class:`ResultFrame`.
    ``details``
        Plan-specific accounting (chunk counts, experiment titles, ...).
    """

    kind: str
    key: str
    status: str
    frame: ResultFrame
    details: Dict[str, Any]


class Plan:
    """Base class of every declarative plan.

    Subclasses implement the protocol documented in the module
    docstring: :meth:`execute` and :meth:`describe` are required;
    :meth:`frame` defaults to :meth:`execute`, and :meth:`outcome`
    wraps it with ``"computed"`` provenance for plans that do not
    track store service themselves.
    """

    def execute(self) -> ResultFrame:
        """Run the plan and return its columnar result."""
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """Plain-dict description of everything the plan will do."""
        raise NotImplementedError

    def frame(self) -> ResultFrame:
        """The plan's primary frame (defaults to :meth:`execute`)."""
        return self.execute()

    def outcome(self) -> PlanOutcome:
        """Execute and return the frame with provenance attached."""
        description = self.describe()
        return PlanOutcome(
            kind=str(description.get("kind", type(self).__name__)),
            key="",
            status="computed",
            frame=self.execute(),
            details={},
        )


@dataclass(frozen=True)
class FrontendSweepPlan(Plan):
    """workloads x front-end configurations x sections -> metrics.

    Compiles to one batched :func:`simulate_frontend_many` call per
    workload (each section's branch/line streams decoded once for all
    configurations), fanned out through the session's pool when its
    config says so.  The resulting frame has one row per (workload,
    section, configuration) with the requested metric columns.
    """

    session: "Session"
    workloads: Tuple[WorkloadSpec, ...]
    configs: Tuple[FrontEndConfig, ...]
    sections: Tuple[CodeSection, ...]
    metrics: Tuple[str, ...]
    instructions: int
    seed: int = 0

    def __post_init__(self) -> None:
        # Results are keyed by config *name*, so duplicates would
        # silently collapse onto one config's numbers.
        names = [config.name for config in self.configs]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise ValueError(
                f"duplicate front-end config name(s): {', '.join(duplicates)}; "
                "every swept configuration needs a unique name"
            )
        for metric in self.metrics:
            if metric not in SWEEP_METRICS:
                raise KeyError(
                    f"unknown sweep metric {metric!r}; "
                    f"expected one of {SWEEP_METRICS}"
                )
        if len(set(self.metrics)) != len(self.metrics):
            raise ValueError(
                "duplicate sweep metrics; each metric becomes one frame column"
            )

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "frontend-sweep",
            "workloads": [spec.name for spec in self.workloads],
            "configs": [config.name for config in self.configs],
            "sections": [section.name for section in self.sections],
            "metrics": list(self.metrics),
            "instructions": self.instructions,
            "seed": self.seed,
            "runtime": self.session.config.describe(),
        }

    def journal_scope(self) -> str:
        """Content-addressed checkpoint scope of this sweep.

        A digest of the plan's full provenance via
        :func:`repro.results.store.result_key` -- which also folds in
        the package source fingerprint and the session's semantic
        runtime -- so an interrupted ``execute()`` resumes per-item
        checkpoints only when the code and the plan are both unchanged.
        """
        import dataclasses

        from repro.results.store import result_key

        return result_key(
            "frontend-sweep-plan",
            {
                "configs": [dataclasses.asdict(config) for config in self.configs],
                "sections": [section.name for section in self.sections],
                "instructions": self.instructions,
            },
            [spec.name for spec in self.workloads],
            seed=self.seed,
            runtime=self.session.config.semantic(),
        )

    def execute(self) -> ResultFrame:
        arguments = [
            (spec, self.instructions, self.seed, self.configs, self.sections)
            for spec in self.workloads
        ]
        prime = [(spec, self.instructions, self.seed) for spec in self.workloads]
        results = self.session.map(
            _sweep_worker, arguments, prime=prime, journal_scope=self.journal_scope()
        )
        rows: List[List[Any]] = []
        for spec, by_key in zip(self.workloads, results):
            for section in self.sections:
                for config in self.configs:
                    result = by_key[(config.name, section)]
                    rows.append(
                        [spec.name, spec.suite.label, section.name, config.name]
                        + [_metric_value(result, metric) for metric in self.metrics]
                    )
        return ResultFrame.from_rows(
            ("workload", "suite", "section", "config") + self.metrics, rows
        )

    def outcome(self) -> PlanOutcome:
        """Execute and return the sweep frame with its journal key.

        Sweep plans checkpoint per-workload rather than store whole
        results, so the status is always ``"computed"``.
        """
        return PlanOutcome(
            kind="frontend-sweep",
            key=self.journal_scope(),
            status="computed",
            frame=self.execute(),
            details={
                "workloads": [spec.name for spec in self.workloads],
                "configs": [config.name for config in self.configs],
            },
        )


@dataclass(frozen=True)
class ExperimentPlan(Plan):
    """A selection of registered paper experiments, store-backed.

    Executes through the orchestrator under the session's runtime
    config: results are looked up in the content-addressed store first,
    derived from dependencies when possible, computed otherwise, and
    stored the moment they complete.
    """

    session: "Session"
    names: Tuple[str, ...]
    scenario_names: Optional[Tuple[str, ...]] = None
    instructions: Optional[int] = None
    use_store: bool = True

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "experiments",
            "experiments": list(self.names),
            "scenarios": list(self.scenario_names or ()) or None,
            "instructions": self._instructions(),
            "use_store": self.use_store,
            "runtime": self.session.config.describe(),
        }

    def _instructions(self) -> int:
        if self.instructions is not None:
            return self.instructions
        return self.session.config.instructions

    def report(self):
        """Run the plan and return the orchestrator's full RunReport."""
        from repro.results.orchestrator import run_experiments

        config = self.session.config
        with self.session.activate():
            return run_experiments(
                list(self.names),
                instructions=self._instructions(),
                run_parallel=config.parallel,
                processes=config.processes,
                scenario_names=(
                    list(self.scenario_names) if self.scenario_names else None
                ),
                use_store=self.use_store,
            )

    def frames(self) -> Dict[str, ResultFrame]:
        """Execute and return one *rendered* frame per experiment.

        These are the table-block frames (what the manifest CSV emits);
        the canonical columnar payloads live in :meth:`stored_frames`.
        """
        report = self.report()
        return {
            outcome.name: ResultFrame.from_artifact(outcome.artifact)
            for outcome in report.outcomes
        }

    def stored_frames(self) -> Dict[str, Dict[str, ResultFrame]]:
        """Execute and return every experiment's stored payload frames.

        One ``{frame name: ResultFrame}`` dict per experiment, straight
        from the versioned columnar payloads the store persists -- no
        per-experiment glue, and every frame supports
        ``select()``/``column()`` slicing.
        """
        report = self.report()
        return {
            outcome.name: outcome.stored_frames() for outcome in report.outcomes
        }

    def frame(
        self,
        experiment: Optional[str] = None,
        name: Optional[str] = None,
    ) -> ResultFrame:
        """Execute and return one stored payload frame.

        ``experiment`` defaults to the plan's only selection (a
        multi-experiment plan requires it); ``name`` defaults to the
        experiment's primary frame as declared in its artifact.
        """
        report = self.report()
        if experiment is None:
            if len(report.outcomes) != 1:
                known = ", ".join(outcome.name for outcome in report.outcomes)
                raise ValueError(
                    f"plan selects {len(report.outcomes)} experiments ({known}); "
                    "pass experiment= to pick one"
                )
            outcome = report.outcomes[0]
        else:
            outcome = report.outcome(experiment)
        return outcome.stored_frame(name)

    def execute(self) -> ResultFrame:
        """Execute and return the frame of the selection.

        A single-experiment plan returns that experiment's frame.  A
        multi-experiment plan returns one frame only when every
        experiment's tables agree on their headers; use
        :meth:`frames` for heterogeneous selections.
        """
        frames = self.frames()
        if not frames:
            raise ValueError("the plan selected no experiments; nothing to execute")
        if len(frames) == 1:
            return next(iter(frames.values()))
        try:
            return ResultFrame.concat(list(frames.values()))
        except ValueError as error:
            raise ValueError(
                "experiments disagree on table headers; use frames() instead"
            ) from error

    def outcome(self) -> PlanOutcome:
        """Execute and return the single selected experiment's outcome.

        The orchestrator's store status (``"cached"``, ``"derived"``,
        ``"computed"``) passes straight through.  A multi-experiment
        plan has no single outcome; use :meth:`report`.
        """
        report = self.report()
        if len(report.outcomes) != 1:
            known = ", ".join(outcome.name for outcome in report.outcomes)
            raise ValueError(
                f"plan selects {len(report.outcomes)} experiments ({known}); "
                "outcome() needs exactly one -- use report() instead"
            )
        outcome = report.outcomes[0]
        return PlanOutcome(
            kind="experiments",
            key=outcome.key,
            status=outcome.status,
            frame=outcome.stored_frame(),
            details={"experiment": outcome.name, "title": outcome.title},
        )


def experiment_frames(artifact: Mapping[str, Any]) -> Sequence[ResultFrame]:
    """Frames of one stored artifact (re-exported convenience)."""
    return artifact_frames(artifact)
