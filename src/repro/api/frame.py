"""Columnar result frames: the typed output of every executed plan.

A :class:`ResultFrame` is a small, dependency-free table -- named
columns over row tuples -- that every :class:`~repro.api.plan.Plan`
yields and that the orchestrator's artifact writer consumes directly.
It is deliberately *not* a DataFrame clone: it holds exactly what the
experiment artifacts need (deterministic CSV/JSON emission, named
column access, row iteration) and nothing else, so the result store
and the manifest writer can depend on it from the bottom of the
layering without pulling in the session machinery.

Frames round-trip through the stored artifact form
(:func:`ResultFrame.from_artifact` / the ``tables`` blocks built by
:func:`repro.results.artifacts.build_artifact`), and the CSV emission
is bit-identical to the historical ``write_artifact_csv`` output --
asserted in the test suite.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Version of the columnar frame payload layout (``to_payload`` /
#: ``from_payload``).  Folded into the result-store key versions so a
#: layout change can never deserialize against stale disk entries.
FRAME_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ResultFrame:
    """An immutable named-column table of experiment results."""

    #: Column names, in emission order.
    columns: Tuple[str, ...]
    #: Row tuples; every row has exactly ``len(columns)`` cells.
    data: Tuple[Tuple[Any, ...], ...] = ()
    #: Optional human-readable title (carried from the artifact block).
    title: Optional[str] = None
    #: Index of each column name, built once.
    _index: Dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(set(self.columns)) != len(self.columns):
            duplicates = sorted(
                {name for name in self.columns if self.columns.count(name) > 1}
            )
            raise ValueError(
                f"duplicate column name(s): {', '.join(duplicates)}; "
                "named access requires unique columns"
            )
        for row in self.data:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row {row!r} has {len(row)} cells, expected {len(self.columns)}"
                )
        self._index.update({name: i for i, name in enumerate(self.columns)})

    # -- construction ------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        columns: Sequence[str],
        rows: Sequence[Sequence[Any]],
        title: Optional[str] = None,
    ) -> "ResultFrame":
        """Build a frame from a column-name list and row sequences."""
        return cls(
            columns=tuple(str(name) for name in columns),
            data=tuple(tuple(row) for row in rows),
            title=title,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[Mapping[str, Any]],
        columns: Optional[Sequence[str]] = None,
    ) -> "ResultFrame":
        """Build a frame from dict records (columns: first record's keys)."""
        records = list(records)
        if columns is None:
            columns = list(records[0].keys()) if records else []
        return cls.from_rows(
            columns, [[record.get(name) for name in columns] for record in records]
        )

    @classmethod
    def from_artifact(cls, artifact: Mapping[str, Any]) -> "ResultFrame":
        """One frame covering every table block of a stored artifact.

        Single-block artifacts map one-to-one.  Multi-block artifacts
        that agree on their headers (e.g. the per-scenario ``cmpsweep``
        tables) gain a leading ``table`` column carrying each block's
        short name, exactly mirroring the CSV the manifest emits.
        Multi-block artifacts with differing headers cannot be one
        table; use :func:`artifact_frames` for those.
        """
        frames = artifact_frames(artifact)
        if len(frames) == 1:
            return frames[0]
        try:
            return cls.concat(frames, title=artifact.get("title"))
        except ValueError as error:
            raise ValueError(
                "artifact blocks disagree on headers; use artifact_frames()"
            ) from error

    @classmethod
    def concat(
        cls,
        frames: "Sequence[ResultFrame]",
        title: Optional[str] = None,
    ) -> "ResultFrame":
        """Concatenate frames that agree on their columns, in order."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot concatenate zero frames")
        if len({frame.columns for frame in frames}) != 1:
            raise ValueError("frames disagree on columns")
        combined: List[Tuple[Any, ...]] = []
        for frame in frames:
            combined.extend(frame.data)
        return cls(columns=frames[0].columns, data=tuple(combined), title=title)

    # -- access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.data)

    def rows(self) -> List[Tuple[Any, ...]]:
        """Every row, in order."""
        return list(self.data)

    def _position(self, name: str) -> int:
        if name not in self._index:
            raise KeyError(
                f"no column {name!r}; frame has {', '.join(self.columns)}"
            )
        return self._index[name]

    def column(self, name: str) -> List[Any]:
        """One column's cells, in row order."""
        position = self._position(name)
        return [row[position] for row in self.data]

    def records(self) -> List[Dict[str, Any]]:
        """Every row as a column-name -> cell dict."""
        return [dict(zip(self.columns, row)) for row in self.data]

    def select(self, **equals: Any) -> "ResultFrame":
        """Rows whose named columns equal the given values."""
        positions = {self._position(name): value for name, value in equals.items()}
        kept = tuple(
            row
            for row in self.data
            if all(row[pos] == value for pos, value in positions.items())
        )
        return ResultFrame(columns=self.columns, data=kept, title=self.title)

    # -- serialization -----------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The versioned columnar JSON form stored in artifacts.

        Cells must already be JSON-serializable (the artifact builder
        runs them through :func:`repro.results.artifacts.to_jsonable`
        first); the layout is ``{"schema", "columns", "rows"}`` plus an
        optional ``"title"``.
        """
        payload: Dict[str, Any] = {
            "schema": FRAME_SCHEMA_VERSION,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.data],
        }
        if self.title is not None:
            payload["title"] = self.title
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ResultFrame":
        """Rebuild a frame from its stored columnar form.

        Raises :class:`ValueError` on any malformed payload (unknown
        schema version, missing keys, ragged rows) so the result
        store's corrupt-entry quarantine catches damaged disk entries.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"frame payload must be a mapping, got {type(payload).__name__}")
        if payload.get("schema") != FRAME_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported frame schema {payload.get('schema')!r} "
                f"(expected {FRAME_SCHEMA_VERSION})"
            )
        columns = payload.get("columns")
        rows = payload.get("rows")
        if not isinstance(columns, list) or not all(
            isinstance(name, str) for name in columns
        ):
            raise ValueError("frame payload 'columns' must be a list of strings")
        if not isinstance(rows, list) or not all(isinstance(row, list) for row in rows):
            raise ValueError("frame payload 'rows' must be a list of lists")
        return cls.from_rows(columns, rows, title=payload.get("title"))

    # -- emission ----------------------------------------------------

    def to_csv(self, path: Optional[str] = None) -> str:
        """Render (and optionally write) the frame as CSV.

        Uses the same ``csv`` module configuration as the manifest
        writer, so a frame reconstructed from an artifact emits the
        identical bytes.
        """
        buffer = io.StringIO(newline="")
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.data:
            writer.writerow(row)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="", encoding="utf-8") as stream:
                stream.write(text)
        return text

    def to_json(self, path: Optional[str] = None) -> str:
        """Render (and optionally write) the frame as pretty JSON."""
        payload = {
            "columns": list(self.columns),
            "rows": [list(row) for row in self.data],
        }
        if self.title is not None:
            payload["title"] = self.title
        text = json.dumps(payload, indent=2) + "\n"
        if path is not None:
            with open(path, "w", encoding="utf-8") as stream:
                stream.write(text)
        return text


def artifact_frames(artifact: Mapping[str, Any]) -> List[ResultFrame]:
    """One frame per table block of a stored artifact.

    For multi-block artifacts every frame gains the leading ``table``
    column (carrying the block's short name, or its index when the
    block is unnamed), matching the manifest CSV layout.
    """
    tables = list(artifact.get("tables") or [])
    multi = len(tables) > 1
    frames: List[ResultFrame] = []
    for index, table in enumerate(tables):
        headers = [str(h) for h in table.get("headers") or []]
        rows = [list(row) for row in table.get("rows") or []]
        if multi:
            label = table.get("name") or str(index)
            headers = ["table"] + headers
            rows = [[label] + row for row in rows]
        frames.append(
            ResultFrame.from_rows(headers, rows, title=table.get("title"))
        )
    return frames


def write_frames_csv(frames: Sequence[ResultFrame], path: str) -> None:
    """Emit frames into one CSV file, the manifest writer's format.

    A single frame becomes a plain header+rows CSV.  Multiple frames
    share one header row when they agree on it and re-emit the header
    per frame otherwise, so rows always sit under the headers that
    describe them -- byte-identical to the historical artifact CSV.
    """
    shared = len({frame.columns for frame in frames}) == 1
    with open(path, "w", newline="", encoding="utf-8") as stream:
        writer = csv.writer(stream)
        for index, frame in enumerate(frames):
            if index == 0 or not shared:
                writer.writerow(frame.columns)
            writer.writerows(frame.data)
