"""The Session: one typed entry point for the whole pipeline.

A :class:`Session` owns all runtime state -- a frozen
:class:`~repro.api.runtime_config.RuntimeConfig` resolved once at
construction (explicit argument > ``REPRO_*`` environment variable >
default) -- and exposes the pipeline behind typed methods::

    from repro.api import Session

    session = Session(instructions=60_000)
    trace = session.trace("FT")                       # workloads -> traces
    plan = session.sweep(workloads=["FT", "LU"])      # declarative plan
    frame = plan.execute()                            # -> ResultFrame
    print(frame.to_csv())

Execution primitives
--------------------
:meth:`Session.map` is the sweep engine every experiment driver routes
through: serial by default, fanned out over the supervised executors of
:mod:`repro.exec` when the session's config (or the caller) says so --
with per-item retries, timeouts, checkpoint journaling, and structured
failure reports -- and the shared disk trace cache primed first exactly
like the historical module-level sweep.  While a session executes, its
config is *activated*
(see :func:`repro.api.runtime_config.activated`) so every layer below
-- trace engine selection, cache directories, the result store -- sees
one consistent snapshot instead of re-reading the environment.

The **default session** (:func:`default_session`) is special: it
follows the process environment on every access instead of freezing a
snapshot, which is exactly the historical behaviour of the module-level
entry points (now removed) that used to delegate to it.
"""

from __future__ import annotations

import contextlib
import contextvars
import multiprocessing
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.api import runtime_config as rc
from repro.api.frame import ResultFrame
from repro.api.plan import (
    DEFAULT_SWEEP_CONFIGS,
    SWEEP_METRICS,
    ExperimentPlan,
    FrontendSweepPlan,
    Plan,
)
from repro.frontend.configs import FrontEndConfig
from repro.frontend.simulation import (
    FrontEndResult,
    simulate_frontend,
    simulate_frontend_many,
)
from repro.trace.events import Trace
from repro.trace.instruction import CodeSection
from repro.workloads.catalog import get_workload
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suites import Suite
from repro.workloads.trace_cache import (
    enable_shared_cache,
    trace_on_disk,
    workload_trace,
)

#: What a workload argument may be: a catalog name or a spec.
WorkloadLike = Union[str, WorkloadSpec]


def parallel_map(
    function: Callable,
    items: Sequence,
    processes: Optional[int] = None,
) -> List:
    """Map ``function`` over ``items`` across worker processes, in order.

    ``function`` must be picklable (a module-level function).  With one
    item, one worker, or no multiprocessing support, falls back to a
    plain in-process map.  This is the pool behind every parallel
    sweep; :func:`repro.experiments.common.parallel_map` re-exports it.
    """
    items = list(items)
    if processes is None:
        processes = min(len(items), os.cpu_count() or 1)
    if processes <= 1 or len(items) <= 1:
        return [function(item) for item in items]
    with multiprocessing.Pool(processes) as pool:
        return pool.map(function, items)


def _prime_worker(args) -> None:
    """Generate one trace into the shared disk cache (worker side)."""
    spec, instructions, seed = args
    workload_trace(spec, instructions, seed=seed)


def _default_prime_keys(arguments: Sequence) -> "List[tuple]":
    """Prime keys inferred from conventional driver argument tuples.

    Tuples shaped ``(spec, instructions, ...)`` are primed; the seed is
    taken from the third position when it is a plain ``int`` (the
    ``(spec, instructions, seed, ...)`` worker convention) and defaults
    to 0 otherwise.  The check is ``type(...) is int`` on purpose:
    drivers also pass ``(spec, instructions, section)`` tuples whose
    :class:`~repro.trace.instruction.CodeSection` is an ``IntEnum`` and
    must not be misread as a seed.  Callers whose workers derive seeds
    elsewhere pass explicit keys to :meth:`Session.map` instead.
    """
    keys = []
    seen = set()
    for args in arguments:
        if (
            isinstance(args, tuple)
            and len(args) >= 2
            and isinstance(args[0], WorkloadSpec)
            and isinstance(args[1], int)
        ):
            seed = args[2] if len(args) >= 3 and type(args[2]) is int else 0
            key = (args[0].name, args[1], seed)
            if key in seen:
                continue
            seen.add(key)
            keys.append((args[0], args[1], seed))
    return keys


def _prime_shared_traces(keys: Sequence, processes: Optional[int]) -> None:
    """Populate the shared trace cache for a sweep before forking.

    ``keys`` are ``(spec, instructions, seed)`` triples.  Traces the
    disk layer is missing are generated *in parallel* (each priming
    worker stores its ``.npz`` atomically), then the parent loads
    everything into its in-memory cache, so sweep workers find every
    trace present -- inherited on fork platforms, disk-loaded otherwise
    -- instead of each regenerating its own.
    """
    missing = [key for key in keys if not trace_on_disk(*key)]
    if len(missing) > 1:
        parallel_map(_prime_worker, missing, processes)
    for spec, instructions, seed in keys:
        workload_trace(spec, instructions, seed=seed)


class Session:
    """Owns runtime state; every pipeline stage hangs off it.

    ``config`` may be a ready-made :class:`~repro.api.runtime_config.
    RuntimeConfig`; keyword overrides take precedence over environment
    variables, which take precedence over defaults (resolved once,
    here).  A provided config object is taken verbatim -- in
    particular, its ``trace_cache_dir=None`` counts as an explicit
    disable, so such a session never auto-defaults the shared trace
    cache under parallel overrides (keyword construction does).  With
    ``follow_environment=True`` the session re-reads the environment on
    every access instead -- that mode exists for the process-wide
    default session backing the legacy entry points and is not normally
    constructed by hand.
    """

    def __init__(
        self,
        config: Optional[rc.RuntimeConfig] = None,
        *,
        follow_environment: bool = False,
        **overrides: Any,
    ) -> None:
        if follow_environment and (config is not None or overrides):
            raise ValueError(
                "an environment-following session takes no explicit config"
            )
        self._follow_environment = follow_environment
        # Whether a later parallel override may auto-default the shared
        # trace-cache directory (the legacy run_sweep behaviour): only
        # when neither the caller nor the environment said anything
        # about the trace cache, so an explicit disable always wins.
        self._trace_cache_defaultable = (
            not follow_environment
            and config is None
            and "trace_cache_dir" not in overrides
            and rc.read_environment(rc.TRACE_CACHE_DIR_VARIABLE) is None
        )
        if follow_environment:
            self._config: Optional[rc.RuntimeConfig] = None
        elif config is None:
            self._config = rc.RuntimeConfig.from_environment(**overrides)
        elif overrides:
            self._config = config.replace(**overrides)
        else:
            self._config = config

    # -- configuration -----------------------------------------------

    @property
    def follows_environment(self) -> bool:
        """Whether this session re-reads ``REPRO_*`` on every access."""
        return self._follow_environment

    @property
    def config(self) -> rc.RuntimeConfig:
        """The session's runtime config (frozen unless env-following)."""
        if self._config is not None:
            return self._config
        return rc.RuntimeConfig.from_environment()

    @contextlib.contextmanager
    def activate(self) -> Iterator["Session"]:
        """Make this session's config the active one for a scope.

        Also makes the session :func:`current_session` for the scope,
        so code below (the experiment drivers) routes its sweeps
        through it.  The environment-following default session
        activates only itself, not a config snapshot -- the layers
        below keep reading the live environment, which is the legacy
        contract.
        """
        token = _CURRENT.set(self)
        try:
            if self._follow_environment:
                yield self
            else:
                with rc.activated(self.config):
                    yield self
        finally:
            _CURRENT.reset(token)

    @contextlib.contextmanager
    def _activated_as(self, config: rc.RuntimeConfig) -> Iterator["Session"]:
        """Like :meth:`activate`, but pinning a derived config.

        Used by :meth:`map` when a parallel override re-applies the
        shared-cache default: the session stays ``current_session`` for
        the scope while the lower layers see the effective config.
        """
        if self._follow_environment:
            with self.activate():
                yield self
            return
        token = _CURRENT.set(self)
        try:
            with rc.activated(config):
                yield self
        finally:
            _CURRENT.reset(token)

    # -- workload selection ------------------------------------------

    def workload(self, workload: WorkloadLike) -> WorkloadSpec:
        """Resolve a catalog name (or pass a spec through)."""
        if isinstance(workload, WorkloadSpec):
            return workload
        return get_workload(workload)

    def workloads(
        self,
        suites: Optional[Sequence[Suite]] = None,
        names: Optional[Sequence[str]] = None,
    ) -> List[WorkloadSpec]:
        """Select workloads: all 41 by default, or by suite/name.

        Delegates to :func:`repro.workloads.catalog.select_workloads`,
        the same helper behind the legacy ``suite_workloads``.
        """
        from repro.workloads.catalog import select_workloads

        return select_workloads(
            suites=list(suites) if suites is not None else None,
            names=list(names) if names is not None else None,
        )

    # -- pipeline stages ---------------------------------------------

    def trace(
        self,
        workload: WorkloadLike,
        instructions: Optional[int] = None,
        seed: int = 0,
    ) -> Trace:
        """Build (or reuse) a workload's dynamic trace.

        Routed through the shared trace cache under this session's
        config, so the engine choice and disk layer follow the session
        rather than the ambient environment.
        """
        spec = self.workload(workload)
        if instructions is None:
            instructions = self.config.instructions
        with self.activate():
            return workload_trace(spec, instructions, seed=seed)

    def frontend(
        self,
        workload: WorkloadLike,
        config: FrontEndConfig,
        section: CodeSection = CodeSection.TOTAL,
        instructions: Optional[int] = None,
        seed: int = 0,
    ) -> FrontEndResult:
        """Simulate one front-end configuration over one workload."""
        trace = self.trace(workload, instructions, seed=seed)
        with self.activate():
            return simulate_frontend(trace, config, section)

    def frontend_many(
        self,
        workload: WorkloadLike,
        configs: Sequence[FrontEndConfig],
        sections: Sequence[CodeSection] = (CodeSection.TOTAL,),
        instructions: Optional[int] = None,
        seed: int = 0,
    ) -> Dict[Any, FrontEndResult]:
        """Simulate many configurations over one workload, batched."""
        trace = self.trace(workload, instructions, seed=seed)
        with self.activate():
            return simulate_frontend_many(trace, tuple(configs), tuple(sections))

    # -- declarative plans -------------------------------------------

    def sweep(
        self,
        workloads: Optional[Sequence[WorkloadLike]] = None,
        configs: Optional[Sequence[FrontEndConfig]] = None,
        metrics: Optional[Sequence[str]] = None,
        sections: Sequence[CodeSection] = (CodeSection.TOTAL,),
        instructions: Optional[int] = None,
        seed: int = 0,
    ) -> FrontendSweepPlan:
        """Declare a workloads x configs x sections front-end sweep.

        Returns a :class:`FrontendSweepPlan`; nothing runs until
        ``execute()``.  Defaults: the full 41-workload catalog, the
        baseline and tailored Section V front-ends, all three MPKI
        metrics, the TOTAL section, and the session's instruction
        budget.
        """
        specs = (
            self.workloads()
            if workloads is None
            else [self.workload(w) for w in workloads]
        )
        return FrontendSweepPlan(
            session=self,
            workloads=tuple(specs),
            configs=tuple(configs) if configs is not None else DEFAULT_SWEEP_CONFIGS,
            sections=tuple(sections),
            metrics=tuple(metrics) if metrics is not None else SWEEP_METRICS,
            instructions=(
                self.config.instructions if instructions is None else int(instructions)
            ),
            seed=int(seed),
        )

    def experiment(self, name: str, **options: Any) -> ExperimentPlan:
        """Declare one registered paper experiment (see ``experiments``)."""
        return self.experiments([name], **options)

    def experiments(
        self,
        names: Optional[Sequence[str]] = None,
        scenario_names: Optional[Sequence[str]] = None,
        instructions: Optional[int] = None,
        use_store: bool = True,
    ) -> ExperimentPlan:
        """Declare a selection of registered experiments (default: all).

        Returns an :class:`ExperimentPlan` that executes through the
        orchestrator under this session's config: store-first,
        dependency-deriving, resumable.
        """
        if names is None:
            from repro.results.orchestrator import registry_names

            names = registry_names()
        return ExperimentPlan(
            session=self,
            names=tuple(names),
            scenario_names=tuple(scenario_names) if scenario_names else None,
            instructions=instructions,
            use_store=use_store,
        )

    def explore(
        self,
        grid: Any,
        workloads: Optional[Sequence[WorkloadLike]] = None,
        sections: Sequence[CodeSection] = (CodeSection.TOTAL,),
        instructions: Optional[int] = None,
        seed: int = 0,
        chunk_points: Optional[int] = None,
        objectives: Optional[Sequence[str]] = None,
        use_store: bool = True,
    ) -> "Any":
        """Declare a design-space exploration over a grid.

        ``grid`` is a :class:`~repro.explore.grid.GridSpec` (or a
        preset name from :data:`~repro.explore.grid.GRID_PRESETS`).
        Returns an :class:`~repro.explore.plan.ExplorePlan`; nothing
        runs until ``execute()``/``result()``.  Grid points are
        evaluated in content-addressed chunks through the batched
        engines, so interrupted explorations resume by replaying stored
        chunks, and ``objectives`` (default: the grid kind's standard
        area/power/performance triple) select the Pareto frontier.
        """
        from repro.explore.grid import GridSpec, get_grid
        from repro.explore.plan import (
            DEFAULT_CHUNK_POINTS,
            DEFAULT_EXPLORE_WORKLOADS,
            ExplorePlan,
        )

        if isinstance(grid, str):
            grid = get_grid(grid)
        if not isinstance(grid, GridSpec):
            raise TypeError(
                f"expected a GridSpec or preset name, got {type(grid).__name__}"
            )
        names = DEFAULT_EXPLORE_WORKLOADS if workloads is None else workloads
        return ExplorePlan(
            session=self,
            grid=grid,
            workloads=tuple(self.workload(w) for w in names),
            sections=tuple(sections),
            instructions=(
                self.config.instructions if instructions is None else int(instructions)
            ),
            seed=int(seed),
            chunk_points=(
                DEFAULT_CHUNK_POINTS if chunk_points is None else int(chunk_points)
            ),
            objectives=tuple(objectives) if objectives is not None else (),
            use_store=use_store,
        )

    def run(self, plan: Plan) -> ResultFrame:
        """Execute a plan (equivalent to ``plan.execute()``)."""
        return plan.execute()

    # -- the sweep engine --------------------------------------------

    def map(
        self,
        worker: Callable,
        arguments: Sequence,
        parallel: Optional[bool] = None,
        processes: Optional[int] = None,
        prime: Optional[Sequence] = None,
        journal_scope: Optional[str] = None,
    ) -> List:
        """Run a per-workload sweep worker over its argument tuples.

        The historical "list of values" contract over
        :meth:`map_report`: every item's value in argument order, or a
        :class:`repro.exec.SweepError` carrying the structured failure
        report (and the partial results) when any item permanently
        failed.
        """
        return self.map_report(
            worker,
            arguments,
            parallel=parallel,
            processes=processes,
            prime=prime,
            journal_scope=journal_scope,
        ).values()

    def map_report(
        self,
        worker: Callable,
        arguments: Sequence,
        parallel: Optional[bool] = None,
        processes: Optional[int] = None,
        prime: Optional[Sequence] = None,
        journal_scope: Optional[str] = None,
    ):
        """Run a sweep under supervision; return the full SweepReport.

        The execution policy comes from the session's config unless the
        caller overrides it: the ``executor`` knob selects the engine
        (``"auto"``: the supervised process pool when parallel, serial
        in-process otherwise), with per-item retries, timeouts, and
        fault injection from the config.  Before a process executor
        spawns workers, the shared disk trace cache is primed -- under
        the session's ``trace_cache_dir`` for explicit sessions, or
        (for the environment-following default session) under the
        legacy auto-enabled per-user directory, exported to the
        environment so worker processes inherit it.

        ``prime`` names the traces to pre-generate as ``(spec,
        instructions, seed)`` triples; when omitted they are inferred
        from conventionally shaped ``(spec, instructions, [seed,] ...)``
        argument tuples.  ``journal_scope`` (or the ambient scope the
        orchestrator activates) enables per-item checkpointing: a
        killed sweep rerun under the same scope replays completed items
        from disk and computes only the missing ones.
        """
        from repro.exec import executors as exec_executors
        from repro.exec import journal as exec_journal
        from repro.exec.faults import FaultPlan

        config = self.config
        use_parallel = config.parallel if parallel is None else bool(parallel)
        worker_count = config.processes if processes is None else processes
        executor_name = config.executor
        if executor_name == "auto":
            executor_name = "processes" if use_parallel else "serial"
        if (
            use_parallel
            and not self._follow_environment
            and config.trace_cache_dir is None
            and self._trace_cache_defaultable
        ):
            # A parallel override on a session constructed without any
            # trace-cache setting: apply the same per-user shared-cache
            # default a parallel construction would have resolved, so
            # the legacy run_sweep(run_parallel=True) behaviour holds.
            config = config.replace(trace_cache_dir=rc.default_trace_cache_dir())
        settings = exec_executors.ExecutionSettings(
            processes=worker_count,
            retries=config.retries,
            item_timeout=config.item_timeout,
            retry_delay=config.retry_delay,
            fault_plan=FaultPlan.from_spec(config.fault_plan),
            queue_dir=config.queue_dir,
            lease_ttl=config.lease_ttl,
            heartbeat_interval=config.heartbeat_interval,
        )
        executor = exec_executors.resolve_executor(executor_name)
        with self._activated_as(config):
            scope = (
                journal_scope
                if journal_scope is not None
                else exec_journal.active_journal_scope()
            )
            journal = exec_journal.journal_for_scope(scope)
            if executor.name == "serial":
                return exec_executors.execute_items(
                    worker, arguments, settings, executor, journal
                )
            if prime is None:
                prime = _default_prime_keys(arguments)
            if self._follow_environment:
                # Legacy contract: default the shared directory into the
                # environment (a durable export) and leave engine
                # resolution to the live environment.  Runs under the
                # environment lock so a concurrent explicit session's
                # temporary export cannot be observed mid-swap.
                with rc.locked_environment():
                    shared_dir = enable_shared_cache()
                    if shared_dir is not None:
                        _prime_shared_traces(prime, worker_count)
                    return exec_executors.execute_items(
                        worker, arguments, settings, executor, journal
                    )
            # Explicit session: export its trace knobs around the pool
            # only, so spawn-platform workers resolve the session's
            # engine and cache directory (fork platforms also inherit
            # the activation), and nothing leaks afterwards.
            with rc.worker_environment(config):
                if config.trace_cache_dir is not None:
                    _prime_shared_traces(prime, worker_count)
                return exec_executors.execute_items(
                    worker, arguments, settings, executor, journal
                )

    def workload_sweep(
        self,
        worker: Callable,
        extra_args: Sequence = (),
        names: Optional[Sequence[str]] = None,
        specs: Optional[Sequence[WorkloadSpec]] = None,
        parallel: Optional[bool] = None,
        processes: Optional[int] = None,
    ) -> "tuple[List[WorkloadSpec], List]":
        """Sweep a per-workload worker over one workload selection.

        Builds the conventional ``(spec, *extra_args)`` argument tuples
        and runs them through :meth:`map`.  Returns ``(specs, rows)``
        with rows in spec order -- the flat-sweep glue every
        per-benchmark driver used to hand-roll.
        """
        if specs is None:
            specs = self.workloads(names=names)
        specs = list(specs)
        arguments = [(spec, *extra_args) for spec in specs]
        return specs, self.map(worker, arguments, parallel, processes)

    def suite_sweep(
        self,
        worker: Callable,
        extra_args: Sequence = (),
        suites: Optional[Sequence[Suite]] = None,
        parallel: Optional[bool] = None,
        processes: Optional[int] = None,
    ) -> "List[tuple]":
        """Sweep a per-workload worker suite by suite.

        Returns ``[(suite, specs, rows), ...]`` in figure order -- the
        per-suite loop glue shared by the Section III/IV drivers, so
        each experiment keeps only its own aggregation.
        """
        from repro.workloads.suites import SUITE_ORDER

        results = []
        for suite in suites or SUITE_ORDER:
            specs = self.workloads(suites=[suite])
            arguments = [(spec, *extra_args) for spec in specs]
            rows = self.map(worker, arguments, parallel, processes)
            results.append((suite, specs, rows))
        return results


#: The session legacy entry points delegate to (environment-following).
_DEFAULT: Optional[Session] = None

#: The innermost session activated via :meth:`Session.activate` -- a
#: :class:`~contextvars.ContextVar` so threads cannot cross-contaminate.
_CURRENT: "contextvars.ContextVar[Optional[Session]]" = contextvars.ContextVar(
    "repro_current_session", default=None
)


def default_session() -> Session:
    """The process-wide environment-following session.

    Backs every environment-following entry point (``workload_trace``
    used as a plain function, the CLI fallbacks): it resolves its
    config from the live environment on each access, which is exactly
    the pre-Session behaviour.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session(follow_environment=True)
    return _DEFAULT


def current_session() -> Session:
    """The session executing right now, else the default session.

    The experiment drivers call this so that work initiated through an
    explicit session (``session.experiment("fig5").execute()``) runs
    under that session's config, while direct driver calls keep the
    legacy environment-following behaviour.
    """
    current = _CURRENT.get()
    if current is not None:
        return current
    return default_session()
