"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro-frontend list
    repro-frontend fig1 [--instructions N]
    repro-frontend table3
    repro-frontend all --instructions 100000
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple

from repro import experiments

#: Experiment name -> (runner, formatter, needs_instructions).
_EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "fig1": (experiments.run_fig01, experiments.format_fig01, True),
    "fig2": (experiments.run_fig02, experiments.format_fig02, True),
    "table1": (experiments.run_table1, experiments.format_table1, True),
    "fig3": (experiments.run_fig03, experiments.format_fig03, True),
    "fig4": (experiments.run_fig04, experiments.format_fig04, True),
    "table2": (experiments.run_table2, experiments.format_table2, False),
    "fig5": (experiments.run_fig05, experiments.format_fig05, True),
    "fig6": (experiments.run_fig06, experiments.format_fig06, True),
    "fig7": (experiments.run_fig07, experiments.format_fig07, True),
    "fig8": (experiments.run_fig08, experiments.format_fig08, True),
    "fig9": (experiments.run_fig09, experiments.format_fig09, True),
    "table3": (experiments.run_table3, experiments.format_table3, False),
    "fig10": (experiments.run_fig10, experiments.format_fig10, True),
    "fig11": (experiments.run_fig11, experiments.format_fig11, True),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-frontend",
        description=(
            "Regenerate the tables and figures of 'Rebalancing the Core "
            "Front-End through HPC Code Analysis' (IISWC 2016)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run: one of %s, 'all', or 'list'"
        % ", ".join(sorted(_EXPERIMENTS)),
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=experiments.DEFAULT_EXPERIMENT_INSTRUCTIONS,
        help="dynamic trace length per workload (default %(default)s)",
    )
    return parser


def _run_one(name: str, instructions: int) -> str:
    runner, formatter, needs_instructions = _EXPERIMENTS[name]
    if needs_instructions:
        result = runner(instructions=instructions)
    else:
        result = runner()
    return formatter(result)


def main(argv: Optional[list] = None) -> int:
    """Entry point of the ``repro-frontend`` command."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0

    if args.experiment == "all":
        names = sorted(_EXPERIMENTS)
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"expected one of {', '.join(sorted(_EXPERIMENTS))}, 'all', or 'list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    for name in names:
        print(f"== {name} ==")
        print(_run_one(name, args.instructions))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
