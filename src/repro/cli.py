"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro-frontend list
    repro-frontend fig1 [--instructions N]
    repro-frontend table3
    repro-frontend fig10 --parallel
    repro-frontend cmpsweep --scenarios core-scaling,l2-scaling
    repro-frontend all --instructions 100000
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, Optional, Tuple

from repro import experiments

#: Experiment name -> (runner, formatter).  Which optional kwargs a
#: runner accepts (instructions, run_parallel) is detected from its
#: signature, so the drivers own those capabilities.
_EXPERIMENTS: Dict[str, Tuple[Callable, Callable]] = {
    "fig1": (experiments.run_fig01, experiments.format_fig01),
    "fig2": (experiments.run_fig02, experiments.format_fig02),
    "table1": (experiments.run_table1, experiments.format_table1),
    "fig3": (experiments.run_fig03, experiments.format_fig03),
    "fig4": (experiments.run_fig04, experiments.format_fig04),
    "table2": (experiments.run_table2, experiments.format_table2),
    "fig5": (experiments.run_fig05, experiments.format_fig05),
    "fig6": (experiments.run_fig06, experiments.format_fig06),
    "fig7": (experiments.run_fig07, experiments.format_fig07),
    "fig8": (experiments.run_fig08, experiments.format_fig08),
    "fig9": (experiments.run_fig09, experiments.format_fig09),
    "table3": (experiments.run_table3, experiments.format_table3),
    "fig10": (experiments.run_fig10, experiments.format_fig10),
    "fig11": (experiments.run_fig11, experiments.format_fig11),
    "cmpsweep": (experiments.run_cmpsweep, experiments.format_cmpsweep),
}


def _accepts(runner: Callable, parameter: str) -> bool:
    """Whether a runner's signature accepts an optional kwarg."""
    return parameter in inspect.signature(runner).parameters


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-frontend",
        description=(
            "Regenerate the tables and figures of 'Rebalancing the Core "
            "Front-End through HPC Code Analysis' (IISWC 2016)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run: one of %s, 'all', or 'list'"
        % ", ".join(sorted(_EXPERIMENTS)),
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=experiments.DEFAULT_EXPERIMENT_INSTRUCTIONS,
        help="dynamic trace length per workload (default %(default)s)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan the per-workload sweep across worker processes "
        "(experiments that support run_parallel)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker process count for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--scenarios",
        type=str,
        default=None,
        help="comma-separated sweep scenario names "
        "(experiments that accept scenarios, e.g. cmpsweep)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report trace-cache hit/miss counters (memory and disk "
        "layers) after each experiment",
    )
    return parser


def _run_one(
    name: str,
    instructions: int,
    parallel: bool = False,
    processes: Optional[int] = None,
    scenarios: Optional[str] = None,
) -> str:
    runner, formatter = _EXPERIMENTS[name]
    kwargs = {}
    if _accepts(runner, "instructions"):
        kwargs["instructions"] = instructions
    if parallel:
        if _accepts(runner, "run_parallel"):
            kwargs["run_parallel"] = True
            kwargs["processes"] = processes
        else:
            print(
                f"warning: --parallel ignored: experiment {name!r} "
                "has no per-workload sweep to fan out",
                file=sys.stderr,
            )
    if scenarios is not None:
        if _accepts(runner, "scenario_names"):
            kwargs["scenario_names"] = [
                scenario.strip() for scenario in scenarios.split(",") if scenario.strip()
            ]
        else:
            print(
                f"warning: --scenarios ignored: experiment {name!r} "
                "does not take sweep scenarios",
                file=sys.stderr,
            )
    result = runner(**kwargs)
    return formatter(result)


def main(argv: Optional[list] = None) -> int:
    """Entry point of the ``repro-frontend`` command."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.scenarios:
        from repro.uarch.sweep import standard_scenarios

        known = standard_scenarios()
        requested = [s.strip() for s in args.scenarios.split(",") if s.strip()]
        unknown = [s for s in requested if s not in known]
        if unknown:
            parser.error(
                f"unknown sweep scenario(s): {', '.join(unknown)}; "
                f"expected one of {', '.join(sorted(known))}"
            )

    if args.experiment == "list":
        for name in sorted(_EXPERIMENTS):
            print(name)
        return 0

    if args.experiment == "all":
        names = sorted(_EXPERIMENTS)
    elif args.experiment in _EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"expected one of {', '.join(sorted(_EXPERIMENTS))}, 'all', or 'list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    for name in names:
        print(f"== {name} ==")
        before = _cache_counters() if args.verbose else None
        print(
            _run_one(
                name, args.instructions, args.parallel, args.processes, args.scenarios
            )
        )
        if before is not None:
            _report_cache(name, before)
        print()
    return 0


def _cache_counters() -> dict:
    """Snapshot of the process-wide trace and profile cache counters."""
    from repro.experiments.common import trace_cache_info
    from repro.uarch import profile_cache_info

    counters = trace_cache_info()
    profiles = profile_cache_info()
    counters["profile_hits"] = profiles["hits"]
    counters["profile_misses"] = profiles["misses"]
    return counters


def _report_cache(name: str, before: dict) -> None:
    """Print this experiment's trace/profile cache activity.

    The caches are process-wide and cumulative, so the report shows the
    delta against the snapshot taken before the experiment ran.
    """
    from repro.experiments.common import resolved_cache_dir

    after = _cache_counters()
    delta = {key: after[key] - before.get(key, 0) for key in after}
    directory = resolved_cache_dir()
    print(
        f"[{name}] trace cache: {delta['hits']} hits, {delta['misses']} misses, "
        f"{after['entries']} entries in memory; disk layer "
        + (
            f"{directory}: {delta['disk_hits']} hits, "
            f"{delta['disk_misses']} misses, {delta['disk_stores']} stores"
            if directory is not None
            else "disabled"
        )
        + f"; profiles: {delta['profile_hits']} hits, "
        f"{delta['profile_misses']} misses",
        file=sys.stderr,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
