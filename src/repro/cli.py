"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro-frontend list
    repro-frontend fig1 [--instructions N]
    repro-frontend table3
    repro-frontend fig10 --parallel
    repro-frontend cmpsweep --scenarios core-scaling,l2-scaling
    repro-frontend explore --grid frontend --out results/
    repro-frontend all --smoke --parallel --out results/
    repro-frontend all --executor queue --queue-dir /shared/queue
    repro-frontend worker --queue-dir /shared/queue   # on any machine
    repro-frontend serve --port 8757 --queue-dir /shared/queue

Every invocation constructs exactly one :class:`repro.api.Session`
(its :class:`~repro.api.RuntimeConfig` resolved once from the flags
and the ``REPRO_*`` environment) and routes every experiment through
a session plan and the orchestrator
(:mod:`repro.results.orchestrator`): results are looked up in the
content-addressed result store before anything is computed, freshly
computed results are stored for the next invocation, and ``--out``
emits the run as a CSV+JSON manifest directory.  Set
``REPRO_RESULT_CACHE_DIR`` to relocate the store or to ``none`` to
disable the disk layer.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro.experiments import DEFAULT_EXPERIMENT_INSTRUCTIONS


def _build_parser() -> argparse.ArgumentParser:
    from repro.results.orchestrator import registry_names

    parser = argparse.ArgumentParser(
        prog="repro-frontend",
        description=(
            "Regenerate the tables and figures of 'Rebalancing the Core "
            "Front-End through HPC Code Analysis' (IISWC 2016)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment to run: one of %s, 'all', 'list', 'explore' "
        "(design-space exploration over a grid), 'worker' "
        "(serve a durable work queue), or 'serve' (the always-on "
        "HTTP/JSON results service)" % ", ".join(sorted(registry_names())),
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="dynamic trace length per workload (default %d; overrides "
        "--smoke/--full)" % DEFAULT_EXPERIMENT_INSTRUCTIONS,
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short traces for a fast end-to-end pass (CI smoke runs)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full experiment trace length (the default)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        default=None,
        help="fan the per-workload sweeps across worker processes "
        "(default: the REPRO_PARALLEL environment variable)",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker process count for --parallel (default: CPU count)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="per-item retries for transient sweep failures (default: "
        "the REPRO_RETRIES environment variable, else 2)",
    )
    parser.add_argument(
        "--executor",
        type=str,
        default=None,
        help="sweep executor: 'auto' (default), 'serial', 'processes', "
        "'queue' (durable work queue), or a 'module:attribute' entry "
        "point (REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--queue-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="durable work-queue directory for the 'queue' executor and "
        "the 'worker' command (REPRO_QUEUE_DIR)",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="'worker' only: exit after the queue has been idle this "
        "long (default 30)",
    )
    parser.add_argument(
        "--host",
        type=str,
        default=None,
        help="'serve' only: bind address (default REPRO_SERVE_HOST, "
        "else 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="'serve' only: TCP port, 0 for an ephemeral one (default "
        "REPRO_SERVE_PORT, else 8757)",
    )
    parser.add_argument(
        "--grid",
        type=str,
        default=None,
        help="'explore' only: preset grid name (default 'frontend', or "
        "'smoke' when --smoke is passed)",
    )
    parser.add_argument(
        "--scenarios",
        type=str,
        default=None,
        help="comma-separated sweep scenario names "
        "(experiments that accept scenarios, e.g. cmpsweep)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        metavar="DIR",
        help="emit every experiment of this run as CSV+JSON into DIR, "
        "plus a manifest.json index",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when a flag is ignored by every selected "
        "experiment (instead of only warning)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report result-store and trace/profile cache activity "
        "after each experiment",
    )
    return parser


def _resolve_instructions(args: argparse.Namespace) -> Optional[int]:
    """Instruction budget from --instructions/--smoke/--full.

    ``None`` means no budget flag was passed: the session then resolves
    its budget from ``REPRO_INSTRUCTIONS`` or the default, per the
    flags > environment > defaults precedence.  ``--full`` *is* an
    explicit request for the default experiment length.
    """
    from repro.results.orchestrator import SMOKE_INSTRUCTIONS

    if args.instructions is not None:
        return args.instructions
    if args.smoke:
        return SMOKE_INSTRUCTIONS
    if args.full:
        return DEFAULT_EXPERIMENT_INSTRUCTIONS
    return None


def main(argv: Optional[list] = None) -> int:
    """Entry point of the ``repro-frontend`` command."""
    from repro.api.session import Session
    from repro.results.orchestrator import (
        RunReport,
        registry_names,
        unconsumed_flags,
        write_manifest,
    )
    from repro.results.store import enable_shared_result_store
    from repro.workloads.trace_cache import enable_shared_cache

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.smoke and args.full:
        parser.error("--smoke and --full are mutually exclusive")

    scenario_names = None
    if args.scenarios:
        from repro.uarch.sweep import standard_scenarios

        known = standard_scenarios()
        scenario_names = [s.strip() for s in args.scenarios.split(",") if s.strip()]
        unknown = [s for s in scenario_names if s not in known]
        if unknown:
            parser.error(
                f"unknown sweep scenario(s): {', '.join(unknown)}; "
                f"expected one of {', '.join(sorted(known))}"
            )

    if args.experiment == "list":
        for name in sorted(registry_names()):
            print(name)
        return 0

    if args.experiment == "worker":
        # A cooperating queue worker: claims items from campaigns under
        # the queue directory until the queue stays idle.  Any number
        # may run, on any machine that mounts the directory; a worker
        # started after a crash resumes exactly where the queue stands.
        from repro.api import runtime_config
        from repro.exec.queue import serve_queue

        queue_dir = args.queue_dir or runtime_config.current_queue_dir()
        if queue_dir is None:
            parser.error("'worker' requires --queue-dir (or REPRO_QUEUE_DIR)")
        enable_shared_result_store()
        enable_shared_cache()
        counters = serve_queue(queue_dir, max_idle=args.max_idle)
        print(
            f"worker idle, exiting: {counters['completed']} completed, "
            f"{counters['reclaims']} lease reclaims, "
            f"{counters['duplicates']} duplicates, "
            f"{counters['conflicts']} conflicts, "
            f"{counters['poisoned']} poisoned",
            file=sys.stderr,
        )
        return 0

    if args.experiment == "serve":
        # The always-on results service: warm requests are served from
        # the shared store; misses become interactive-priority queue
        # items for external 'worker' processes to drain.
        from repro.api import runtime_config
        from repro.api.runtime_config import RuntimeConfig
        from repro.serve import ResultsServer, run_server

        queue_dir = args.queue_dir or runtime_config.current_queue_dir()
        if queue_dir is None:
            parser.error("'serve' requires --queue-dir (or REPRO_QUEUE_DIR)")
        enable_shared_result_store()
        overrides = _session_overrides(args)
        if args.host is not None:
            overrides["serve_host"] = args.host
        if args.port is not None:
            overrides["serve_port"] = args.port
        config = RuntimeConfig.from_environment(**overrides)
        return run_server(ResultsServer(config=config, queue_dir=queue_dir))

    if args.experiment == "explore":
        return _run_explore(args, parser)

    if args.experiment == "all":
        names = registry_names()
    elif args.experiment in registry_names():
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment {args.experiment!r}; "
            f"expected one of {', '.join(sorted(registry_names()))}, "
            "'all', or 'list'"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit

    if args.instructions is not None:
        budget_flag: Optional[str] = "--instructions"
    elif args.smoke:
        budget_flag = "--smoke"
    elif args.full:
        budget_flag = "--full"
    else:
        budget_flag = None
    ignored = unconsumed_flags(names, args.parallel, scenario_names, budget_flag)
    for flag in ignored:
        print(
            f"warning: {flag} ignored: not consumed by {', '.join(names)}",
            file=sys.stderr,
        )
    if ignored and args.strict:
        print(
            "error: --strict run with ignored flag(s): " + ", ".join(ignored),
            file=sys.stderr,
        )
        return 2

    overrides = _session_overrides(args)
    # Default the shared result store into the environment first (so
    # worker and later processes inherit it, the historical contract),
    # then freeze the run's one Session, resolved exactly once.  A
    # parallel run also exports the shared trace directory; the session
    # already resolved the same directory for itself (parallel
    # auto-defaults it), so the export is purely for later processes.
    enable_shared_result_store()
    session = Session(**overrides)
    if session.config.parallel:
        enable_shared_cache()
    instructions = session.config.instructions

    # Experiments run one plan at a time so output streams
    # incrementally; the registry order already places dependencies
    # (fig10) before their dependents (fig11), and every completed
    # experiment lands in the result store immediately, so an
    # interrupted `all` run resumes where it died.
    from repro.exec import SweepError

    combined = RunReport(instructions=instructions)
    for name in names:
        before = _cache_counters() if args.verbose else None
        plan = session.experiment(name, scenario_names=scenario_names)
        try:
            report = plan.report()
        except SweepError as error:
            # A sweep with permanently failed items: show the
            # structured failure report instead of a worker traceback.
            # Completed items are checkpointed, so a rerun replays them
            # and recomputes only what is missing.
            print(f"error: {name} failed:\n{error}", file=sys.stderr)
            return 1
        outcome = report.outcome(name)
        combined.outcomes.append(outcome)
        print(f"== {name} ==")
        print(_render_artifact(outcome.artifact))
        if before is not None:
            _report_experiment(outcome, before)
        print()

    if args.verbose:
        counts = combined.counts()
        print(
            f"[{args.experiment}] result store: {counts['computed']} computed, "
            f"{counts['derived']} derived, {counts['cached']} served from store",
            file=sys.stderr,
        )
    if args.out is not None:
        manifest_path = write_manifest(combined, args.out)
        print(f"manifest: {manifest_path}", file=sys.stderr)
    return 0


def _session_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """Explicit RuntimeConfig overrides from the flags actually passed.

    Only flags the user actually passed become explicit overrides, so
    the flags > environment > defaults precedence holds: an omitted
    ``--parallel`` still honours ``REPRO_PARALLEL``, an omitted budget
    flag still honours ``REPRO_INSTRUCTIONS``.
    """
    overrides: Dict[str, object] = {}
    if args.parallel is not None:
        overrides["parallel"] = args.parallel
    if args.processes is not None:
        overrides["processes"] = args.processes
    if args.retries is not None:
        overrides["retries"] = args.retries
    if args.executor is not None:
        overrides["executor"] = args.executor
    if args.queue_dir is not None:
        overrides["queue_dir"] = args.queue_dir
    explicit_instructions = _resolve_instructions(args)
    if explicit_instructions is not None:
        overrides["instructions"] = explicit_instructions
    return overrides


def _run_explore(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``explore`` subcommand: run a preset grid, emit its frames.

    Grid chunks are served from the content-addressed result store when
    present (a warm rerun computes nothing and reports ``cached``), and
    ``--out`` writes the same manifest-style artifact directory the
    experiment runs emit.
    """
    from repro.api.session import Session
    from repro.exec import SweepError
    from repro.experiments.common import render_blocks
    from repro.explore.grid import GRID_PRESETS, get_grid
    from repro.results.orchestrator import ExperimentOutcome, RunReport, write_manifest
    from repro.results.store import enable_shared_result_store
    from repro.workloads.trace_cache import enable_shared_cache

    if args.scenarios:
        print(
            "warning: --scenarios ignored: not consumed by explore",
            file=sys.stderr,
        )
        if args.strict:
            print(
                "error: --strict run with ignored flag(s): --scenarios",
                file=sys.stderr,
            )
            return 2
    preset = args.grid or ("smoke" if args.smoke else "frontend")
    if preset not in GRID_PRESETS:
        parser.error(
            f"unknown grid preset {preset!r}; "
            f"expected one of {', '.join(sorted(GRID_PRESETS))}"
        )
    grid = get_grid(preset)

    enable_shared_result_store()
    session = Session(**_session_overrides(args))
    if session.config.parallel:
        enable_shared_cache()
    plan = session.explore(grid)
    try:
        result = plan.result()
    except SweepError as error:
        print(f"error: explore failed:\n{error}", file=sys.stderr)
        return 1
    print(f"== explore[{preset}] ==")
    print(render_blocks(result.tables()))
    status = "cached" if result.chunks_computed == 0 else "computed"
    print(
        f"[explore] {status}: {result.points} grid points x "
        f"{len(result.workloads)} workloads; chunks: {result.chunks_total} "
        f"total, {result.chunks_cached} cached, {result.chunks_computed} "
        "computed",
        file=sys.stderr,
    )
    if args.out is not None:
        from repro.results.artifacts import build_frame_artifact

        artifact = build_frame_artifact(
            "explore",
            f"design-space exploration of the {preset!r} grid",
            result.tables(),
            result,
        )
        report = RunReport(instructions=session.config.instructions)
        report.outcomes.append(
            ExperimentOutcome(
                name="explore",
                title=artifact["title"],
                key=plan.journal_scope(),
                status=status,
                artifact=artifact,
            )
        )
        manifest_path = write_manifest(report, args.out)
        print(f"manifest: {manifest_path}", file=sys.stderr)
    return 0


def _render_artifact(artifact: dict) -> str:
    """Render a (possibly store-served) artifact the way format_* does."""
    from repro.experiments.common import render_blocks
    from repro.results.artifacts import artifact_blocks

    return render_blocks(artifact_blocks(artifact))


def _cache_counters() -> Dict[str, Dict[str, int]]:
    """Snapshot of every registered cache's counters."""
    from repro.workloads.trace_cache import all_cache_stats

    return all_cache_stats()


def _report_experiment(outcome, before: Dict[str, Dict[str, int]]) -> None:
    """Print one experiment's store status and cache activity.

    The caches are process-wide and cumulative, so the report shows the
    delta against the snapshot taken before the experiment ran.
    """
    from repro.experiments.common import resolved_cache_dir
    from repro.results.store import resolved_result_dir

    after = _cache_counters()
    deltas: Dict[str, Dict[str, int]] = {}
    for cache, counters in after.items():
        previous = before.get(cache, {})
        deltas[cache] = {
            key: value - previous.get(key, 0)
            for key, value in counters.items()
            if key != "entries"
        }
    traces = deltas.get("traces", {})
    profiles = deltas.get("profiles", {})
    results = deltas.get("results", {})
    trace_dir = resolved_cache_dir()
    result_dir = resolved_result_dir()
    print(
        f"[{outcome.name}] {outcome.status} (key {outcome.key[:12]}); "
        f"result store {result_dir if result_dir else 'memory-only'}: "
        f"{results.get('hits', 0)} hits, {results.get('disk_hits', 0)} disk hits, "
        f"{results.get('disk_stores', 0)} disk stores; "
        f"traces: {traces.get('hits', 0)} hits, {traces.get('misses', 0)} misses"
        + (
            f", disk {trace_dir}: {traces.get('disk_hits', 0)} hits, "
            f"{traces.get('disk_stores', 0)} stores"
            if trace_dir is not None
            else ""
        )
        + f"; profiles: {profiles.get('hits', 0)} hits, "
        f"{profiles.get('misses', 0)} misses",
        file=sys.stderr,
    )
    # Execution-layer activity (sweep journal, queue leases, CAS):
    # silent on a plain serial run, one extra line when anything moved.
    journal = deltas.get("journal", {})
    lease_counts = deltas.get("leases", {})
    queue = deltas.get("queue", {})
    extras = []
    if any(journal.values()):
        extras.append(
            f"journal: {journal.get('records', 0)} records, "
            f"{journal.get('replays', 0)} replays, "
            f"{journal.get('quarantined', 0)} quarantined"
        )
    if any(lease_counts.values()):
        extras.append(
            f"leases: {lease_counts.get('acquired', 0)} acquired, "
            f"{lease_counts.get('reclaimed', 0)} reclaimed, "
            f"{lease_counts.get('lost', 0)} lost"
        )
    if any(queue.values()):
        extras.append(
            f"queue: {queue.get('enqueued', 0)} enqueued, "
            f"{queue.get('completed', 0)} completed, "
            f"{queue.get('reclaims', 0)} reclaims, "
            f"{queue.get('duplicates', 0)} duplicates, "
            f"{queue.get('conflicts', 0)} conflicts, "
            f"{queue.get('poisoned', 0)} poisoned"
        )
    cas = {
        key: results.get(key, 0)
        for key in ("cas_stores", "cas_identical", "cas_conflicts")
    }
    if any(cas.values()):
        extras.append(
            f"result CAS: {cas['cas_stores']} stored, "
            f"{cas['cas_identical']} identical, "
            f"{cas['cas_conflicts']} conflicts"
        )
    if extras:
        print(f"[{outcome.name}] " + "; ".join(extras), file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
