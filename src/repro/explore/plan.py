"""The exploration plan: a grid compiled onto the batched engines.

:class:`ExplorePlan` is the third implementation of the
:class:`~repro.api.plan.Plan` protocol (after the front-end sweep and
the experiment plan): it evaluates every point of a
:class:`~repro.explore.grid.GridSpec` over a workload selection and
yields one columnar grid frame plus the Pareto-frontier and per-axis
sensitivity views derived from it.

Execution strategy
------------------
The grid is split into fixed-size *chunks* of points; each (workload,
chunk) pair is one unit of work:

* A chunk's result is content-addressed in the result store
  (:func:`repro.results.store.result_key` over the chunk's full
  configuration dicts, the workload, the seed, and the session's
  semantic runtime), so an interrupted exploration resumes by replaying
  stored chunks and computing only the missing grid points -- across
  processes and machines sharing the store.
* Missing chunks run through :meth:`repro.api.session.Session.map`
  under a plan-scoped checkpoint journal, so they inherit the
  supervised executors (``--parallel`` pools, the durable ``queue``
  executor for fleet-scale grids) and mid-sweep kill/resume.
* Inside a chunk every front-end configuration shares one decoded
  trace via the batched
  :func:`repro.frontend.simulation.simulate_frontend_many` engine
  (respectively one cached workload profile for CMP grids), which is
  what makes thousands of configs per workload cheap.

Static per-point columns (area, power) are pure arithmetic and are
recomputed at assembly time rather than stored.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.frame import ResultFrame
from repro.api.plan import Plan, PlanOutcome
from repro.experiments.common import FrameResult, PayloadField, RowView
from repro.explore.grid import GridPoint, GridSpec
from repro.explore.pareto import ParetoFrontier
from repro.explore.sensitivity import sensitivity_frame
from repro.trace.instruction import CodeSection
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace_cache import workload_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.api.session import Session

#: Workloads an exploration runs over by default: the Figure 11
#: representative HPC/desktop mix (mirrors ``cmpsweep``), keeping
#: thousand-point grids tractable; pass ``workloads=`` for breadth.
DEFAULT_EXPLORE_WORKLOADS = ("CoEVP", "CoMD", "fma3d", "FT", "h264ref", "gobmk")

#: Grid points per stored chunk (the resume granularity).
DEFAULT_CHUNK_POINTS = 64

#: Store namespace of the per-chunk artifacts.
EXPLORE_CHUNK_EXPERIMENT = "explore-chunk"

#: Metric columns of the grid frame, per grid kind.
FRONTEND_METRICS = (
    "branch_mpki",
    "btb_mpki",
    "icache_mpki",
    "total_mpki",
    "area_mm2",
    "power_w",
)
CMP_METRICS = ("time_s", "power_w", "energy_j", "area_mm2")

#: Default Pareto objectives per grid kind (all minimized).
DEFAULT_OBJECTIVES = {
    "frontend": ("area_mm2", "power_w", "total_mpki"),
    "cmp": ("area_mm2", "power_w", "time_s"),
}

#: Columns of the per-chunk worker rows, per grid kind.
_CHUNK_COLUMNS = {
    "frontend": ("section", "point", "branch_mpki", "btb_mpki", "icache_mpki"),
    "cmp": ("point", "time_s", "power_w", "energy_j"),
}


def _frontend_chunk_worker(args) -> List[List[Any]]:
    """Per-(workload, chunk) worker: every config over one shared trace."""
    spec, instructions, seed, configs, sections = args
    trace = workload_trace(spec, instructions, seed=seed)
    from repro.frontend.simulation import simulate_frontend_many

    results = simulate_frontend_many(trace, configs, sections)
    rows: List[List[Any]] = []
    for section in sections:
        for config in configs:
            result = results[(config.name, section)]
            rows.append(
                [
                    section.name,
                    config.name,
                    result.branch.mpki,
                    result.btb.mpki,
                    result.icache.mpki,
                ]
            )
    return rows


def _cmp_chunk_worker(args) -> List[List[Any]]:
    """Per-(workload, chunk) worker: every chip over one cached profile."""
    spec, instructions, cmps = args
    from repro.power.cmp_power import evaluate_cmp_energy
    from repro.uarch.simulator import profile_workload_frontend, run_on_cmp

    profile = profile_workload_frontend(spec, instructions)
    rows: List[List[Any]] = []
    for cmp in cmps:
        run = run_on_cmp(profile, cmp)
        energy = evaluate_cmp_energy(run)
        rows.append(
            [cmp.name, run.execution_seconds, energy.average_power_w, energy.energy_j]
        )
    return rows


def _chunk_artifact(columns: Sequence[str], rows: Sequence[Sequence[Any]]) -> Dict:
    """The stored form of one chunk: a minimal frame-native artifact."""
    from repro.results.artifacts import ARTIFACT_SCHEMA_VERSION, to_jsonable

    frame = ResultFrame.from_rows(columns, rows)
    return {
        "schema": ARTIFACT_SCHEMA_VERSION,
        "experiment": EXPLORE_CHUNK_EXPERIMENT,
        "title": "exploration grid chunk",
        "tables": [],
        "primary": "chunk",
        "frames": {"chunk": to_jsonable(frame.to_payload())},
        "payload": [],
    }


def _chunk_rows(artifact: Dict) -> List[List[Any]]:
    """Rows back out of a stored chunk artifact."""
    frame = ResultFrame.from_payload(artifact["frames"]["chunk"])
    return [list(row) for row in frame.data]


def _cell(value: Any) -> str:
    """Table-cell formatter shared by the exploration views."""
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


@dataclass
class ExploreResult(FrameResult):
    """The frames of one executed exploration.

    ``grid`` (primary)
        One row per (workload, [section,] point): the point's axis
        values and metrics.
    ``pareto``
        The non-dominated grid rows, per workload (and section).
    ``sensitivity``
        Per (axis, value, metric) mean/min/max over the grid.
    """

    kind: str
    instructions: int
    points: int
    workloads: List[str] = field(default_factory=list)
    objectives: List[str] = field(default_factory=list)
    chunks_total: int = 0
    chunks_cached: int = 0
    chunks_computed: int = 0
    frames: Dict[str, ResultFrame] = field(default_factory=dict)

    PRIMARY = "grid"
    PAYLOAD = (
        PayloadField.scalar("kind"),
        PayloadField.scalar("instructions"),
        PayloadField.scalar("points"),
        PayloadField.scalar("workloads"),
        PayloadField.scalar("objectives"),
    )

    def views(self) -> Sequence[RowView]:
        rendered = []
        for name, title in (
            (
                "pareto",
                f"Pareto frontier over {tuple(self.objectives)} "
                f"({self.points} grid points)",
            ),
            ("sensitivity", "per-axis sensitivity (mean/min/max over the grid)"),
        ):
            frame = self.frames.get(name)
            if frame is None:
                continue
            rendered.append(
                RowView(
                    frame=name,
                    columns=tuple(
                        (column, column, _cell) for column in frame.columns
                    ),
                    title=title,
                    name=name,
                )
            )
        return tuple(rendered)


@dataclass(frozen=True)
class ExplorePlan(Plan):
    """grid points x workloads -> grid/pareto/sensitivity frames.

    Build through :meth:`repro.api.session.Session.explore`; nothing
    runs until :meth:`execute` (or :meth:`result` for the full
    multi-frame result).
    """

    session: "Session"
    grid: GridSpec
    workloads: Tuple[WorkloadSpec, ...]
    sections: Tuple[CodeSection, ...]
    instructions: int
    seed: int = 0
    chunk_points: int = DEFAULT_CHUNK_POINTS
    objectives: Tuple[str, ...] = ()
    use_store: bool = True

    def __post_init__(self) -> None:
        if not self.workloads:
            raise ValueError("an exploration needs at least one workload")
        if self.chunk_points < 1:
            raise ValueError("chunk_points must be positive")
        metrics = FRONTEND_METRICS if self.grid.kind == "frontend" else CMP_METRICS
        for objective in self.objectives:
            if objective not in metrics:
                raise KeyError(
                    f"unknown objective {objective!r} for a {self.grid.kind} "
                    f"grid; expected a subset of {metrics}"
                )

    # -- description -------------------------------------------------

    @property
    def metrics(self) -> Tuple[str, ...]:
        """The metric columns this plan's grid frame carries."""
        return FRONTEND_METRICS if self.grid.kind == "frontend" else CMP_METRICS

    @property
    def resolved_objectives(self) -> Tuple[str, ...]:
        """The Pareto objectives (the kind's default unless overridden)."""
        return self.objectives or DEFAULT_OBJECTIVES[self.grid.kind]

    def describe(self) -> Dict[str, Any]:
        return {
            "kind": "explore",
            "grid": self.grid.describe(),
            "workloads": [spec.name for spec in self.workloads],
            "sections": [section.name for section in self.sections],
            "instructions": self.instructions,
            "seed": self.seed,
            "chunk_points": self.chunk_points,
            "objectives": list(self.resolved_objectives),
            "use_store": self.use_store,
            "runtime": self.session.config.describe(),
        }

    # -- content addressing ------------------------------------------

    def _section_names(self) -> List[str]:
        if self.grid.kind != "frontend":
            return [CodeSection.TOTAL.name]
        return [section.name for section in self.sections]

    def chunk_key(self, spec: WorkloadSpec, chunk: Sequence[GridPoint]) -> str:
        """Content-address of one (workload, chunk) result.

        Keyed over the chunk's *complete* configuration dicts (not the
        axis values), so a change to how a point compiles -- defaults,
        naming, geometry derivation -- can never reuse a stale entry.
        """
        from repro.results.store import result_key

        return result_key(
            EXPLORE_CHUNK_EXPERIMENT,
            {
                "grid_kind": self.grid.kind,
                "points": [dataclasses.asdict(point.config) for point in chunk],
                "sections": self._section_names(),
                "instructions": self.instructions,
            },
            [spec.name],
            seed=self.seed,
            runtime=self.session.config.semantic(),
        )

    def journal_scope(self) -> str:
        """Checkpoint scope of the whole exploration (mid-sweep resume)."""
        from repro.results.store import result_key

        return result_key(
            "explore-plan",
            {
                "grid": self.grid.describe(),
                "sections": self._section_names(),
                "instructions": self.instructions,
                "chunk_points": self.chunk_points,
            },
            [spec.name for spec in self.workloads],
            seed=self.seed,
            runtime=self.session.config.semantic(),
        )

    # -- execution ---------------------------------------------------

    def _chunks(self, points: Sequence[GridPoint]) -> List[Tuple[GridPoint, ...]]:
        return [
            tuple(points[start : start + self.chunk_points])
            for start in range(0, len(points), self.chunk_points)
        ]

    def _worker_arguments(self, spec: WorkloadSpec, chunk: Sequence[GridPoint]):
        configs = tuple(point.config for point in chunk)
        if self.grid.kind == "frontend":
            return (spec, self.instructions, self.seed, configs, self.sections)
        return (spec, self.instructions, configs)

    def result(self) -> ExploreResult:
        """Run the exploration and return every derived frame."""
        from repro.results.store import load_result, store_result_cas

        points = self.grid.points()
        if not points:
            raise ValueError("the grid compiled to zero points")
        chunks = self._chunks(points)
        columns = _CHUNK_COLUMNS[self.grid.kind]
        worker = (
            _frontend_chunk_worker
            if self.grid.kind == "frontend"
            else _cmp_chunk_worker
        )
        chunk_rows: Dict[Tuple[str, int], List[List[Any]]] = {}
        with self.session.activate():
            missing: List[Tuple[str, int, str]] = []
            arguments = []
            for spec in self.workloads:
                for index, chunk in enumerate(chunks):
                    key = self.chunk_key(spec, chunk)
                    artifact = (
                        load_result(key, EXPLORE_CHUNK_EXPERIMENT)
                        if self.use_store
                        else None
                    )
                    if artifact is not None:
                        chunk_rows[(spec.name, index)] = _chunk_rows(artifact)
                    else:
                        missing.append((spec.name, index, key))
                        arguments.append(self._worker_arguments(spec, chunk))
            if arguments:
                needed = {name for name, _, _ in missing}
                prime = [
                    (spec, self.instructions, self.seed)
                    for spec in self.workloads
                    if spec.name in needed
                ]
                results = self.session.map(
                    worker,
                    arguments,
                    prime=prime,
                    journal_scope=self.journal_scope(),
                )
                for (name, index, key), rows in zip(missing, results):
                    rows = [list(row) for row in rows]
                    if self.use_store:
                        _, winner = store_result_cas(
                            key,
                            _chunk_artifact(columns, rows),
                            EXPLORE_CHUNK_EXPERIMENT,
                        )
                        rows = _chunk_rows(winner)
                    chunk_rows[(name, index)] = rows
        grid_frame = self._assemble(points, chunks, chunk_rows)
        frontier = ParetoFrontier.from_frame(
            grid_frame,
            self.resolved_objectives,
            group_by=(
                ("workload", "section")
                if self.grid.kind == "frontend"
                else ("workload",)
            ),
        )
        sensitivity = sensitivity_frame(
            grid_frame, self.grid.axis_names, self.metrics
        )
        return ExploreResult(
            kind=self.grid.kind,
            instructions=self.instructions,
            points=len(points),
            workloads=[spec.name for spec in self.workloads],
            objectives=list(self.resolved_objectives),
            chunks_total=len(chunks) * len(self.workloads),
            chunks_cached=len(chunks) * len(self.workloads) - len(missing),
            chunks_computed=len(missing),
            frames={
                "grid": grid_frame,
                "pareto": frontier.frame,
                "sensitivity": sensitivity,
            },
        )

    def _assemble(
        self,
        points: Sequence[GridPoint],
        chunks: Sequence[Tuple[GridPoint, ...]],
        chunk_rows: Dict[Tuple[str, int], List[List[Any]]],
    ) -> ResultFrame:
        """The grid frame: chunk metrics joined with static point columns."""
        axis_names = self.grid.axis_names
        if self.grid.kind == "frontend":
            from repro.power.core_power import frontend_area_power

            static = {}
            for point in points:
                budget = frontend_area_power(point.config)
                static[point.name] = (budget.total_area_mm2, budget.total_power_w)
            columns = (
                ("workload", "section", "point")
                + axis_names
                + FRONTEND_METRICS
            )
            rows = []
            for spec in self.workloads:
                measured: Dict[Tuple[str, str], List[Any]] = {}
                for index in range(len(chunks)):
                    for row in chunk_rows[(spec.name, index)]:
                        measured[(row[0], row[1])] = row[2:]
                for section in self.sections:
                    for point in points:
                        branch, btb, icache = measured[(section.name, point.name)]
                        area, power = static[point.name]
                        rows.append(
                            [spec.name, section.name, point.name]
                            + [value for _, value in point.values]
                            + [branch, btb, icache, branch + btb + icache]
                            + [area, power]
                        )
            return ResultFrame.from_rows(columns, rows)

        from repro.power.cmp_power import cmp_area_mm2

        areas = {point.name: cmp_area_mm2(point.config) for point in points}
        columns = ("workload", "point") + axis_names + CMP_METRICS
        rows = []
        for spec in self.workloads:
            measured = {}
            for index in range(len(chunks)):
                for row in chunk_rows[(spec.name, index)]:
                    measured[row[0]] = row[1:]
            for point in points:
                time_s, power_w, energy_j = measured[point.name]
                rows.append(
                    [spec.name, point.name]
                    + [value for _, value in point.values]
                    + [time_s, power_w, energy_j, areas[point.name]]
                )
        return ResultFrame.from_rows(columns, rows)

    # -- the Plan protocol -------------------------------------------

    def execute(self) -> ResultFrame:
        """Run the exploration and return the grid frame."""
        return self.result().frames["grid"]

    def frame(self) -> ResultFrame:
        """The grid frame (alias of :meth:`execute`)."""
        return self.execute()

    def outcome(self) -> PlanOutcome:
        """Execute and summarize: status, store key, chunk accounting."""
        result = self.result()
        status = "cached" if result.chunks_computed == 0 else "computed"
        return PlanOutcome(
            kind="explore",
            key=self.journal_scope(),
            status=status,
            frame=result.frames["grid"],
            details={
                "points": result.points,
                "chunks_total": result.chunks_total,
                "chunks_cached": result.chunks_cached,
                "chunks_computed": result.chunks_computed,
            },
        )
