"""Declarative design-space exploration.

``explore`` turns a declarative :class:`GridSpec` -- axes over
predictor budgets, BTB/I-cache geometries, core counts, CMP mixes, and
L2 slice sizes, cross-producted with constraint filters -- into a
columnar grid of measurements, compiled onto the batched simulation
engines so thousands of configurations per workload share one decoded
instruction stream.  The usual entry point is
:meth:`repro.api.session.Session.explore`, which returns an
:class:`ExplorePlan`; :func:`pareto_frontier` and
:func:`sensitivity_frame` post-process the resulting frames.
"""

from repro.explore.grid import (
    GRID_PRESETS,
    Axis,
    GridPoint,
    GridSpec,
    cmp_exploration_grid,
    frontend_grid,
    get_grid,
    smoke_grid,
)
from repro.explore.pareto import ParetoFrontier, pareto_frontier, pareto_mask
from repro.explore.plan import (
    DEFAULT_EXPLORE_WORKLOADS,
    ExplorePlan,
    ExploreResult,
)
from repro.explore.sensitivity import sensitivity_frame, sensitivity_summary

__all__ = [
    "Axis",
    "DEFAULT_EXPLORE_WORKLOADS",
    "ExplorePlan",
    "ExploreResult",
    "GRID_PRESETS",
    "GridPoint",
    "GridSpec",
    "ParetoFrontier",
    "cmp_exploration_grid",
    "frontend_grid",
    "get_grid",
    "pareto_frontier",
    "pareto_mask",
    "sensitivity_frame",
    "sensitivity_summary",
    "smoke_grid",
]
