"""Declarative design-space grids: axes -> cross product -> configs.

A :class:`GridSpec` names the *axes* of a design space (predictor
family/budget, BTB and I-cache geometries for the front-end; core
counts, core mixes, and L2 slice sizes for whole chips) and compiles
their cross product into the concrete configuration objects the batched
engines consume -- :class:`~repro.frontend.configs.FrontEndConfig` for
``kind="frontend"`` grids, :class:`~repro.uarch.cmp.CmpConfig` for
``kind="cmp"`` grids.  Compilation is pure and deterministic: the same
spec always yields the same points in the same order, which is what
lets :class:`~repro.explore.plan.ExplorePlan` content-address each grid
chunk in the result store.

Constraints are plain predicates over the point's axis-value dict,
applied before configuration building::

    grid = GridSpec.frontend(
        predictor_budget=("small", "big"),
        btb_entries=(256, 512, 1024, 2048),
        constraints=(lambda p: p["btb_entries"] >= 512 or p["predictor_budget"] == "small",),
    )

The ``cmp`` kind reproduces the semantics of the historical
:func:`repro.uarch.sweep.cmp_grid` exactly: the axis nesting is
``l2_kb x cores x mix``, mixes that do not exist at a core count are
skipped, and identical chips reachable through two mixes are emitted
once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import reduce
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.frontend.configs import (
    BranchPredictorConfig,
    BTBConfig,
    FrontEndConfig,
    ICacheConfig,
)
from repro.frontend.predictors.factory import (
    PREDICTOR_BUDGETS,
    PREDICTOR_KINDS,
    STATIC_PREDICTOR_KINDS,
)
from repro.uarch.sweep import mix_config

#: The grid kinds a spec may compile to.
GRID_KINDS = ("frontend", "cmp")

#: Front-end axes in canonical order, with the baseline value each axis
#: takes when a grid does not sweep it.
FRONTEND_AXIS_DEFAULTS: "Dict[str, Any]" = {
    "predictor_kind": "tournament",
    "predictor_budget": "big",
    "predictor_loop": False,
    "btb_entries": 2048,
    "btb_associativity": 4,
    "icache_kb": 32,
    "icache_line_bytes": 64,
    "icache_associativity": 4,
}

#: CMP axes in canonical (nesting) order; matches the historical
#: ``cmp_grid`` iteration ``l2 x count x mix``.
CMP_AXIS_ORDER = ("l2_kb", "cores", "mix")


@dataclass(frozen=True)
class Axis:
    """One named dimension of a grid: the values it sweeps, in order."""

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"axis {self.name!r} has duplicate values")


@dataclass(frozen=True)
class GridPoint:
    """One compiled point: its axis values and the built configuration.

    ``name`` is unique within the grid (it encodes every swept
    parameter) and doubles as the configuration's name, which is how
    the batched engines key their per-config results.
    """

    name: str
    values: Tuple[Tuple[str, Any], ...]
    config: Any

    def parameters(self) -> Dict[str, Any]:
        """The point's axis values as a plain dict."""
        return dict(self.values)


@dataclass(frozen=True)
class GridSpec:
    """A declarative design-space grid over named axes.

    ``kind`` selects the configuration family (``"frontend"`` or
    ``"cmp"``); ``axes`` are swept in order (the first axis is the
    outermost product loop); ``constraints`` filter points before any
    configuration is built.  Build specs through the
    :meth:`frontend` / :meth:`cmp` constructors, which validate axis
    names and fix the canonical axis order.
    """

    kind: str
    axes: Tuple[Axis, ...]
    constraints: Tuple[Callable[[Dict[str, Any]], bool], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in GRID_KINDS:
            raise ValueError(
                f"unknown grid kind {self.kind!r}; expected one of {GRID_KINDS}"
            )
        if not self.axes:
            raise ValueError("a grid needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate grid axes: {names}")
        known = (
            tuple(FRONTEND_AXIS_DEFAULTS) if self.kind == "frontend" else CMP_AXIS_ORDER
        )
        unknown = [name for name in names if name not in known]
        if unknown:
            raise ValueError(
                f"unknown {self.kind} axis name(s) {', '.join(unknown)}; "
                f"expected a subset of {known}"
            )

    # -- construction ------------------------------------------------

    @classmethod
    def frontend(
        cls,
        name: str = "",
        constraints: Sequence[Callable[[Dict[str, Any]], bool]] = (),
        **axes: Sequence[Any],
    ) -> "GridSpec":
        """A front-end grid; keyword arguments name the swept axes.

        Axes follow the canonical order of
        :data:`FRONTEND_AXIS_DEFAULTS` regardless of keyword order;
        unswept parameters take their baseline value at compile time.
        """
        ordered = tuple(
            Axis(axis_name, tuple(axes[axis_name]))
            for axis_name in FRONTEND_AXIS_DEFAULTS
            if axis_name in axes
        )
        unknown = set(axes) - set(FRONTEND_AXIS_DEFAULTS)
        if unknown:
            raise ValueError(
                f"unknown front-end axis name(s) {', '.join(sorted(unknown))}; "
                f"expected a subset of {tuple(FRONTEND_AXIS_DEFAULTS)}"
            )
        return cls(
            kind="frontend", axes=ordered, constraints=tuple(constraints), name=name
        )

    @classmethod
    def cmp(
        cls,
        cores: Sequence[int],
        mixes: Sequence[str] = ("baseline", "tailored", "asymmetric"),
        l2_kb: Sequence[int] = (256,),
        name: str = "",
        constraints: Sequence[Callable[[Dict[str, Any]], bool]] = (),
    ) -> "GridSpec":
        """A CMP grid over core counts, core mixes, and L2 slice sizes.

        The axis nesting is fixed to the historical ``l2 x count x
        mix`` order, so a spec-compiled grid is bit-identical to the
        legacy :func:`repro.uarch.sweep.cmp_grid` product.
        """
        return cls(
            kind="cmp",
            axes=(
                Axis("l2_kb", tuple(l2_kb)),
                Axis("cores", tuple(cores)),
                Axis("mix", tuple(mixes)),
            ),
            constraints=tuple(constraints),
            name=name,
        )

    # -- inspection --------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        """The swept axis names, in nesting order."""
        return tuple(axis.name for axis in self.axes)

    @property
    def size(self) -> int:
        """The raw cross-product size, before constraints and dedup."""
        return reduce(lambda total, axis: total * len(axis.values), self.axes, 1)

    def describe(self) -> Dict[str, Any]:
        """Plain-dict description (axes and their values, in order)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "axes": {axis.name: list(axis.values) for axis in self.axes},
            "constraints": len(self.constraints),
        }

    # -- compilation -------------------------------------------------

    def points(self) -> Tuple[GridPoint, ...]:
        """Compile the grid: the surviving points, in product order.

        Points a constraint rejects are dropped; ``cmp`` points whose
        mix does not exist at the core count are skipped and identical
        chips reachable through two mixes are emitted once (first
        occurrence wins, keeping its axis values), exactly like the
        historical ``cmp_grid``.
        """
        build = _frontend_point if self.kind == "frontend" else _cmp_point
        points = []
        seen = set()
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            values = tuple(zip(self.axis_names, combo))
            parameters = dict(values)
            if not all(constraint(parameters) for constraint in self.constraints):
                continue
            point = build(values, parameters)
            if point is None or point.config in seen:
                continue
            seen.add(point.config)
            points.append(point)
        return tuple(points)

    def configs(self) -> Tuple[Any, ...]:
        """The compiled configuration objects, in point order."""
        return tuple(point.config for point in self.points())


def _frontend_point(
    values: Tuple[Tuple[str, Any], ...], parameters: Mapping[str, Any]
) -> GridPoint:
    merged = dict(FRONTEND_AXIS_DEFAULTS)
    merged.update(parameters)
    kind = merged["predictor_kind"]
    if kind not in PREDICTOR_KINDS + STATIC_PREDICTOR_KINDS:
        raise ValueError(
            f"unknown predictor_kind {kind!r}; expected one of "
            f"{PREDICTOR_KINDS + STATIC_PREDICTOR_KINDS}"
        )
    budget = merged["predictor_budget"]
    if budget not in PREDICTOR_BUDGETS:
        raise ValueError(
            f"unknown predictor_budget {budget!r}; expected one of "
            f"{PREDICTOR_BUDGETS}"
        )
    name = _frontend_point_name(merged)
    config = FrontEndConfig(
        name=name,
        icache=ICacheConfig(
            size_bytes=int(merged["icache_kb"]) * 1024,
            line_bytes=int(merged["icache_line_bytes"]),
            associativity=int(merged["icache_associativity"]),
        ),
        predictor=BranchPredictorConfig(
            kind=kind, budget=budget, with_loop=bool(merged["predictor_loop"])
        ),
        btb=BTBConfig(
            entries=int(merged["btb_entries"]),
            associativity=int(merged["btb_associativity"]),
        ),
    )
    return GridPoint(name=name, values=values, config=config)


def _frontend_point_name(merged: Mapping[str, Any]) -> str:
    """A compact, unique label encoding all eight front-end parameters."""
    loop = "L-" if merged["predictor_loop"] else ""
    return (
        f"{loop}{merged['predictor_kind']}-{merged['predictor_budget']}"
        f"|btb{merged['btb_entries']}x{merged['btb_associativity']}"
        f"|ic{merged['icache_kb']}KB-{merged['icache_line_bytes']}B"
        f"x{merged['icache_associativity']}"
    )


def _cmp_point(
    values: Tuple[Tuple[str, Any], ...], parameters: Mapping[str, Any]
) -> "GridPoint | None":
    config = mix_config(
        parameters["mix"], parameters["cores"], parameters["l2_kb"]
    )
    if config is None:
        return None
    return GridPoint(name=config.name, values=values, config=config)


# ---------------------------------------------------------------------------
# Preset grids (the CLI's --grid choices)
# ---------------------------------------------------------------------------


def frontend_grid() -> GridSpec:
    """The default front-end exploration grid (96 points).

    Sweeps every predictor family and budget with and without the loop
    predictor against the two Section V BTB/I-cache corner geometries.
    """
    return GridSpec.frontend(
        name="frontend",
        predictor_kind=("gshare", "tournament", "tage"),
        predictor_budget=("small", "big"),
        predictor_loop=(False, True),
        btb_entries=(256, 2048),
        icache_kb=(16, 32),
        icache_line_bytes=(64, 128),
    )


def smoke_grid() -> GridSpec:
    """A tiny front-end grid (8 points) for smoke runs and CI."""
    return GridSpec.frontend(
        name="smoke",
        predictor_budget=("small", "big"),
        btb_entries=(256, 2048),
        icache_kb=(16, 32),
    )


def cmp_exploration_grid() -> GridSpec:
    """A chip-level grid: core counts x all four mixes x L2 slices."""
    return GridSpec.cmp(
        cores=(1, 2, 4, 8, 16, 32, 64),
        mixes=("baseline", "tailored", "asymmetric", "asymmetric++"),
        l2_kb=(128, 256, 512),
        name="cmp",
    )


#: Named preset grids, as the CLI's ``--grid`` choices.
GRID_PRESETS: "Dict[str, Callable[[], GridSpec]]" = {
    "frontend": frontend_grid,
    "smoke": smoke_grid,
    "cmp": cmp_exploration_grid,
}


def get_grid(name: str) -> GridSpec:
    """Look up a preset grid by name."""
    if name not in GRID_PRESETS:
        known = ", ".join(sorted(GRID_PRESETS))
        raise KeyError(f"unknown grid preset {name!r}; expected one of {known}")
    return GRID_PRESETS[name]()
