"""Pareto-frontier extraction over exploration result frames.

A grid point *dominates* another when it is no worse on every objective
and strictly better on at least one; the Pareto frontier is the set of
non-dominated points.  All objectives are minimized -- area, power,
MPKI, and execution time all read "smaller is better"; negate a column
first to maximize it.

The extraction is vectorized: :func:`pareto_mask` broadcasts the full
pairwise dominance comparison through NumPy in candidate blocks (bounded
memory on large grids) instead of the O(n^2) pure-Python double loop,
which the test suite keeps as the reference implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.api.frame import ResultFrame

#: Cap on pairwise comparisons materialized per block; bounds the
#: broadcast buffer at roughly ``_PAIR_BUDGET x objectives`` bytes.
_PAIR_BUDGET = 4_000_000


def pareto_mask(values: Any) -> np.ndarray:
    """Boolean mask of the non-dominated rows of a point matrix.

    ``values`` is an ``(n, objectives)`` array-like; every objective is
    minimized.  Duplicate points do not dominate each other, so every
    copy of a frontier point stays on the frontier (matching the
    brute-force reference asserted in the tests).
    """
    points = np.asarray(values, dtype=float)
    if points.ndim != 2:
        raise ValueError(
            f"expected an (n, objectives) matrix, got shape {points.shape}"
        )
    count = points.shape[0]
    mask = np.ones(count, dtype=bool)
    if count == 0:
        return mask
    block = max(1, _PAIR_BUDGET // count)
    for start in range(0, count, block):
        candidates = points[start : start + block]
        # dominated[j] = any point <= candidate j on all objectives and
        # < on at least one.
        no_worse = (points[:, None, :] <= candidates[None, :, :]).all(axis=2)
        better = (points[:, None, :] < candidates[None, :, :]).any(axis=2)
        mask[start : start + block] = ~((no_worse & better).any(axis=0))
    return mask


@dataclass(frozen=True)
class ParetoFrontier:
    """The non-dominated subset of a result frame.

    ``frame`` holds the surviving rows (source row order preserved);
    ``mask`` flags every source row.  With ``group_by`` the frontier is
    computed independently per group (e.g. per workload), so one
    workload's cheap points never shadow another's.
    """

    objectives: Tuple[str, ...]
    group_by: Tuple[str, ...]
    frame: ResultFrame
    mask: Tuple[bool, ...]

    @classmethod
    def from_frame(
        cls,
        frame: ResultFrame,
        objectives: Sequence[str],
        group_by: Sequence[str] = (),
    ) -> "ParetoFrontier":
        """Extract the frontier of ``frame`` over the objective columns."""
        objectives = tuple(objectives)
        group_by = tuple(group_by)
        if not objectives:
            raise ValueError("pareto extraction needs at least one objective")
        objective_positions = [frame._position(name) for name in objectives]
        group_positions = [frame._position(name) for name in group_by]
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        for index, row in enumerate(frame.data):
            key = tuple(row[position] for position in group_positions)
            groups.setdefault(key, []).append(index)
        mask = [False] * len(frame.data)
        for indices in groups.values():
            values = [
                [frame.data[index][position] for position in objective_positions]
                for index in indices
            ]
            for index, keep in zip(indices, pareto_mask(values)):
                mask[index] = bool(keep)
        kept = tuple(row for row, keep in zip(frame.data, mask) if keep)
        return cls(
            objectives=objectives,
            group_by=group_by,
            frame=ResultFrame(columns=frame.columns, data=kept, title=frame.title),
            mask=tuple(mask),
        )

    def __len__(self) -> int:
        return len(self.frame)


def pareto_frontier(
    frame: ResultFrame,
    objectives: Sequence[str],
    group_by: Sequence[str] = (),
) -> ParetoFrontier:
    """Convenience alias of :meth:`ParetoFrontier.from_frame`."""
    return ParetoFrontier.from_frame(frame, objectives, group_by)
