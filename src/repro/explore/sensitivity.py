"""Per-axis sensitivity tables over exploration result frames.

For every swept axis value, the sensitivity table reports the mean (and
range) of each metric over all grid rows taking that value -- the
marginal effect of moving along one axis with every other axis averaged
out.  The companion summary collapses each axis to the spread of those
means, which ranks the axes by how much the design space actually
responds to them.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.api.frame import ResultFrame

#: Columns of the sensitivity frame, in emission order.
SENSITIVITY_COLUMNS = ("axis", "value", "metric", "mean", "min", "max")


def sensitivity_frame(
    frame: ResultFrame,
    axes: Sequence[str],
    metrics: Sequence[str],
) -> ResultFrame:
    """One row per (axis, value, metric): mean/min/max over the grid.

    Axis values appear in first-seen (grid) order; axes and metrics in
    the order given, so the emission is deterministic for a given grid
    frame.
    """
    rows: List[List[Any]] = []
    for axis in axes:
        axis_position = frame._position(axis)
        value_order: List[Any] = []
        buckets: Dict[Any, List[Tuple[Any, ...]]] = {}
        for row in frame.data:
            value = row[axis_position]
            if value not in buckets:
                buckets[value] = []
                value_order.append(value)
            buckets[value].append(row)
        for value in value_order:
            bucket = buckets[value]
            for metric in metrics:
                metric_position = frame._position(metric)
                cells = [float(row[metric_position]) for row in bucket]
                rows.append(
                    [
                        axis,
                        value,
                        metric,
                        sum(cells) / len(cells),
                        min(cells),
                        max(cells),
                    ]
                )
    return ResultFrame.from_rows(SENSITIVITY_COLUMNS, rows)


def sensitivity_summary(sensitivity: ResultFrame) -> ResultFrame:
    """Collapse a sensitivity frame to per-(axis, metric) mean spreads.

    ``spread`` is ``max(mean) - min(mean)`` across the axis's values:
    zero means the metric ignores the axis entirely.
    """
    order: List[Tuple[Any, Any]] = []
    means: Dict[Tuple[Any, Any], List[float]] = {}
    for record in sensitivity.records():
        key = (record["axis"], record["metric"])
        if key not in means:
            means[key] = []
            order.append(key)
        means[key].append(float(record["mean"]))
    rows = [
        [axis, metric, max(means[(axis, metric)]) - min(means[(axis, metric)])]
        for axis, metric in order
    ]
    return ResultFrame.from_rows(("axis", "metric", "spread"), rows)
