"""Shared workload-trace cache (process-wide, plus an optional disk layer).

This is the single place a dynamic trace of a catalogued workload is
supposed to come from: every profiling layer (the experiment drivers,
the Section V CMP simulator, benchmarks, examples) routes through
:func:`workload_trace` so one trace per ``(workload, instructions,
seed)`` exists per process, regardless of which driver asked first.

The cache lives in the workloads layer -- below both ``experiments``
and ``uarch`` -- precisely so the micro-architecture simulator can use
it without a layering cycle.

Set the ``REPRO_TRACE_CACHE_DIR`` environment variable to also persist
trace columns on disk as ``.npz`` files, so separate driver *processes*
(each CLI invocation is one, as is every ``--parallel`` worker) share
traces too.  Parallel sweeps (:meth:`repro.api.session.Session.map`
under a parallel config) enable the disk layer automatically under a
per-user cache directory (``$XDG_CACHE_HOME/repro-frontend/traces``,
falling back to ``~/.cache``); set the variable to an explicit path to
relocate it, or to one of ``""``/``none``/``off``/``0`` to disable the
disk layer entirely.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api import runtime_config
from repro.trace.columns import program_columns
from repro.trace.events import Trace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthesis import SyntheticWorkload, build_workload

#: Default dynamic trace length used by the profiling layers (owned by
#: :mod:`repro.api.runtime_config`, aliased here so both layers agree
#: on what a cached "profile length" trace is); every caller accepts an
#: ``instructions`` override, and an *omitted* override resolves
#: through :func:`default_profile_instructions` so the
#: ``REPRO_INSTRUCTIONS`` variable and session budgets apply.
DEFAULT_PROFILE_INSTRUCTIONS = runtime_config.DEFAULT_INSTRUCTIONS


def default_profile_instructions() -> int:
    """The instruction budget an omitted ``instructions`` resolves to.

    The activated session's budget when one is active, else
    ``REPRO_INSTRUCTIONS``, else :data:`DEFAULT_PROFILE_INSTRUCTIONS`
    -- the same explicit > environment > default chain every other
    runtime knob follows.
    """
    return runtime_config.current_config().instructions

#: Directory for the optional on-disk trace cache.  When set, generated
#: trace columns are persisted as ``.npz`` files so separate driver
#: *processes* (each CLI invocation is one) share traces too.  Owned by
#: :mod:`repro.api.runtime_config`; re-exported here for compatibility.
TRACE_CACHE_DIR_VARIABLE = runtime_config.TRACE_CACHE_DIR_VARIABLE

#: Version salt folded into the disk-cache fingerprint.  Bump when the
#: trace *generation* semantics change in a way the static-layout
#: fingerprint cannot see (e.g. executor or schedule behaviour).
TRACE_CACHE_VERSION = 1

#: Process-wide trace cache: (cache namespace, workload name,
#: instructions, seed) -> Trace.  The namespace component scopes
#: entries to the active session's ``cache_namespace`` (``None`` when
#: unset) so concurrent namespaced sessions in one process never
#: observe each other's in-memory traces -- mirroring the disk-layer
#: isolation that landed with the namespaced cache directories.
_TRACE_CACHE: Dict[Tuple[Optional[str], str, int, int], Trace] = {}
_TRACE_CACHE_LOCK = threading.Lock()
_TRACE_CACHE_STATS = {
    "hits": 0,
    "misses": 0,
    "disk_hits": 0,
    "disk_misses": 0,
    "disk_stores": 0,
    "quarantined": 0,
}

#: Callbacks run by :func:`clear_trace_cache` so higher layers with
#: derived caches (e.g. the uarch profile cache) stay consistent
#: without this module importing them.
_CLEAR_CALLBACKS: List[Callable[[], None]] = []

#: Named cache-statistics providers (trace cache, profile cache, result
#: store, ...).  Each layer registers its own counter snapshot here so
#: the CLI's ``--verbose`` reporting does not hard-code the cache
#: inventory; this module hosts the registry because it sits below
#: every cache-owning layer.
_STATS_PROVIDERS: Dict[str, Callable[[], Dict[str, int]]] = {}


def register_stats_provider(
    name: str, provider: Callable[[], Dict[str, int]]
) -> Optional[Callable[[], Dict[str, int]]]:
    """Register a named cache-counter snapshot provider.

    Re-registering an already-used name **replaces** the previous
    provider rather than accumulating a duplicate: each cache owns
    exactly one snapshot per name, so a module re-import (or a test
    installing an instrumented provider) never double-counts in
    :func:`all_cache_stats`.  Returns the replaced provider, or
    ``None`` for a first registration, so callers that wrap an
    existing provider can restore it.
    """
    previous = _STATS_PROVIDERS.get(name)
    _STATS_PROVIDERS[name] = provider
    return previous


def all_cache_stats() -> Dict[str, Dict[str, int]]:
    """Snapshot every registered cache's counters, keyed by cache name.

    Only caches whose owning module has been imported appear -- the
    registry is populated at import time by each layer.
    """
    return {name: provider() for name, provider in _STATS_PROVIDERS.items()}


def default_shared_cache_dir() -> str:
    """Per-user shared trace-cache directory (platformdirs-style).

    Honours ``$XDG_CACHE_HOME`` and falls back to ``~/.cache``, the
    conventional per-user cache root on every platform this project
    targets.
    """
    return runtime_config.default_trace_cache_dir()


def resolved_cache_dir() -> Optional[str]:
    """The active disk-cache directory, or ``None`` when disabled.

    Resolution goes through :mod:`repro.api.runtime_config`: an
    activated session config wins; otherwise the environment variable
    rules, where unset means "no disk layer" for plain calls (parallel
    sweeps opt in via :func:`enable_shared_cache`) and an explicit
    disable value turns the disk layer off everywhere.
    """
    return runtime_config.current_trace_cache_dir()


def enable_shared_cache() -> Optional[str]:
    """Turn the disk layer on, defaulting to the per-user directory.

    Called by parallel sweeps before forking workers: when the cache
    directory variable is unset it is exported (so worker processes
    inherit it); an explicit path or disable value is left untouched.
    Returns the active directory, or ``None`` when explicitly disabled.
    """
    runtime_config.export_environment_default(
        TRACE_CACHE_DIR_VARIABLE, default_shared_cache_dir()
    )
    return resolved_cache_dir()


def trace_on_disk(spec: WorkloadSpec, instructions: int, seed: int = 0) -> bool:
    """Whether the disk layer holds a *loadable* trace for this key.

    Checks the stored fingerprint against the current program layout
    (a stale or corrupt entry would be rejected at load time anyway),
    so sweep priming regenerates exactly the traces that need it.
    """
    path = _disk_cache_path((spec.name, int(instructions), int(seed)))
    if path is None or not os.path.exists(path):
        return False
    try:
        with np.load(path) as archive:
            fingerprint = str(archive["fingerprint"])
    except Exception:
        _quarantine_trace_entry(path)  # Unreadable archive: preserve it.
        return False
    return fingerprint == _program_fingerprint(build_workload(spec).program)


def register_cache_clearer(callback: Callable[[], None]) -> None:
    """Register a callback invoked whenever the trace cache is cleared.

    Higher layers that memoize results *derived* from cached traces
    (the process-wide front-end profile cache in
    :mod:`repro.uarch.simulator`) register their own clearers here so
    :func:`clear_trace_cache` drops the whole dependent chain at once.
    """
    if callback not in _CLEAR_CALLBACKS:
        _CLEAR_CALLBACKS.append(callback)


def workload_trace(
    spec: WorkloadSpec,
    instructions: Optional[int] = None,
    seed: int = 0,
) -> Trace:
    """Build (or reuse) the synthetic workload and return its trace.

    Traces are cached process-wide, keyed by ``(cache namespace,
    spec.name, instructions, seed)``, so the experiment drivers share
    one trace per workload instead of each regenerating all of them.
    Repeated calls with the same key return the *same* object; sessions
    with distinct ``cache_namespace`` settings get distinct entries,
    exactly as they get distinct disk directories.  Set the
    ``REPRO_TRACE_CACHE_DIR`` environment variable to also persist
    trace columns on disk and share them across driver processes.
    """
    if instructions is None:
        instructions = default_profile_instructions()
    namespace = runtime_config.current_cache_namespace()
    key = (namespace, spec.name, int(instructions), int(seed))
    disk_key = (spec.name, int(instructions), int(seed))
    with _TRACE_CACHE_LOCK:
        cached = _TRACE_CACHE.get(key)
        if cached is not None:
            _TRACE_CACHE_STATS["hits"] += 1
            return cached
        _TRACE_CACHE_STATS["misses"] += 1

    disk_enabled = resolved_cache_dir() is not None
    trace = _load_trace_from_disk(spec, disk_key)
    if trace is None:
        if disk_enabled:
            with _TRACE_CACHE_LOCK:
                _TRACE_CACHE_STATS["disk_misses"] += 1
        workload: SyntheticWorkload = build_workload(spec)
        trace = workload.trace(int(instructions), seed=seed)
        if _store_trace_to_disk(trace, disk_key):
            with _TRACE_CACHE_LOCK:
                _TRACE_CACHE_STATS["disk_stores"] += 1
    else:
        with _TRACE_CACHE_LOCK:
            _TRACE_CACHE_STATS["disk_hits"] += 1
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (mainly for tests and memory pressure).

    Also clears the workload-builder cache underneath, which holds the
    built programs and their per-workload trace dictionaries; without
    that, the traces would stay strongly referenced and the next
    "miss" would silently return the same objects.  Registered
    dependent caches (see :func:`register_cache_clearer`) are cleared
    last.
    """
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE.clear()
        for counter in _TRACE_CACHE_STATS:
            _TRACE_CACHE_STATS[counter] = 0
    build_workload.cache_clear()
    for callback in _CLEAR_CALLBACKS:
        callback()


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide trace cache.

    ``disk_hits``/``disk_misses``/``disk_stores`` count the optional
    ``.npz`` layer; they stay zero while it is disabled.
    """
    with _TRACE_CACHE_LOCK:
        info = dict(_TRACE_CACHE_STATS)
        info["entries"] = len(_TRACE_CACHE)
        return info


register_stats_provider("traces", trace_cache_info)


def _disk_cache_path(key: Tuple[str, int, int]) -> Optional[str]:
    directory = resolved_cache_dir()
    if directory is None:
        return None
    name, instructions, seed = key
    return os.path.join(directory, f"{name}-{instructions}-{seed}.npz")


def _program_fingerprint(program) -> str:
    """Digest of the laid-out static program a cached trace refers to.

    Guards the disk cache against synthesis or layout changes: any
    difference in block addresses, sizes, instruction counts,
    terminators, or static targets invalidates the entry.  Generation
    changes invisible to the static layout (branch probabilities,
    executor behaviour) are covered by bumping
    :data:`TRACE_CACHE_VERSION`.
    """
    columns = program_columns(program)
    digest = hashlib.sha1(f"v{TRACE_CACHE_VERSION}:".encode())
    for array in (
        columns.addresses,
        columns.size_bytes,
        columns.num_instructions,
        columns.terminators,
        columns.taken_targets,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _load_trace_from_disk(
    spec: WorkloadSpec, key: Tuple[str, int, int]
) -> Optional[Trace]:
    path = _disk_cache_path(key)
    if path is None or not os.path.exists(path):
        return None
    try:
        with np.load(path) as archive:
            columns = (
                archive["block_ids"],
                archive["taken"],
                archive["targets"],
                archive["sections"],
            )
            fingerprint = str(archive["fingerprint"])
    except Exception:
        # An unreadable archive (torn write, truncation, disk damage)
        # is evidence of a fault: quarantine it as ``*.corrupt`` and
        # regenerate.  A *stale* entry below is not quarantined -- it
        # is a valid archive from older code, simply superseded.
        _quarantine_trace_entry(path)
        return None
    program = build_workload(spec).program
    if fingerprint != _program_fingerprint(program):
        return None  # Synthesis/layout changed; the cached columns are stale.
    return Trace.from_columns(program, *columns, name=spec.name)


def _quarantine_trace_entry(path: str) -> None:
    """Rename an unreadable ``.npz`` to ``*.corrupt`` and count it.

    The rename itself is shared with the sweep journal and the result
    store (:func:`repro.exec.journal.quarantine_entry`, imported lazily
    to keep this layer importable on its own); the counter lives in
    this cache's stats so ``--verbose`` reporting attributes the damage
    to the right store.
    """
    from repro.exec.journal import quarantine_entry

    if quarantine_entry(path) is not None:
        with _TRACE_CACHE_LOCK:
            _TRACE_CACHE_STATS["quarantined"] += 1


def _store_trace_to_disk(trace: Trace, key: Tuple[str, int, int]) -> bool:
    path = _disk_cache_path(key)
    if path is None:
        return False
    # Write-then-rename keeps the store atomic: the shared directory is
    # populated concurrently by parallel drivers, and a reader must
    # never observe a half-written archive.
    temporary = None
    try:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, temporary = tempfile.mkstemp(suffix=".npz.tmp", dir=directory)
        with os.fdopen(handle, "wb") as stream:
            np.savez_compressed(
                stream,
                block_ids=trace.block_ids,
                taken=trace.taken_column,
                targets=trace.target_column,
                sections=trace.section_column,
                fingerprint=np.str_(_program_fingerprint(trace.program)),
            )
        os.replace(temporary, path)
    except OSError:
        if temporary is not None:
            try:
                os.unlink(temporary)
            except OSError:
                pass
        return False  # Disk cache is best-effort.
    return True
