"""Workload specifications.

A :class:`WorkloadSpec` captures everything the synthesis layer needs to
build a synthetic program whose dynamic trace exhibits the
characteristics the paper measured for the corresponding real
application.  Parameters are split per code section because the paper's
central observation is that serial and parallel sections behave
differently inside the same HPC application.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from repro.workloads.suites import Suite


@dataclass(frozen=True)
class SectionProfile:
    """Structural parameters of one code section (serial or parallel).

    Attributes
    ----------
    branch_fraction:
        Fraction of dynamic instructions that are branch instructions of
        any kind (Figure 1's y-axis).
    call_fraction, indirect_call_fraction, indirect_branch_fraction,
    unconditional_fraction, syscall_fraction:
        Fractions *of branch instructions* in each non-conditional
        category.  Returns are generated implicitly, one per call, so
        the conditional share is
        ``1 - 2*(calls + indirect calls) - indirect branches -
        unconditional - syscalls``.
    loop_share:
        Of dynamically executed conditional branches, the fraction that
        are loop back-edges (latches).  Loop-dominated scientific code
        has a high share; control-heavy integer code a low one.
    avg_trip_count:
        Mean iteration count of the innermost loops.
    loop_regularity:
        Fraction of loops whose trip count is identical on every
        invocation (the loops a loop branch predictor captures).
    balanced_if_share, moderate_if_share:
        Of non-loop conditional branch sites, the fractions that are
        roughly 50/50 and roughly 75/25 biased; the remainder are
        strongly (about 95/5) biased.
    if_taken_dominant_share:
        Fraction of non-loop conditional sites whose *dominant*
        direction is taken (a forward taken branch) rather than
        not-taken.
    hot_code_kb:
        Static size of the steady-state (hot) code of the section.
    bytes_per_instruction:
        Average instruction length used when sizing blocks.
    """

    branch_fraction: float
    call_fraction: float = 0.05
    indirect_call_fraction: float = 0.0
    indirect_branch_fraction: float = 0.0
    unconditional_fraction: float = 0.06
    syscall_fraction: float = 0.0005
    loop_share: float = 0.7
    avg_trip_count: float = 24.0
    loop_regularity: float = 0.8
    balanced_if_share: float = 0.1
    moderate_if_share: float = 0.2
    if_taken_dominant_share: float = 0.25
    hot_code_kb: float = 12.0
    bytes_per_instruction: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.branch_fraction < 1.0:
            raise ValueError("branch_fraction must be in (0, 1)")
        if self.conditional_fraction <= 0.0:
            raise ValueError(
                "branch mix leaves no room for conditional branches "
                f"(conditional fraction {self.conditional_fraction:.3f})"
            )
        if not 0.0 < self.loop_share <= 1.0:
            raise ValueError("loop_share must be in (0, 1]")
        if self.avg_trip_count < 1.0:
            raise ValueError("avg_trip_count must be at least 1")
        if not 0.0 <= self.loop_regularity <= 1.0:
            raise ValueError("loop_regularity must be in [0, 1]")
        if self.balanced_if_share + self.moderate_if_share > 1.0 + 1e-9:
            raise ValueError("balanced and moderate if shares exceed 1")
        if self.hot_code_kb <= 0.0:
            raise ValueError("hot_code_kb must be positive")

    @property
    def return_fraction(self) -> float:
        """Returns mirror calls one-for-one."""
        return self.call_fraction + self.indirect_call_fraction

    @property
    def conditional_fraction(self) -> float:
        """Fraction of branch instructions that are conditional."""
        return 1.0 - (
            self.call_fraction
            + self.indirect_call_fraction
            + self.return_fraction
            + self.indirect_branch_fraction
            + self.unconditional_fraction
            + self.syscall_fraction
        )

    @property
    def strong_if_share(self) -> float:
        """Fraction of if sites that are strongly biased."""
        return max(0.0, 1.0 - self.balanced_if_share - self.moderate_if_share)

    @property
    def mean_block_instructions(self) -> float:
        """Expected dynamic basic-block length in instructions."""
        return 1.0 / self.branch_fraction

    @property
    def mean_block_bytes(self) -> float:
        """Expected dynamic basic-block length in bytes."""
        return self.mean_block_instructions * self.bytes_per_instruction

    def scaled(self, **changes) -> "SectionProfile":
        """Return a copy of the profile with selected fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class WorkloadSpec:
    """Full specification of one benchmark application.

    Attributes
    ----------
    name:
        Benchmark name as used in the paper (e.g. ``"LULESH"``,
        ``"fma3d"``, ``"gobmk"``).
    suite:
        The benchmark suite the application belongs to.
    parallel:
        Profile of the parallel (worker) code sections.
    serial:
        Profile of the serial (master-only) code sections.  For the
        sequential SPEC CPU INT workloads this profile describes the
        whole application.
    serial_fraction:
        Fraction of the first processing element's dynamic instructions
        executed in serial sections (1.0 for sequential workloads).
    static_code_kb:
        Total static instruction footprint of the binary, including
        cold library and initialisation code that the steady state never
        touches.
    threads:
        Number of threads/processes the application is run with in the
        CMP evaluation (Section V); SPEC CPU INT runs with one.
    description:
        Short human-readable description for reports.
    """

    name: str
    suite: Suite
    parallel: SectionProfile
    serial: SectionProfile
    serial_fraction: float
    static_code_kb: float
    threads: int = 8
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.static_code_kb <= 0.0:
            raise ValueError("static_code_kb must be positive")
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        min_hot = self.parallel.hot_code_kb + self.serial.hot_code_kb
        if self.is_sequential:
            min_hot = self.serial.hot_code_kb
        if self.static_code_kb < min_hot:
            raise ValueError(
                f"{self.name}: static_code_kb ({self.static_code_kb}) smaller "
                f"than the combined hot code ({min_hot})"
            )

    @property
    def is_sequential(self) -> bool:
        """Whether the workload runs as a single sequential program."""
        return self.serial_fraction >= 1.0 or self.threads == 1

    @property
    def parallel_fraction(self) -> float:
        """Fraction of instructions executed in parallel sections."""
        return 1.0 - self.serial_fraction

    @property
    def cold_code_kb(self) -> float:
        """Static code never touched in steady state (libraries, init)."""
        hot = self.serial.hot_code_kb
        if not self.is_sequential:
            hot += self.parallel.hot_code_kb
        return max(0.0, self.static_code_kb - hot)

    @property
    def seed(self) -> int:
        """Deterministic per-workload seed derived from the name."""
        digest = hashlib.sha256(self.name.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "little")

    def __str__(self) -> str:
        return f"{self.name} ({self.suite.label})"
