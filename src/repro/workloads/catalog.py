"""Catalog of the 41 applications characterized in the paper.

29 HPC workloads (ExMatEx, SPEC OMP 2012, NPB) and 12 desktop workloads
(SPEC CPU INT 2006).  The structural parameters of each entry are
calibrated to the characteristics the paper reports -- suite-level
branch densities and bias (Figures 1 and 2, Table I), instruction
footprints (Figure 3), basic-block lengths (Figure 4), serial-section
shares (Section III-D), and the per-benchmark call-outs scattered
through the text (e.g. CoEVP's 35% serial share and 2.5% indirect
branches, BT's 312-byte basic blocks, VPFFT's 800KB static footprint,
fma3d's I-cache sensitivity, gcc/gobmk/sjeng's BTB pressure).

The catalog intentionally lives in one module so a reader can audit
every number used to stand in for the unavailable real binaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.workloads.spec import SectionProfile, WorkloadSpec
from repro.workloads.suites import SUITE_ORDER, Suite

# ----------------------------------------------------------------------
# Suite-level default profiles
# ----------------------------------------------------------------------

_EXMATEX_PARALLEL = SectionProfile(
    branch_fraction=0.11,
    call_fraction=0.045,
    indirect_call_fraction=0.001,
    indirect_branch_fraction=0.001,
    unconditional_fraction=0.06,
    syscall_fraction=0.0004,
    loop_share=0.58,
    avg_trip_count=20.0,
    loop_regularity=0.72,
    balanced_if_share=0.15,
    moderate_if_share=0.25,
    if_taken_dominant_share=0.20,
    hot_code_kb=12.0,
    bytes_per_instruction=5.0,
)

_EXMATEX_SERIAL = SectionProfile(
    branch_fraction=0.20,
    call_fraction=0.07,
    indirect_call_fraction=0.002,
    indirect_branch_fraction=0.002,
    unconditional_fraction=0.08,
    syscall_fraction=0.001,
    loop_share=0.52,
    avg_trip_count=10.0,
    loop_regularity=0.50,
    balanced_if_share=0.22,
    moderate_if_share=0.30,
    if_taken_dominant_share=0.30,
    hot_code_kb=20.0,
    bytes_per_instruction=4.0,
)

_SPEC_OMP_PARALLEL = SectionProfile(
    branch_fraction=0.07,
    call_fraction=0.04,
    indirect_call_fraction=0.0005,
    indirect_branch_fraction=0.0005,
    unconditional_fraction=0.05,
    syscall_fraction=0.0003,
    loop_share=0.62,
    avg_trip_count=26.0,
    loop_regularity=0.85,
    balanced_if_share=0.08,
    moderate_if_share=0.15,
    if_taken_dominant_share=0.15,
    hot_code_kb=6.0,
    bytes_per_instruction=5.0,
)

_SPEC_OMP_SERIAL = SectionProfile(
    branch_fraction=0.18,
    call_fraction=0.06,
    indirect_call_fraction=0.001,
    indirect_branch_fraction=0.001,
    unconditional_fraction=0.07,
    syscall_fraction=0.001,
    loop_share=0.55,
    avg_trip_count=11.0,
    loop_regularity=0.55,
    balanced_if_share=0.20,
    moderate_if_share=0.28,
    if_taken_dominant_share=0.30,
    hot_code_kb=10.0,
    bytes_per_instruction=4.0,
)

_NPB_PARALLEL = SectionProfile(
    branch_fraction=0.07,
    call_fraction=0.03,
    indirect_call_fraction=0.0003,
    indirect_branch_fraction=0.0003,
    unconditional_fraction=0.05,
    syscall_fraction=0.0003,
    loop_share=0.65,
    avg_trip_count=28.0,
    loop_regularity=0.88,
    balanced_if_share=0.06,
    moderate_if_share=0.12,
    if_taken_dominant_share=0.15,
    hot_code_kb=5.0,
    bytes_per_instruction=5.0,
)

_NPB_SERIAL = SectionProfile(
    branch_fraction=0.18,
    call_fraction=0.055,
    indirect_call_fraction=0.001,
    indirect_branch_fraction=0.001,
    unconditional_fraction=0.07,
    syscall_fraction=0.001,
    loop_share=0.56,
    avg_trip_count=12.0,
    loop_regularity=0.60,
    balanced_if_share=0.18,
    moderate_if_share=0.28,
    if_taken_dominant_share=0.30,
    hot_code_kb=6.0,
    bytes_per_instruction=4.0,
)

_SPEC_INT = SectionProfile(
    branch_fraction=0.19,
    call_fraction=0.085,
    indirect_call_fraction=0.004,
    indirect_branch_fraction=0.006,
    unconditional_fraction=0.11,
    syscall_fraction=0.001,
    loop_share=0.50,
    avg_trip_count=9.0,
    loop_regularity=0.38,
    balanced_if_share=0.30,
    moderate_if_share=0.35,
    if_taken_dominant_share=0.30,
    hot_code_kb=120.0,
    bytes_per_instruction=4.0,
)


def _hpc(
    name: str,
    suite: Suite,
    base_parallel: SectionProfile,
    base_serial: SectionProfile,
    serial_fraction: float,
    static_code_kb: float,
    description: str,
    parallel: Optional[Dict[str, float]] = None,
    serial: Optional[Dict[str, float]] = None,
) -> WorkloadSpec:
    """Build one HPC workload spec from suite defaults plus overrides."""
    parallel_profile = base_parallel.scaled(**(parallel or {}))
    serial_profile = base_serial.scaled(**(serial or {}))
    return WorkloadSpec(
        name=name,
        suite=suite,
        parallel=parallel_profile,
        serial=serial_profile,
        serial_fraction=serial_fraction,
        static_code_kb=static_code_kb,
        threads=8,
        description=description,
    )


def _desktop(
    name: str,
    static_code_kb: float,
    description: str,
    profile: Optional[Dict[str, float]] = None,
) -> WorkloadSpec:
    """Build one SPEC CPU INT workload spec."""
    serial_profile = _SPEC_INT.scaled(**(profile or {}))
    return WorkloadSpec(
        name=name,
        suite=Suite.SPEC_CPU_INT,
        parallel=serial_profile,
        serial=serial_profile,
        serial_fraction=1.0,
        static_code_kb=static_code_kb,
        threads=1,
        description=description,
    )


def _build_exmatex() -> List[WorkloadSpec]:
    """The eight ExMatEx co-design proxy applications."""
    return [
        _hpc(
            "CoMD", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.08, static_code_kb=180.0,
            description="Classical molecular dynamics proxy (Lennard-Jones/EAM force kernels).",
            parallel=dict(hot_code_kb=6.0, branch_fraction=0.10, avg_trip_count=22.0),
            serial=dict(hot_code_kb=16.0),
        ),
        _hpc(
            "LULESH", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.11, static_code_kb=160.0,
            description="Unstructured Lagrangian shock hydrodynamics proxy.",
            parallel=dict(hot_code_kb=24.0, branch_fraction=0.04, avg_trip_count=24.0,
                          loop_share=0.70, balanced_if_share=0.10),
            serial=dict(hot_code_kb=18.0),
        ),
        _hpc(
            "CoEVP", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.35, static_code_kb=420.0,
            description="Embedded viscoplasticity proxy with adaptive fine-scale models.",
            parallel=dict(hot_code_kb=30.0, branch_fraction=0.13, loop_share=0.58,
                          indirect_branch_fraction=0.012, indirect_call_fraction=0.012,
                          loop_regularity=0.60, balanced_if_share=0.18, moderate_if_share=0.28),
            serial=dict(hot_code_kb=40.0, branch_fraction=0.21,
                        indirect_branch_fraction=0.008, indirect_call_fraction=0.008),
        ),
        _hpc(
            "CoHMM", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.05, static_code_kb=140.0,
            description="Heterogeneous multiscale method proxy with short basic blocks.",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.15, avg_trip_count=14.0),
            serial=dict(hot_code_kb=10.0),
        ),
        _hpc(
            "CoSP", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.09, static_code_kb=150.0,
            description="Sparse linear-algebra proxy (CoSP2 electronic structure).",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.15, avg_trip_count=12.0,
                          loop_share=0.62),
            serial=dict(hot_code_kb=12.0),
        ),
        _hpc(
            "CoGL", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.04, static_code_kb=200.0,
            description="Ginzburg-Landau phase-field proxy with a wide hot region.",
            parallel=dict(hot_code_kb=28.0, branch_fraction=0.09, avg_trip_count=20.0),
            serial=dict(hot_code_kb=14.0),
        ),
        _hpc(
            "VPFFT", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.03, static_code_kb=800.0,
            description="Crystal viscoplasticity proxy linked against FFTW/BLAS/LAPACK.",
            parallel=dict(hot_code_kb=40.0, branch_fraction=0.08, avg_trip_count=18.0),
            serial=dict(hot_code_kb=22.0),
        ),
        _hpc(
            "ASPA", Suite.EXMATEX, _EXMATEX_PARALLEL, _EXMATEX_SERIAL,
            serial_fraction=0.02, static_code_kb=170.0,
            description="Adaptive sampling proxy application.",
            parallel=dict(hot_code_kb=8.0, branch_fraction=0.11, avg_trip_count=16.0),
            serial=dict(hot_code_kb=12.0),
        ),
    ]


def _build_spec_omp() -> List[WorkloadSpec]:
    """The eleven distinct SPEC OMP 2012 applications."""
    return [
        _hpc(
            "md", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.006, static_code_kb=95.0,
            description="Molecular dynamics of dense nuclear matter (Fortran).",
            parallel=dict(hot_code_kb=2.0, indirect_branch_fraction=0.006,
                          indirect_call_fraction=0.004, avg_trip_count=30.0),
        ),
        _hpc(
            "bwaves", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.005, static_code_kb=100.0,
            description="Blast-wave computational fluid dynamics solver.",
            parallel=dict(hot_code_kb=3.0, branch_fraction=0.05, avg_trip_count=32.0),
        ),
        _hpc(
            "nab", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.04, static_code_kb=130.0,
            description="Nucleic-acid builder molecular modelling.",
            parallel=dict(hot_code_kb=4.0, branch_fraction=0.09, loop_share=0.70),
            serial=dict(hot_code_kb=12.0),
        ),
        _hpc(
            "botsalgn", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.008, static_code_kb=85.0,
            description="Protein alignment with OpenMP tasks.",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.10, loop_share=0.70,
                          avg_trip_count=18.0),
        ),
        _hpc(
            "botsspar", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.008, static_code_kb=90.0,
            description="Sparse LU factorization with OpenMP tasks; short, loopy blocks.",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.15, loop_share=0.78,
                          avg_trip_count=16.0, loop_regularity=0.92),
        ),
        _hpc(
            "ilbdc", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.006, static_code_kb=80.0,
            description="Lattice-Boltzmann flow solver.",
            parallel=dict(hot_code_kb=3.0, branch_fraction=0.05, avg_trip_count=34.0),
        ),
        _hpc(
            "fma3d", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.04, static_code_kb=250.0,
            description="Crash-simulation finite element code; largest SPEC OMP I-cache footprint.",
            parallel=dict(hot_code_kb=30.0, branch_fraction=0.08, loop_share=0.68,
                          loop_regularity=0.70, balanced_if_share=0.14, moderate_if_share=0.22),
            serial=dict(hot_code_kb=16.0),
        ),
        _hpc(
            "swim", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.005, static_code_kb=75.0,
            description="Shallow-water weather prediction stencil; very long basic blocks.",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.033, avg_trip_count=36.0),
        ),
        _hpc(
            "imagick", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.01, static_code_kb=200.0,
            description="ImageMagick image manipulation; loop predictor friendly.",
            parallel=dict(hot_code_kb=8.0, branch_fraction=0.12, loop_share=0.80,
                          loop_regularity=0.94, avg_trip_count=20.0),
            serial=dict(hot_code_kb=12.0),
        ),
        _hpc(
            "smithwa", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.007, static_code_kb=70.0,
            description="Smith-Waterman sequence alignment.",
            parallel=dict(hot_code_kb=2.0, branch_fraction=0.11, avg_trip_count=22.0),
        ),
        _hpc(
            "kdtree", Suite.SPEC_OMP, _SPEC_OMP_PARALLEL, _SPEC_OMP_SERIAL,
            serial_fraction=0.01, static_code_kb=95.0,
            description="k-d tree construction and search; recursive with indirect jumps.",
            parallel=dict(hot_code_kb=6.0, branch_fraction=0.13, loop_share=0.62,
                          indirect_branch_fraction=0.006, indirect_call_fraction=0.004,
                          loop_regularity=0.55, avg_trip_count=12.0,
                          balanced_if_share=0.18, moderate_if_share=0.26),
        ),
    ]


def _build_npb() -> List[WorkloadSpec]:
    """The ten NAS Parallel Benchmarks (class C inputs)."""
    return [
        _hpc(
            "BT", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.006, static_code_kb=180.0,
            description="Block tri-diagonal CFD solver; very long basic blocks.",
            parallel=dict(hot_code_kb=20.0, branch_fraction=0.016, avg_trip_count=30.0),
        ),
        _hpc(
            "CG", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.005, static_code_kb=85.0,
            description="Conjugate gradient with irregular memory access; short loopy blocks.",
            parallel=dict(hot_code_kb=1.5, branch_fraction=0.13, avg_trip_count=20.0,
                          loop_regularity=0.80),
        ),
        _hpc(
            "DC", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.01, static_code_kb=120.0,
            description="Data-cube operator benchmark; more control flow than the CFD kernels.",
            parallel=dict(hot_code_kb=8.0, branch_fraction=0.12, loop_share=0.68,
                          loop_regularity=0.65, balanced_if_share=0.12, moderate_if_share=0.22),
        ),
        _hpc(
            "EP", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.004, static_code_kb=70.0,
            description="Embarrassingly parallel random-number kernel with indirect jumps.",
            parallel=dict(hot_code_kb=1.5, branch_fraction=0.09,
                          indirect_branch_fraction=0.008, loop_regularity=0.75),
        ),
        _hpc(
            "FT", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.005, static_code_kb=110.0,
            description="3-D fast Fourier transform kernel.",
            parallel=dict(hot_code_kb=3.0, branch_fraction=0.05, avg_trip_count=32.0),
        ),
        _hpc(
            "IS", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.008, static_code_kb=65.0,
            description="Integer bucket sort; short basic blocks with short reuse distance.",
            parallel=dict(hot_code_kb=1.5, branch_fraction=0.14, avg_trip_count=18.0,
                          loop_regularity=0.80),
        ),
        _hpc(
            "LU", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.005, static_code_kb=140.0,
            description="Lower-upper Gauss-Seidel CFD solver.",
            parallel=dict(hot_code_kb=6.0, branch_fraction=0.05, avg_trip_count=30.0),
        ),
        _hpc(
            "MG", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.006, static_code_kb=100.0,
            description="Multi-grid Poisson solver.",
            parallel=dict(hot_code_kb=3.0, branch_fraction=0.045, avg_trip_count=26.0),
        ),
        _hpc(
            "SP", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.006, static_code_kb=150.0,
            description="Scalar penta-diagonal CFD solver.",
            parallel=dict(hot_code_kb=8.0, branch_fraction=0.03, avg_trip_count=28.0),
        ),
        _hpc(
            "UA", Suite.NPB, _NPB_PARALLEL, _NPB_SERIAL,
            serial_fraction=0.008, static_code_kb=252.0,
            description="Unstructured adaptive mesh benchmark with indirect jumps.",
            parallel=dict(hot_code_kb=14.0, branch_fraction=0.09,
                          indirect_branch_fraction=0.006, indirect_call_fraction=0.003,
                          loop_share=0.72, loop_regularity=0.70),
            serial=dict(hot_code_kb=10.0),
        ),
    ]


def _build_spec_cpu_int() -> List[WorkloadSpec]:
    """The twelve SPEC CPU2006 integer benchmarks (reference inputs)."""
    return [
        _desktop(
            "perlbench", 400.0,
            "Perl interpreter running mail-processing scripts; large code, many indirect calls.",
            dict(hot_code_kb=180.0, indirect_call_fraction=0.010, indirect_branch_fraction=0.012,
                 loop_share=0.44, loop_regularity=0.30),
        ),
        _desktop(
            "bzip2", 180.0,
            "Block-sorting compression; loopier and more biased than most integer codes.",
            dict(hot_code_kb=60.0, branch_fraction=0.17, loop_share=0.58,
                 loop_regularity=0.50, balanced_if_share=0.24),
        ),
        _desktop(
            "gcc", 600.0,
            "C compiler; very large instruction footprint and branch-site count.",
            dict(hot_code_kb=280.0, loop_share=0.42, balanced_if_share=0.32,
                 indirect_call_fraction=0.008, indirect_branch_fraction=0.010),
        ),
        _desktop(
            "mcf", 120.0,
            "Vehicle-scheduling network simplex; small code, data-bound, balanced branches.",
            dict(hot_code_kb=40.0, branch_fraction=0.20, loop_share=0.52,
                 balanced_if_share=0.34),
        ),
        _desktop(
            "gobmk", 350.0,
            "Go-playing AI; hard-to-predict branches and a large BTB working set.",
            dict(hot_code_kb=220.0, branch_fraction=0.21, loop_share=0.40,
                 balanced_if_share=0.36, moderate_if_share=0.36, loop_regularity=0.28),
        ),
        _desktop(
            "hmmer", 160.0,
            "Hidden-Markov-model protein search; dominated by one regular loop nest.",
            dict(hot_code_kb=50.0, branch_fraction=0.16, loop_share=0.62,
                 loop_regularity=0.62, balanced_if_share=0.18, avg_trip_count=14.0),
        ),
        _desktop(
            "sjeng", 280.0,
            "Chess engine; deep recursion and balanced branches.",
            dict(hot_code_kb=120.0, branch_fraction=0.21, loop_share=0.40,
                 balanced_if_share=0.34, call_fraction=0.10, loop_regularity=0.28),
        ),
        _desktop(
            "libquantum", 90.0,
            "Quantum computer simulation; small hot loops over large arrays.",
            dict(hot_code_kb=30.0, branch_fraction=0.24, loop_share=0.66,
                 loop_regularity=0.70, balanced_if_share=0.12, avg_trip_count=18.0),
        ),
        _desktop(
            "h264ref", 300.0,
            "H.264 video encoder; biased branches and loop-friendly kernels.",
            dict(hot_code_kb=90.0, branch_fraction=0.17, loop_share=0.58,
                 loop_regularity=0.60, balanced_if_share=0.16, avg_trip_count=14.0),
        ),
        _desktop(
            "omnetpp", 380.0,
            "Discrete-event network simulator; heavy virtual dispatch and large footprint.",
            dict(hot_code_kb=160.0, indirect_call_fraction=0.014, indirect_branch_fraction=0.008,
                 loop_share=0.42, balanced_if_share=0.30),
        ),
        _desktop(
            "astar", 200.0,
            "Path-finding library; pointer chasing with balanced branches.",
            dict(hot_code_kb=70.0, branch_fraction=0.20, loop_share=0.48,
                 balanced_if_share=0.32, loop_regularity=0.34),
        ),
        _desktop(
            "xalancbmk", 480.0,
            "XSLT processor; very large code with many indirect calls.",
            dict(hot_code_kb=240.0, indirect_call_fraction=0.016, indirect_branch_fraction=0.010,
                 loop_share=0.42, balanced_if_share=0.28, call_fraction=0.10),
        ),
    ]


def _build_catalog() -> Dict[str, WorkloadSpec]:
    specs: List[WorkloadSpec] = []
    specs.extend(_build_exmatex())
    specs.extend(_build_spec_omp())
    specs.extend(_build_npb())
    specs.extend(_build_spec_cpu_int())
    catalog: Dict[str, WorkloadSpec] = {}
    for spec in specs:
        if spec.name in catalog:
            raise ValueError(f"duplicate workload name {spec.name!r}")
        catalog[spec.name] = spec
    return catalog


#: All 41 workloads, keyed by benchmark name, in suite order.
WORKLOADS: Dict[str, WorkloadSpec] = _build_catalog()


def workload_names() -> List[str]:
    """Names of all catalogued workloads, in suite order."""
    return list(WORKLOADS.keys())


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by its benchmark name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}") from None


def workloads_in_suite(suite: Suite) -> List[WorkloadSpec]:
    """All workloads belonging to one suite."""
    return [spec for spec in WORKLOADS.values() if spec.suite is suite]


def select_workloads(
    suites: Optional[List[Suite]] = None,
    names: Optional[List[str]] = None,
) -> List[WorkloadSpec]:
    """Select workloads: the whole catalog by default, or by suite/name.

    ``names`` beats ``suites``; with neither, all 41 catalogued
    workloads are returned in suite order.  The single selection helper
    behind both :func:`repro.experiments.common.suite_workloads` and
    :meth:`repro.api.Session.workloads`, so the two layers can never
    diverge.
    """
    if names is not None:
        return [get_workload(name) for name in names]
    selected: List[WorkloadSpec] = []
    for suite in suites if suites is not None else SUITE_ORDER:
        selected.extend(workloads_in_suite(suite))
    return selected


def hpc_workloads() -> List[WorkloadSpec]:
    """The 29 HPC workloads (ExMatEx, SPEC OMP, NPB)."""
    return [spec for spec in WORKLOADS.values() if spec.suite.is_hpc]


def desktop_workloads() -> List[WorkloadSpec]:
    """The 12 SPEC CPU INT desktop workloads."""
    return [spec for spec in WORKLOADS.values() if spec.suite.is_desktop]
