"""Workload catalog and synthesis.

The paper characterizes 41 applications: 29 HPC workloads from the
ExMatEx, SPEC OMP 2012, and NPB suites plus 12 desktop workloads from
SPEC CPU INT 2006.  The original study instruments the real binaries
with Pin; those binaries (and their reference inputs) are not available
here, so each application is represented by a :class:`WorkloadSpec`
whose structural parameters are calibrated to the characteristics the
paper reports for it (branch density and mix, branch bias, loop
regularity, instruction footprints, basic-block lengths, and the
serial/parallel instruction split).  The synthesis layer turns a spec
into a synthetic program and execution schedule whose dynamic trace is
then measured by exactly the same analysis and hardware-simulation code
that a real trace would flow through.
"""

from repro.workloads.suites import Suite
from repro.workloads.spec import SectionProfile, WorkloadSpec
from repro.workloads.synthesis import SyntheticWorkload, build_workload
from repro.workloads.catalog import (
    WORKLOADS,
    desktop_workloads,
    get_workload,
    hpc_workloads,
    workload_names,
    workloads_in_suite,
)
from repro.workloads.trace_cache import (
    clear_trace_cache,
    default_shared_cache_dir,
    enable_shared_cache,
    resolved_cache_dir,
    trace_cache_info,
    workload_trace,
)

__all__ = [
    "Suite",
    "SectionProfile",
    "WorkloadSpec",
    "SyntheticWorkload",
    "build_workload",
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "workloads_in_suite",
    "hpc_workloads",
    "desktop_workloads",
    "workload_trace",
    "clear_trace_cache",
    "trace_cache_info",
    "default_shared_cache_dir",
    "enable_shared_cache",
    "resolved_cache_dir",
]
