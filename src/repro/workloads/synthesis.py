"""Turn workload specifications into synthetic programs and traces.

The builder constructs, for each code section of a workload, a set of
hot loop-nest kernels whose structure realises the section's profile:

* the innermost loop's latch supplies the backward-taken loop branch,
* ``If`` regions supply the forward conditional branches with the
  profile's bias mix (strongly biased, moderately biased, balanced,
  optionally history-patterned),
* call, indirect-call, indirect-jump, unconditional-jump and syscall
  regions supply the non-conditional branch categories of Figure 1, and
* straight-line fill code sets the instructions-per-branch ratio and
  therefore the dynamic basic-block length.

Fractional per-iteration expectations (e.g. 0.3 calls per iteration)
are realised across kernels with error-diffusion rounding so the
aggregate dynamic mix converges to the profile without any kernel
looking artificial.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.trace.compiler import CompiledSchedule, compile_schedule, compiled_engine_enabled
from repro.trace.events import Trace
from repro.trace.execution import ExecutionContext, ExecutionSchedule, Phase, TraceGenerator
from repro.trace.instruction import CodeSection
from repro.trace.layout import layout_program
from repro.trace.program import (
    CallRegion,
    CodeRegion,
    FixedTripCount,
    Function,
    If,
    IndirectCallRegion,
    IndirectJumpRegion,
    JumpRegion,
    Loop,
    Program,
    Region,
    Sequence,
    SyscallRegion,
    TripCountModel,
    UniformTripCount,
)
from repro.workloads.spec import SectionProfile, WorkloadSpec

#: Default dynamic length of generated traces.  Scaled down from the
#: paper's 100-billion-instruction Sniper windows to keep a full
#: 41-workload sweep tractable on a laptop; every experiment accepts an
#: ``instructions`` argument to raise it.
DEFAULT_TRACE_INSTRUCTIONS = 400_000

#: Minimum serial hot code, even for workloads with a tiny serial share.
_MIN_SERIAL_HOT_KB = 0.5

#: Upper bound on how many parallel passes are scheduled per serial pass
#: when a workload's serial share is very small.
_MAX_PARALLEL_REPEAT = 400

#: Share of conditional sites whose outcomes are genuinely data-random
#: (independent draws every execution).  Real control flow correlates
#: strongly with recent history or at least with the branch's own past;
#: only a small minority of branches are effectively coin flips.
_RANDOM_IF_SHARE = 0.06

#: Among patterned middle-bucket sites, the share that follows a short
#: periodic pattern tied to the enclosing loop (history-predictable)
#: versus a long bursty pattern (counter-predictable except at run
#: boundaries).
_PERIODIC_IF_SHARE = 0.55

#: Share of strongly biased sites that never deviate from their
#: dominant direction (e.g. error-handling checks).
_DETERMINISTIC_STRONG_SHARE = 0.8

#: Code chunk used for cold (never executed) library and startup code.
_COLD_CHUNK_BYTES = 4096

#: Bounds on the static code size of one execution region (a group of
#: kernels the program stays inside for a while before moving on).  The
#: region size scales with the section's hot code so large desktop
#: codes have phase working sets of a few tens of KB while small HPC
#: kernels stay within a few KB, giving the synthetic workloads the
#: temporal locality real programs have -- which is what small BTBs and
#: I-caches exploit.
_REGION_KB_MIN = 5.0
_REGION_KB_MAX = 26.0
_REGION_SHARE_OF_HOT = 0.2

#: How many regions are revisited together before execution moves on.
_REGIONS_PER_GROUP = 2

#: Trip-count range of the loop that revisits a region group.
_GROUP_REPEAT_RANGE = (4, 8)


class _Diffuser:
    """Error-diffusion rounding of fractional per-kernel expectations."""

    def __init__(self, initial_credit: float = 0.5) -> None:
        self._credit = initial_credit

    def take(self, expectation: float) -> int:
        """Consume an expectation and return the integer count to realise."""
        if expectation < 0:
            raise ValueError("expectation must be non-negative")
        self._credit += expectation
        count = int(self._credit)
        self._credit -= count
        return count


class _SectionPlan:
    """Per-iteration budgets derived from a section profile."""

    def __init__(self, profile: SectionProfile) -> None:
        self.profile = profile
        self.conditionals_per_iteration = 1.0 / profile.loop_share
        self.branches_per_iteration = (
            self.conditionals_per_iteration / profile.conditional_fraction
        )
        self.instructions_per_iteration = (
            self.branches_per_iteration / profile.branch_fraction
        )

    def expected_kernel_static_instructions(self) -> float:
        """Rough static size of one kernel, used to pick the kernel count."""
        return self.instructions_per_iteration * 1.45 + 16.0


class _SectionBuilder:
    """Builds the hot code of one section (serial or parallel)."""

    def __init__(self, name: str, profile: SectionProfile, rng: np.random.Generator) -> None:
        self.name = name
        self.profile = profile
        self.rng = rng
        self.plan = _SectionPlan(profile)
        self.leaf_functions: List[Function] = []
        self._if_diffuser = _Diffuser()
        self._call_diffuser = _Diffuser()
        self._indirect_call_diffuser = _Diffuser()
        self._indirect_jump_diffuser = _Diffuser()
        self._jump_diffuser = _Diffuser()
        self._syscall_diffuser = _Diffuser(0.0)

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def build(self, hot_code_kb: float) -> Tuple[Function, List[Function]]:
        """Build the section function sized to roughly ``hot_code_kb``.

        Kernels are grouped into *regions* of a few KB of code, and
        consecutive regions are revisited a few times before execution
        moves on.  This reproduces the temporal locality of real
        programs: the instruction and branch working set over any short
        window is a region group, not the whole hot code.
        """
        bytes_per_instruction = self.profile.bytes_per_instruction
        hot_instructions = hot_code_kb * 1024.0 / bytes_per_instruction
        kernel_instructions = self.plan.expected_kernel_static_instructions()
        kernel_count = max(1, int(round(hot_instructions / kernel_instructions)))
        self._make_leaf_functions(kernel_count)
        kernels = [self._build_kernel(index) for index in range(kernel_count)]

        region_kb = min(
            _REGION_KB_MAX,
            max(_REGION_KB_MIN, hot_code_kb * _REGION_SHARE_OF_HOT),
        ) * float(self.rng.uniform(0.85, 1.15))
        kernels_per_region = max(
            1, int(round(region_kb * 1024.0 / (kernel_instructions * bytes_per_instruction)))
        )
        regions = [
            Sequence(kernels[start : start + kernels_per_region])
            for start in range(0, len(kernels), kernels_per_region)
        ]

        groups: List[Region] = []
        for start in range(0, len(regions), _REGIONS_PER_GROUP):
            group_members = regions[start : start + _REGIONS_PER_GROUP]
            trip = UniformTripCount(*_GROUP_REPEAT_RANGE)
            groups.append(
                Loop(
                    Sequence(group_members),
                    trip,
                    latch_instructions=3,
                    bytes_per_instruction=bytes_per_instruction,
                )
            )

        function = Function(name=self.name, body=Sequence(groups))
        return function, self.leaf_functions

    # ------------------------------------------------------------------
    # Leaf functions (call targets)
    # ------------------------------------------------------------------
    def _make_leaf_functions(self, kernel_count: int) -> None:
        leaf_count = max(2, kernel_count // 6)
        leaf_count = min(leaf_count, 24)
        for index in range(leaf_count):
            instructions = int(self.rng.integers(6, 20))
            body = CodeRegion(
                instructions, bytes_per_instruction=self.profile.bytes_per_instruction
            )
            self.leaf_functions.append(
                Function(name=f"{self.name}_leaf{index}", body=body)
            )

    def _pick_leaf(self) -> Function:
        index = int(self.rng.integers(0, len(self.leaf_functions)))
        return self.leaf_functions[index]

    # ------------------------------------------------------------------
    # Kernel construction
    # ------------------------------------------------------------------
    def _build_kernel(self, index: int) -> Region:
        profile = self.profile
        plan = self.plan
        bpi = profile.bytes_per_instruction

        trip_model = self._draw_trip_model()
        trip_mean = trip_model.mean

        # Every branch category is realised *inside* the inner loop so
        # each site enjoys the loop's reuse, exactly as in compiled
        # code.  Fractional per-iteration expectations (e.g. 0.3 calls
        # per iteration) become "30% of kernels carry a call in their
        # loop body" through error-diffusion rounding.
        if_count = self._if_diffuser.take(
            max(0.0, plan.conditionals_per_iteration - 1.0)
        )
        call_count = self._call_diffuser.take(
            plan.branches_per_iteration * profile.call_fraction
        )
        indirect_call_count = self._indirect_call_diffuser.take(
            plan.branches_per_iteration * profile.indirect_call_fraction
        )
        indirect_jump_count = self._indirect_jump_diffuser.take(
            plan.branches_per_iteration * profile.indirect_branch_fraction
        )
        jump_count = self._jump_diffuser.take(
            plan.branches_per_iteration * profile.unconditional_fraction
        )
        syscall_count = self._syscall_diffuser.take(
            plan.branches_per_iteration * profile.syscall_fraction * trip_mean
        )

        # A little straight-line code around the loop (loop setup and
        # result write-back); it dilutes branch density slightly, so the
        # iteration budget is deflated by its per-iteration share.
        outer_code = int(self.rng.integers(2, 7))
        outer_extra = float(outer_code) + syscall_count * 2.0

        inner_body = self._build_iteration_body(
            if_count,
            call_count,
            indirect_call_count,
            indirect_jump_count,
            jump_count,
            budget_deflation=outer_extra / max(1.0, trip_mean),
            trip_count=max(2, int(round(trip_mean))),
            regular_loop=trip_model.is_regular,
        )
        inner_loop = Loop(inner_body, trip_model, latch_instructions=3, bytes_per_instruction=bpi)

        outer_regions: List[Region] = [
            CodeRegion(outer_code, bytes_per_instruction=bpi),
            inner_loop,
        ]
        for _ in range(syscall_count):
            outer_regions.append(SyscallRegion(bytes_per_instruction=bpi))
        return Sequence(outer_regions)

    def _build_iteration_body(
        self,
        if_count: int,
        call_count: int,
        indirect_call_count: int,
        indirect_jump_count: int,
        jump_count: int,
        budget_deflation: float = 0.0,
        trip_count: int = 8,
        regular_loop: bool = True,
    ) -> Region:
        profile = self.profile
        plan = self.plan
        bpi = profile.bytes_per_instruction

        leaf_cost = 14.0  # call block + average leaf body + return
        budget = max(4.0, plan.instructions_per_iteration - budget_deflation)
        fixed_cost = (
            3.0  # latch
            + jump_count
            + call_count * leaf_cost
            + indirect_call_count * leaf_cost
            + indirect_jump_count * 10.0
        )
        available = max(float(if_count + 1), budget - fixed_cost)

        if_regions: List[Region] = []
        if_body_cost = 0.0
        if if_count > 0:
            per_if_budget = max(2, int(round(available * 0.35 / if_count)))
            for _ in range(if_count):
                region, expected = self._make_if(per_if_budget, trip_count, regular_loop)
                if_regions.append(region)
                if_body_cost += expected
        fill = max(float(if_count + 1), available - if_body_cost)

        segments = if_count + 1
        fill_sizes = self._spread_fill(fill, segments)

        regions: List[Region] = []
        for position in range(segments):
            regions.append(CodeRegion(fill_sizes[position], bytes_per_instruction=bpi))
            if position < if_count:
                regions.append(if_regions[position])
        for _ in range(call_count):
            regions.append(CallRegion(self._pick_leaf(), bytes_per_instruction=bpi))
        for _ in range(indirect_call_count):
            regions.append(self._make_indirect_call())
        for _ in range(indirect_jump_count):
            regions.append(self._make_indirect_jump())
        for _ in range(jump_count):
            regions.append(JumpRegion(bytes_per_instruction=bpi))
        return Sequence(regions)

    def _spread_fill(self, fill: float, segments: int) -> List[int]:
        """Split the fill budget into jittered per-segment block sizes."""
        base = fill / segments
        sizes: List[int] = []
        remaining = fill
        for position in range(segments):
            if position == segments - 1:
                size = remaining
            else:
                size = base * float(self.rng.uniform(0.7, 1.3))
                size = min(size, remaining - (segments - position - 1))
            size = max(1, int(round(size)))
            sizes.append(size)
            remaining -= size
        return sizes

    def _make_if(
        self, body_budget: int, trip_count: int = 8, regular_loop: bool = True
    ) -> Tuple[If, float]:
        """Create one conditional site with the profile's bias mix.

        The bias class (balanced / moderate / strong) sets how often the
        site goes its dominant way; the outcome *style* sets how
        predictable the sequence is: deterministic, periodic with a
        period tied to the enclosing loop, long bursty runs, or (rarely)
        independent random draws.
        """
        profile = self.profile
        bpi = profile.bytes_per_instruction
        draw = self.rng.random()
        if draw < profile.balanced_if_share:
            dominant_probability = float(self.rng.uniform(0.50, 0.62))
            strong = False
        elif draw < profile.balanced_if_share + profile.moderate_if_share:
            dominant_probability = float(self.rng.uniform(0.70, 0.88))
            strong = False
        else:
            dominant_probability = float(self.rng.uniform(0.93, 0.99))
            strong = True

        dominant_taken = self.rng.random() < profile.if_taken_dominant_share
        probability_then = (
            1.0 - dominant_probability if dominant_taken else dominant_probability
        )

        pattern = self._draw_outcome_pattern(
            probability_then, strong, trip_count, regular_loop
        )

        then_size = max(2, int(round(body_budget)))
        has_else = self.rng.random() < 0.15
        orelse: Optional[Region] = None
        else_size = 0
        if has_else:
            else_size = max(1, then_size // 2)
            orelse = CodeRegion(else_size, bytes_per_instruction=bpi)
        then_region = CodeRegion(then_size, bytes_per_instruction=bpi)
        region = If(
            probability_then,
            then_region,
            orelse=orelse,
            condition_instructions=2,
            bytes_per_instruction=bpi,
            pattern=pattern,
        )
        expected = 2.0 + probability_then * then_size
        if orelse is not None:
            expected += (1.0 - probability_then) * else_size + probability_then * 1.0
        return region, expected

    def _draw_outcome_pattern(
        self,
        probability_then: float,
        strong: bool,
        trip_count: int,
        regular_loop: bool,
    ) -> Optional[List[bool]]:
        """Draw the deterministic outcome sequence of a conditional site.

        Returns ``None`` for the small share of sites that stay
        independently random (truly data-dependent branches).  Periodic
        sites use a period that divides the enclosing loop's trip count,
        modelling conditions on the loop index (boundary handling,
        stride checks) whose outcome repeats at the same loop position;
        this is what makes global history informative for them.
        """
        if self.rng.random() < _RANDOM_IF_SHARE:
            return None
        if strong:
            if self.rng.random() < _DETERMINISTIC_STRONG_SHARE:
                return [probability_then >= 0.5]
            return self._bursty_pattern(probability_then)
        if self.rng.random() < _PERIODIC_IF_SHARE:
            return self._periodic_pattern(probability_then, trip_count, regular_loop)
        return self._bursty_pattern(probability_then)

    def _periodic_pattern(
        self, probability_then: float, trip_count: int, regular_loop: bool
    ) -> List[bool]:
        """Loop-index-correlated repeating pattern."""
        if regular_loop:
            divisors = [d for d in range(2, trip_count + 1) if trip_count % d == 0]
            period = int(self.rng.choice(divisors)) if divisors else max(2, trip_count)
        else:
            period = int(self.rng.integers(2, 5))
        then_executions = min(period, max(0, int(round(period * probability_then))))
        outcomes = [True] * then_executions + [False] * (period - then_executions)
        self.rng.shuffle(outcomes)
        return outcomes

    def _bursty_pattern(self, probability_then: float) -> List[bool]:
        """Long run-structured pattern (phases of mostly-then / mostly-else).

        Runs are long enough that the outcome is stable within one loop
        visit and usually across a few visits, so simple counters only
        mispredict at run boundaries.
        """
        probability_then = min(0.98, max(0.02, probability_then))
        mean_then_run = min(48.0, max(2.0, 30.0 * probability_then))
        mean_else_run = min(48.0, max(2.0, 30.0 * (1.0 - probability_then)))
        length = int(self.rng.integers(80, 200))
        outcomes: List[bool] = []
        value = self.rng.random() < probability_then
        while len(outcomes) < length:
            mean_run = mean_then_run if value else mean_else_run
            run = 1 + int(self.rng.geometric(1.0 / mean_run))
            outcomes.extend([value] * run)
            value = not value
        return outcomes[:length]

    def _make_indirect_call(self) -> IndirectCallRegion:
        count = min(len(self.leaf_functions), int(self.rng.integers(2, 5)))
        indices = self.rng.choice(len(self.leaf_functions), size=count, replace=False)
        callees = [self.leaf_functions[int(i)] for i in indices]
        weights = [float(w) for w in self.rng.uniform(0.5, 2.0, size=count)]
        return IndirectCallRegion(
            callees, weights, bytes_per_instruction=self.profile.bytes_per_instruction
        )

    def _make_indirect_jump(self) -> IndirectJumpRegion:
        bpi = self.profile.bytes_per_instruction
        case_count = int(self.rng.integers(3, 7))
        cases = [
            CodeRegion(int(self.rng.integers(3, 9)), bytes_per_instruction=bpi)
            for _ in range(case_count)
        ]
        weights = [float(w) for w in self.rng.uniform(0.3, 2.0, size=case_count)]
        return IndirectJumpRegion(cases, weights, bytes_per_instruction=bpi)

    def _draw_trip_model(self) -> TripCountModel:
        profile = self.profile
        mean = profile.avg_trip_count
        trip = max(2, int(round(mean * float(self.rng.uniform(0.55, 1.6)))))
        if self.rng.random() < profile.loop_regularity:
            return FixedTripCount(trip)
        # Irregular loops vary around their typical count (problem sizes
        # change slightly between invocations) rather than across the
        # whole range; that defeats a loop predictor's exact-count match
        # without turning the exit branch into pure noise.
        low = max(2, trip - max(1, trip // 8))
        high = max(low + 1, trip + max(1, trip // 8))
        return UniformTripCount(low, high)

class SyntheticWorkload:
    """A fully built workload: spec, program, schedule, cached traces."""

    def __init__(self, spec: WorkloadSpec, program: Program, schedule: ExecutionSchedule) -> None:
        self.spec = spec
        self.program = program
        self.schedule = schedule
        self._traces: Dict[Tuple[int, int], Trace] = {}

    @property
    def name(self) -> str:
        """Benchmark name."""
        return self.spec.name

    @property
    def suite(self):
        """Benchmark suite."""
        return self.spec.suite

    @property
    def compiled(self) -> CompiledSchedule:
        """The workload's program + schedule lowered to segment IR.

        Compilation is memoized alongside the built workload (the cache
        lives on the program object), so every trace generation of this
        workload -- any length, any seed -- reuses one compiled form.
        """
        return compile_schedule(self.program, self.schedule)

    def trace(self, instructions: Optional[int] = None, seed: int = 0) -> Trace:
        """Generate (or return the cached) dynamic trace of the workload.

        Generation runs through the compiled segment engine, which is
        bit-identical to the reference tree walk (set
        ``REPRO_TRACE_ENGINE=reference`` to force the tree walk).
        """
        if instructions is None:
            instructions = DEFAULT_TRACE_INSTRUCTIONS
        key = (int(instructions), int(seed))
        if key not in self._traces:
            run_seed = self.spec.seed ^ (seed * 0x9E3779B1)
            if compiled_engine_enabled():
                trace = self.compiled.run(
                    int(instructions), seed=run_seed, name=self.spec.name
                )
            else:
                generator = TraceGenerator(self.program, self.schedule, seed=run_seed)
                trace = generator.run(int(instructions), name=self.spec.name)
            self._traces[key] = trace
        return self._traces[key]

    def static_code_bytes(self) -> int:
        """Static footprint of the synthetic binary."""
        return self.program.static_code_bytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticWorkload({self.spec.name!r}, suite={self.spec.suite.label!r})"


def _measure_pass_instructions(function: Function, seed: int) -> int:
    """Instructions executed by one invocation of a section function."""
    ctx = ExecutionContext(np.random.default_rng(seed), max_instructions=10**12)
    function.body.execute(ctx)
    ctx.emit(function.return_block, taken=True)
    return max(1, ctx.instructions_emitted)


def _build_cold_code(spec: WorkloadSpec, rng: np.random.Generator) -> List[Function]:
    """Library/startup code that contributes only to the static footprint."""
    cold_bytes = spec.cold_code_kb * 1024.0
    functions: List[Function] = []
    chunk_index = 0
    while cold_bytes > 0:
        chunk = min(_COLD_CHUNK_BYTES, cold_bytes)
        bpi = spec.serial.bytes_per_instruction
        instructions = max(4, int(round(chunk / bpi)))
        body = CodeRegion(instructions, bytes_per_instruction=bpi)
        functions.append(Function(name=f"{spec.name}_cold{chunk_index}", body=body))
        cold_bytes -= chunk
        chunk_index += 1
    return functions


@functools.lru_cache(maxsize=None)
def build_workload(
    spec: WorkloadSpec,
    nominal_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
) -> SyntheticWorkload:
    """Build the synthetic program and execution schedule for a workload.

    The result is cached so repeated experiments share one program (and
    its cached traces) per workload.
    """
    rng = np.random.default_rng(spec.seed)
    hot_functions: List[Function] = []
    leaf_functions: List[Function] = []

    if spec.is_sequential:
        builder = _SectionBuilder(f"{spec.name}_main", spec.serial, rng)
        main_function, leaves = builder.build(spec.serial.hot_code_kb)
        hot_functions.append(main_function)
        leaf_functions.extend(leaves)
        steady = [Phase(main_function, CodeSection.SERIAL)]
    else:
        parallel_builder = _SectionBuilder(f"{spec.name}_parallel", spec.parallel, rng)
        parallel_function, parallel_leaves = parallel_builder.build(
            spec.parallel.hot_code_kb
        )
        parallel_work = _measure_pass_instructions(
            parallel_function, seed=spec.seed ^ 0x5EED
        )
        hot_functions.append(parallel_function)
        leaf_functions.extend(parallel_leaves)

        serial_fraction = spec.serial_fraction
        if serial_fraction <= 0.0:
            steady = [Phase(parallel_function, CodeSection.PARALLEL)]
        else:
            # Instructions the serial sections should contribute for every
            # parallel pass, according to the workload's serial share.
            serial_target = parallel_work * serial_fraction / (1.0 - serial_fraction)
            # Each serial hot instruction executes roughly once per inner
            # loop trip per pass, so the serial hot region must be small
            # enough that its loops still iterate within the serial budget.
            reuse = max(2.0, spec.serial.avg_trip_count)
            reusable_kb = (
                serial_target * spec.serial.bytes_per_instruction / (1024.0 * reuse)
            )
            serial_hot_kb = min(
                spec.serial.hot_code_kb, max(reusable_kb, _MIN_SERIAL_HOT_KB)
            )
            serial_builder = _SectionBuilder(f"{spec.name}_serial", spec.serial, rng)
            serial_function, serial_leaves = serial_builder.build(serial_hot_kb)
            serial_work = _measure_pass_instructions(
                serial_function, seed=spec.seed ^ 0xC0FFEE
            )
            hot_functions.append(serial_function)
            leaf_functions.extend(serial_leaves)
            if serial_work <= serial_target:
                serial_repeat = max(1, int(round(serial_target / serial_work)))
                parallel_repeat = 1
            else:
                # The smallest useful serial pass still exceeds the target;
                # schedule several parallel passes per serial pass instead.
                serial_repeat = 1
                parallel_repeat = int(
                    round(
                        serial_work
                        * (1.0 - serial_fraction)
                        / (serial_fraction * parallel_work)
                    )
                )
                parallel_repeat = min(_MAX_PARALLEL_REPEAT, max(1, parallel_repeat))
            steady = [
                Phase(serial_function, CodeSection.SERIAL, repeat=serial_repeat),
                Phase(parallel_function, CodeSection.PARALLEL, repeat=parallel_repeat),
            ]

    cold_functions = _build_cold_code(spec, rng)
    program = Program(spec.name, hot_functions + leaf_functions + cold_functions)
    layout_program(program)
    schedule = ExecutionSchedule(steady=steady)
    return SyntheticWorkload(spec, program, schedule)
