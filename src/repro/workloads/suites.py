"""Benchmark suites evaluated in the paper."""

from __future__ import annotations

import enum
from typing import Tuple


class Suite(enum.Enum):
    """The four benchmark suites of the study.

    ExMatEx, SPEC OMP 2012, and NPB are the HPC suites; SPEC CPU INT
    2006 is the desktop comparison point.
    """

    EXMATEX = "ExMatEx"
    SPEC_OMP = "SPEC OMP"
    NPB = "NPB"
    SPEC_CPU_INT = "SPEC CPU INT"

    @property
    def label(self) -> str:
        """Display label used in figures and tables."""
        return self.value

    @property
    def is_hpc(self) -> bool:
        """Whether the suite contains parallel HPC applications."""
        return self is not Suite.SPEC_CPU_INT

    @property
    def is_desktop(self) -> bool:
        """Whether the suite is the desktop comparison suite."""
        return self is Suite.SPEC_CPU_INT


#: Order in which the paper presents the suites in every figure.
SUITE_ORDER: Tuple[Suite, ...] = (
    Suite.EXMATEX,
    Suite.SPEC_OMP,
    Suite.NPB,
    Suite.SPEC_CPU_INT,
)

#: The three HPC suites (29 workloads in total).
HPC_SUITES: Tuple[Suite, ...] = (Suite.EXMATEX, Suite.SPEC_OMP, Suite.NPB)
